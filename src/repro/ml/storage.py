"""Sparse weight vectors.

All linear models store weights as ``{feature_name: value}`` dictionaries —
IoT feature spaces here are small and sparse, and dict storage keeps models
trivially serializable for the MIX protocol (weights travel as plain JSON
through the flow-distribution layer).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

__all__ = ["SparseVector"]


class SparseVector:
    """A sparse real vector keyed by feature name.

    Zero entries are pruned on write, so iteration touches only support.

    >>> v = SparseVector({"a": 1.0})
    >>> v.add({"a": -1.0, "b": 2.0}, scale=1.0)
    >>> v.to_dict()
    {'b': 2.0}
    """

    __slots__ = ("_data",)

    def __init__(self, data: dict[str, float] | None = None) -> None:
        self._data: dict[str, float] = {}
        if data:
            for key, value in data.items():
                if value != 0.0:
                    self._data[key] = float(value)

    def __getitem__(self, key: str) -> float:
        return self._data.get(key, 0.0)

    def __setitem__(self, key: str, value: float) -> None:
        if value == 0.0:
            self._data.pop(key, None)
        else:
            self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(self._data.items())

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> Iterable[str]:
        return self._data.keys()

    def dot(self, features: dict[str, float]) -> float:
        """Inner product with a dense-as-dict feature mapping."""
        # Iterate the smaller operand.
        if len(features) <= len(self._data):
            return sum(self._data.get(k, 0.0) * v for k, v in features.items())
        return sum(features.get(k, 0.0) * v for k, v in self._data.items())

    def add(self, features: dict[str, float], scale: float = 1.0) -> None:
        """In-place ``self += scale * features``."""
        if scale == 0.0:
            return
        for key, value in features.items():
            self[key] = self._data.get(key, 0.0) + scale * value

    def scale(self, factor: float) -> None:
        """In-place ``self *= factor``."""
        if factor == 0.0:
            self._data.clear()
            return
        for key in list(self._data):
            self._data[key] *= factor

    def norm(self) -> float:
        """Euclidean norm."""
        return math.sqrt(sum(v * v for v in self._data.values()))

    def copy(self) -> "SparseVector":
        clone = SparseVector()
        clone._data = dict(self._data)
        return clone

    def to_dict(self) -> dict[str, float]:
        """Plain-dict snapshot (JSON-ready)."""
        return dict(self._data)

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "SparseVector":
        return cls(data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._data == other._data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SparseVector({self._data!r})"
