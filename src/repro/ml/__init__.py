"""Online machine learning substrate (Jubatus substitute).

The paper's flow-analysis mechanism is "developed based on Jubatus that has
a powerful distributed on-line machine learning capability" (§V-A). This
package reimplements, from scratch, the Jubatus capabilities the middleware
uses:

* :mod:`repro.ml.features` — Jubatus-style ``Datum`` (string and numeric
  key/value pairs) and feature extraction into sparse vectors;
* :mod:`repro.ml.linear` — online multiclass linear learners: Perceptron,
  PA, PA-I, PA-II, Confidence-Weighted and AROW;
* :mod:`repro.ml.regression` — passive-aggressive epsilon-insensitive
  online regression;
* :mod:`repro.ml.anomaly` — streaming anomaly detection (robust z-score and
  a ring-buffer k-NN LOF-lite, like Jubatus ``anomaly``);
* :mod:`repro.ml.clustering` — sequential online k-means;
* :mod:`repro.ml.stat` — windowed stream statistics (like Jubatus ``stat``);
* :mod:`repro.ml.mix` — the MIX model-averaging protocol that lets several
  neuron modules learn jointly, Jubatus's signature distributed feature.

All models are strictly incremental: one datum in, O(features) work, no
dataset ever stored — matching the middleware requirement to process
streams "without accumulating / storing" (§IV-B-3).
"""

from repro.ml.anomaly import LofLite, RobustZScore
from repro.ml.classifier import OnlineClassifier
from repro.ml.evaluation import PrequentialAccuracy, PrequentialEvaluator
from repro.ml.clustering import OnlineKMeans
from repro.ml.features import Datum, FeatureExtractor, FeatureVector
from repro.ml.linear import (
    AROW,
    ConfidenceWeighted,
    PassiveAggressive,
    Perceptron,
    make_learner,
)
from repro.ml.mix import MixCoordinator, MixParticipantState, average_diffs
from repro.ml.neighbors import NearestNeighbors, Neighbor
from repro.ml.regression import PARegression
from repro.ml.stat import WindowStat
from repro.ml.storage import SparseVector
from repro.ml.tree import HoeffdingTreeClassifier

__all__ = [
    "AROW",
    "ConfidenceWeighted",
    "Datum",
    "FeatureExtractor",
    "FeatureVector",
    "HoeffdingTreeClassifier",
    "LofLite",
    "MixCoordinator",
    "NearestNeighbors",
    "Neighbor",
    "MixParticipantState",
    "OnlineClassifier",
    "OnlineKMeans",
    "PARegression",
    "PassiveAggressive",
    "Perceptron",
    "PrequentialAccuracy",
    "PrequentialEvaluator",
    "RobustZScore",
    "SparseVector",
    "WindowStat",
    "average_diffs",
    "make_learner",
]
