"""The MIX protocol: periodic model averaging across distributed learners.

Jubatus's signature distributed-learning mechanism is MIX: every node
learns on its local shard of the stream; periodically the nodes' weight
*diffs* (deltas since the last mix) are averaged and pushed back, so all
nodes converge to a shared model without any node seeing the whole stream.

This module is transport-agnostic — pure state machines plus the averaging
arithmetic. The middleware's ManagingClass (:mod:`repro.core.analysis`)
drives them over the flow-distribution layer; the unit tests drive them
directly.

Protocol (one round):

1. the coordinator opens round ``r`` and asks every participant for a diff;
2. each participant calls ``collect_diff()`` on its model and replies;
3. when all diffs (or a quorum, after a timeout) have arrived, the
   coordinator computes the weighted average and broadcasts it;
4. each participant calls ``apply_mixed(average)``; its model's new base is
   the mixed state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.errors import MixError

__all__ = ["Mixable", "average_diffs", "MixCoordinator", "MixParticipantState"]

#: A diff is {label -> {feature -> delta}}.
Diff = dict[str, dict[str, float]]


class Mixable(Protocol):
    """Anything that can take part in MIX (linear learners, regressors)."""

    def collect_diff(self) -> Diff: ...

    def apply_mixed(self, mixed_diff: Diff) -> None: ...


def average_diffs(diffs: list[Diff], weights: list[float] | None = None) -> Diff:
    """Weighted element-wise average of sparse diffs.

    ``weights`` defaults to uniform. Labels/features missing from a diff
    count as zero, so a node that never saw label L pulls the average
    towards zero for L — exactly the Jubatus behaviour that makes MIX
    conservative about rare labels.
    """
    if not diffs:
        raise MixError("cannot average an empty diff list")
    if weights is None:
        weights = [1.0] * len(diffs)
    if len(weights) != len(diffs):
        raise MixError(f"{len(diffs)} diffs but {len(weights)} weights")
    total_weight = sum(weights)
    if total_weight <= 0:
        raise MixError("total weight must be positive")

    accumulator: dict[str, dict[str, float]] = {}
    for diff, weight in zip(diffs, weights):
        for label, features in diff.items():
            bucket = accumulator.setdefault(label, {})
            for feature, delta in features.items():
                bucket[feature] = bucket.get(feature, 0.0) + weight * delta
    return {
        label: {
            feature: value / total_weight
            for feature, value in features.items()
            if value != 0.0
        }
        for label, features in accumulator.items()
    }


@dataclass
class MixRound:
    """Bookkeeping for one in-flight MIX round."""

    round_id: int
    expected: set[str]
    diffs: dict[str, Diff] = field(default_factory=dict)
    weights: dict[str, float] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return set(self.diffs) >= self.expected

    @property
    def missing(self) -> set[str]:
        return self.expected - set(self.diffs)


class MixCoordinator:
    """Coordinator-side state machine (transport supplied by the caller)."""

    def __init__(self, min_quorum: int = 1) -> None:
        if min_quorum < 1:
            raise MixError("min_quorum must be >= 1")
        self.min_quorum = min_quorum
        self._next_round = 1
        self.current: MixRound | None = None
        self.rounds_completed = 0

    def start_round(self, participants: list[str]) -> MixRound:
        """Open a round expecting diffs from ``participants``."""
        if not participants:
            raise MixError("a MIX round needs at least one participant")
        if self.current is not None:
            raise MixError(
                f"round {self.current.round_id} still open; finish or abort it"
            )
        self.current = MixRound(
            round_id=self._next_round, expected=set(participants)
        )
        self._next_round += 1
        return self.current

    def receive_diff(
        self, participant: str, round_id: int, diff: Diff, weight: float = 1.0
    ) -> bool:
        """Record one participant's diff. Returns True when all have arrived."""
        current = self.current
        if current is None or round_id != current.round_id:
            return False  # stale reply from an earlier round — ignore
        if participant not in current.expected:
            raise MixError(f"unexpected participant {participant!r}")
        current.diffs[participant] = diff
        current.weights[participant] = weight
        return current.complete

    def finish_round(self, allow_partial: bool = False) -> Diff:
        """Average what arrived and close the round.

        ``allow_partial=True`` accepts a quorum of ``min_quorum`` (used on
        timeout when a node died mid-round); otherwise all participants
        must have replied.
        """
        current = self.current
        if current is None:
            raise MixError("no round in progress")
        if not current.complete and not allow_partial:
            raise MixError(f"round incomplete; missing {sorted(current.missing)}")
        if len(current.diffs) < self.min_quorum:
            raise MixError(
                f"only {len(current.diffs)} diffs, need quorum {self.min_quorum}"
            )
        names = sorted(current.diffs)
        mixed = average_diffs(
            [current.diffs[n] for n in names],
            [current.weights[n] for n in names],
        )
        self.current = None
        self.rounds_completed += 1
        return mixed

    def abort_round(self) -> None:
        self.current = None


class MixParticipantState:
    """Participant-side wrapper around a mixable model."""

    def __init__(self, name: str, model: Mixable) -> None:
        self.name = name
        self.model = model
        self.last_round_applied = 0
        self.diffs_sent = 0

    def make_reply(self, round_id: int, weight: float = 1.0) -> dict[str, Any]:
        """Build the diff reply payload for ``round_id``."""
        self.diffs_sent += 1
        return {
            "participant": self.name,
            "round": round_id,
            "weight": weight,
            "diff": self.model.collect_diff(),
        }

    def apply_broadcast(self, round_id: int, mixed_diff: Diff) -> bool:
        """Apply a mixed model; ignores replays of already-applied rounds."""
        if round_id <= self.last_round_applied:
            return False
        self.model.apply_mixed(mixed_diff)
        self.last_round_applied = round_id
        return True
