"""Online nearest-neighbour store (Jubatus ``nearest_neighbor`` /
``recommender`` substitute).

Keeps a bounded window of recent labelled points and answers similarity
queries — "which known situations look like the current one". Used for
k-NN classification on streams where a linear boundary is too rigid, and
for similar-row lookup (the recommender use case).

Distances: Euclidean over the union of keys (missing = 0) or cosine
similarity. O(window) per query, like :class:`~repro.ml.anomaly.LofLite`.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Any

from repro.errors import ModelError
from repro.ml.features import Datum
from repro.util.ringbuffer import RingBuffer
from repro.util.validate import require_positive

__all__ = ["NearestNeighbors", "Neighbor"]


@dataclass(frozen=True)
class Neighbor:
    """One similarity query hit."""

    row_id: str
    distance: float
    label: str | None
    values: dict[str, float]


def _euclidean(a: dict[str, float], b: dict[str, float]) -> float:
    keys = sorted(set(a) | set(b))
    return math.sqrt(sum((a.get(k, 0.0) - b.get(k, 0.0)) ** 2 for k in keys))


def _cosine_distance(a: dict[str, float], b: dict[str, float]) -> float:
    dot = sum(value * b.get(key, 0.0) for key, value in a.items())
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    if norm_a <= 0.0 or norm_b <= 0.0:
        return 1.0
    return 1.0 - dot / (norm_a * norm_b)

_METRICS = {"euclidean": _euclidean, "cosine": _cosine_distance}


class NearestNeighbors:
    """Bounded-window nearest-neighbour index over datum rows.

    >>> nn = NearestNeighbors(window=16)
    >>> nn.set_row("r1", Datum.from_mapping({"x": 1.0}), label="hot")
    >>> nn.set_row("r2", Datum.from_mapping({"x": -1.0}), label="cold")
    >>> [n.row_id for n in nn.neighbors(Datum.from_mapping({"x": 0.9}), k=1)]
    ['r1']
    """

    def __init__(self, window: int = 512, metric: str = "euclidean") -> None:
        require_positive(window, "window")
        distance = _METRICS.get(metric)
        if distance is None:
            raise ModelError(
                f"unknown metric {metric!r}; choose from {sorted(_METRICS)}"
            )
        self.metric = metric
        self._distance = distance
        self._order: RingBuffer[str] = RingBuffer(window)
        self._rows: dict[str, tuple[dict[str, float], str | None]] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def set_row(self, row_id: str, datum: Datum, label: str | None = None) -> None:
        """Insert or update a row; oldest rows fall out of the window."""
        if row_id not in self._rows:
            evicted = self._order.append(row_id)
            if evicted is not None:
                self._rows.pop(evicted, None)
        self._rows[row_id] = (dict(datum.num_values), label)

    def neighbors(self, datum: Datum, k: int = 5) -> list[Neighbor]:
        """The ``k`` nearest stored rows (closest first; stable ties)."""
        require_positive(k, "k")
        point = datum.num_values
        scored = sorted(
            (
                (self._distance(point, values), row_id)
                for row_id, (values, _label) in self._rows.items()
            ),
            key=lambda pair: (pair[0], pair[1]),
        )
        return [
            Neighbor(
                row_id=row_id,
                distance=distance,
                label=self._rows[row_id][1],
                values=dict(self._rows[row_id][0]),
            )
            for distance, row_id in scored[:k]
        ]

    def classify(self, datum: Datum, k: int = 5) -> tuple[str, dict[str, int]]:
        """Majority label among the k nearest labelled rows.

        Returns ``(label, votes)``; raises ModelError when no labelled
        rows exist. Ties break towards the nearer neighbour's label.
        """
        hits = [n for n in self.neighbors(datum, k=k) if n.label is not None]
        if not hits:
            raise ModelError("classify() with no labelled rows in the window")
        votes = Counter(n.label for n in hits)
        top_count = max(votes.values())
        # Nearest neighbour among the tied labels decides.
        for neighbor in hits:
            if votes[neighbor.label] == top_count:
                return neighbor.label, dict(votes)
        raise AssertionError("unreachable")  # pragma: no cover

    def to_state(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "window": self._order.capacity,
            "rows": [
                [row_id, self._rows[row_id][0], self._rows[row_id][1]]
                for row_id in self._order
            ],
        }

    def load_state(self, state: dict[str, Any]) -> None:
        self._order.clear()
        self._rows.clear()
        for row_id, values, label in state["rows"]:
            self._order.append(row_id)
            self._rows[row_id] = (
                {str(k): float(v) for k, v in values.items()},
                label,
            )
