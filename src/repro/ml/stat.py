"""Windowed stream statistics (Jubatus ``stat`` substitute).

Tracks, per key, statistics over the last ``window`` values: sum, mean,
standard deviation, min, max, and simple moments. Used by judging-class
aggregations (e.g. "mean sound level over the last 100 samples") without
storing the stream beyond the window.
"""

from __future__ import annotations

import math

from repro.util.ringbuffer import RingBuffer
from repro.util.validate import require_positive

__all__ = ["WindowStat"]


class _KeyWindow:
    """Incremental sum/sum-of-squares over a ring buffer."""

    __slots__ = ("buffer", "total", "total_sq")

    def __init__(self, capacity: int) -> None:
        self.buffer: RingBuffer[float] = RingBuffer(capacity)
        self.total = 0.0
        self.total_sq = 0.0

    def push(self, value: float) -> None:
        evicted = self.buffer.append(value)
        self.total += value
        self.total_sq += value * value
        if evicted is not None:
            self.total -= evicted
            self.total_sq -= evicted * evicted


class WindowStat:
    """Per-key sliding-window statistics."""

    def __init__(self, window: int = 128) -> None:
        self.window = require_positive(window, "window")
        self._keys: dict[str, _KeyWindow] = {}

    def push(self, key: str, value: float) -> None:
        entry = self._keys.get(key)
        if entry is None:
            entry = self._keys[key] = _KeyWindow(self.window)
        entry.push(float(value))

    def count(self, key: str) -> int:
        entry = self._keys.get(key)
        return len(entry.buffer) if entry else 0

    def sum(self, key: str) -> float:
        entry = self._keys.get(key)
        return entry.total if entry else 0.0

    def mean(self, key: str) -> float:
        entry = self._keys.get(key)
        if not entry or len(entry.buffer) == 0:
            return math.nan
        return entry.total / len(entry.buffer)

    def stddev(self, key: str) -> float:
        entry = self._keys.get(key)
        if not entry or len(entry.buffer) == 0:
            return math.nan
        n = len(entry.buffer)
        mean = entry.total / n
        variance = max(0.0, entry.total_sq / n - mean * mean)
        return math.sqrt(variance)

    def min(self, key: str) -> float:
        entry = self._keys.get(key)
        if not entry or len(entry.buffer) == 0:
            return math.nan
        return min(entry.buffer)

    def max(self, key: str) -> float:
        entry = self._keys.get(key)
        if not entry or len(entry.buffer) == 0:
            return math.nan
        return max(entry.buffer)

    def moment(self, key: str, degree: int, center: float = 0.0) -> float:
        """n-th raw/central moment over the window (degree 1..4 typical)."""
        entry = self._keys.get(key)
        if not entry or len(entry.buffer) == 0:
            return math.nan
        values = entry.buffer.to_list()
        return sum((v - center) ** degree for v in values) / len(values)

    @property
    def keys(self) -> list[str]:
        return sorted(self._keys)

    # ------------------------------------------------------------------
    # Migration (operator state handoff)
    # ------------------------------------------------------------------

    def export_state(self) -> dict[str, list[float]]:
        """Window contents per key, oldest first (JSON-ready)."""
        return {
            key: entry.buffer.to_list()
            for key, entry in sorted(self._keys.items())
        }

    def import_state(self, state: dict[str, list[float]]) -> None:
        """Rebuild the windows from :meth:`export_state` output."""
        self._keys.clear()
        for key, values in state.items():
            for value in values:
                self.push(str(key), float(value))
