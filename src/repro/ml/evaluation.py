"""Prequential (test-then-train) evaluation for online learners.

The standard way to score a model that learns from the stream it predicts
on: each labelled example is first *predicted*, the outcome recorded, and
only then used for training. No held-out set, no leakage, and the metric
tracks concept drift naturally when computed over a sliding window.

:class:`PrequentialAccuracy` is the bookkeeping half (feed it outcomes);
:class:`PrequentialEvaluator` wraps a classifier-like model and does the
predict-then-train dance itself.
"""

from __future__ import annotations

import math
from typing import Any, Protocol

from repro.ml.features import Datum
from repro.util.ringbuffer import RingBuffer
from repro.util.validate import require_positive

__all__ = ["PrequentialAccuracy", "PrequentialEvaluator"]


class _ClassifierLike(Protocol):
    def train(self, datum: Datum, label: str) -> bool: ...

    def classify(self, datum: Datum) -> Any: ...


class PrequentialAccuracy:
    """Sliding-window and cumulative accuracy over prediction outcomes."""

    def __init__(self, window: int = 200) -> None:
        require_positive(window, "window")
        self._window: RingBuffer[bool] = RingBuffer(window)
        self._window_correct = 0
        self.total = 0
        self.total_correct = 0

    def record(self, correct: bool) -> None:
        """Record one prediction outcome."""
        evicted = self._window.append(bool(correct))
        if evicted:
            self._window_correct -= 1
        if correct:
            self._window_correct += 1
        self.total += 1
        self.total_correct += int(correct)

    @property
    def windowed(self) -> float:
        """Accuracy over the last ``window`` outcomes (NaN if none)."""
        if len(self._window) == 0:
            return math.nan
        return self._window_correct / len(self._window)

    @property
    def cumulative(self) -> float:
        """Accuracy over the entire stream (NaN if none)."""
        if self.total == 0:
            return math.nan
        return self.total_correct / self.total

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.total),
            "cumulative": self.cumulative,
            "windowed": self.windowed,
        }


class PrequentialEvaluator:
    """Test-then-train driver around a classifier-like model.

    >>> from repro.ml.classifier import OnlineClassifier
    >>> ev = PrequentialEvaluator(OnlineClassifier(), window=50)
    >>> _ = ev.step(Datum.from_mapping({"x": 1.0}), "a")
    """

    def __init__(self, model: _ClassifierLike, window: int = 200) -> None:
        self.model = model
        self.accuracy = PrequentialAccuracy(window=window)
        self.skipped_cold = 0

    def step(self, datum: Datum, label: str) -> bool | None:
        """Predict, score, then train on one labelled example.

        Returns whether the prediction was correct, or ``None`` while the
        model cannot predict yet (those examples train but do not score —
        the usual prequential warm-up convention).
        """
        correct: bool | None
        try:
            predicted = self.model.classify(datum)
        except Exception:  # untrained model — implementation-specific error
            self.skipped_cold += 1
            correct = None
        else:
            predicted_label = getattr(predicted, "label", predicted)
            if isinstance(predicted_label, tuple):
                predicted_label = predicted_label[0]
            correct = predicted_label == label
            self.accuracy.record(correct)
        self.model.train(datum, label)
        return correct
