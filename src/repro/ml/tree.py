"""Hoeffding tree (VFDT) — an online decision tree classifier.

Linear learners (the Jubatus classifier family in :mod:`repro.ml.linear`)
cannot represent concepts like "hot AND dark" or XOR-shaped regions, which
IoT rule-like contexts often are. A Hoeffding tree (Domingos & Hulten,
"Mining High-Speed Data Streams", KDD 2000) grows a decision tree from a
stream: each leaf accumulates statistics, and a split is installed once
the Hoeffding bound guarantees — with confidence ``1 - delta`` — that the
best split found on the sample seen so far is the best split overall.

This implementation keeps, per leaf, a bounded reservoir of (value, label)
pairs per numeric feature. Split candidates are midpoints between adjacent
class-distinct values; gain is entropy reduction; missing features route
to the split's majority side. Strictly incremental: O(features) per train
step plus an O(reservoir log reservoir) split evaluation every
``grace_period`` examples at a leaf.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Any

from repro.errors import ModelError
from repro.ml.features import Datum
from repro.util.validate import require_in_range, require_positive

__all__ = ["HoeffdingTreeClassifier"]


def _entropy(counts: Counter) -> float:
    # Integer counts: addition is associative, any order gives one answer.
    total = sum(counts.values())  # repro: lint-ok[DET006]
    if total == 0:
        return 0.0
    result = 0.0
    for count in counts.values():
        if count > 0:
            p = count / total
            result -= p * math.log2(p)
    return result


class _Node:
    """A tree node: either a leaf (collecting statistics) or a split."""

    __slots__ = (
        "feature",
        "threshold",
        "left",
        "right",
        "majority_goes_left",
        "class_counts",
        "reservoir",
        "seen_since_eval",
        "depth",
    )

    def __init__(self, depth: int) -> None:
        self.feature: str | None = None  # None = leaf
        self.threshold = 0.0
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.majority_goes_left = True
        self.class_counts: Counter = Counter()
        self.reservoir: dict[str, list[tuple[float, str]]] = {}
        self.seen_since_eval = 0
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class HoeffdingTreeClassifier:
    """Online decision tree over the numeric values of datums.

    Parameters
    ----------
    grace_period:
        Examples a leaf absorbs between split evaluations.
    delta:
        Hoeffding bound confidence parameter (smaller = more conservative).
    tie_threshold:
        Split anyway when the bound shrinks below this (breaks ties
        between near-equal attributes).
    max_depth:
        Hard growth limit.
    reservoir_size:
        Per-feature sample memory per leaf (uniform reservoir sampling).
    """

    def __init__(
        self,
        grace_period: int = 50,
        delta: float = 1e-5,
        tie_threshold: float = 0.05,
        max_depth: int = 8,
        reservoir_size: int = 256,
        seed: int = 0,
    ) -> None:
        require_positive(grace_period, "grace_period")
        require_in_range(delta, 1e-12, 0.5, "delta")
        require_positive(max_depth, "max_depth")
        require_positive(reservoir_size, "reservoir_size")
        self.grace_period = grace_period
        self.delta = delta
        self.tie_threshold = tie_threshold
        self.max_depth = max_depth
        self.reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._root = _Node(depth=0)
        self.examples_seen = 0
        self.splits_installed = 0

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train(self, features: dict[str, float], label: str) -> bool:
        """Absorb one example; returns True if the tree grew."""
        if not label:
            raise ModelError("empty label")
        self.examples_seen += 1
        leaf = self._route(features)
        leaf.class_counts[label] += 1
        for feature, value in features.items():
            bucket = leaf.reservoir.setdefault(feature, [])
            if len(bucket) < self.reservoir_size:
                bucket.append((float(value), label))
            else:
                # Uniform reservoir replacement over the leaf's lifetime.
                index = self._rng.randrange(leaf.class_counts.total())
                if index < self.reservoir_size:
                    bucket[index % self.reservoir_size] = (float(value), label)
        leaf.seen_since_eval += 1
        if (
            leaf.seen_since_eval >= self.grace_period
            and leaf.depth < self.max_depth
            and len(leaf.class_counts) > 1
        ):
            leaf.seen_since_eval = 0
            return self._try_split(leaf)
        return False

    def train_datum(self, datum: Datum, label: str) -> bool:
        return self.train(dict(datum.num_values), label)

    def _route(self, features: dict[str, float]) -> _Node:
        node = self._root
        while not node.is_leaf:
            value = features.get(node.feature)
            if value is None:
                go_left = node.majority_goes_left
            else:
                go_left = value <= node.threshold
            node = node.left if go_left else node.right  # type: ignore[assignment]
        return node

    # ------------------------------------------------------------------
    # Split machinery
    # ------------------------------------------------------------------

    def _best_split_for_feature(
        self, samples: list[tuple[float, str]]
    ) -> tuple[float, float] | None:
        """(gain, threshold) of the best binary split, or None."""
        if len(samples) < 2:
            return None
        ordered = sorted(samples, key=lambda pair: pair[0])
        total_counts = Counter(label for _v, label in ordered)
        base = _entropy(total_counts)
        n = len(ordered)
        left_counts: Counter = Counter()
        best: tuple[float, float] | None = None
        for i in range(n - 1):
            value, label = ordered[i]
            left_counts[label] += 1
            next_value = ordered[i + 1][0]
            if next_value == value:
                continue  # can only cut between distinct values
            left_n = i + 1
            right_counts = total_counts - left_counts
            gain = base - (
                left_n / n * _entropy(left_counts)
                + (n - left_n) / n * _entropy(right_counts)
            )
            if best is None or gain > best[0]:
                best = (gain, (value + next_value) / 2.0)
        return best

    def _try_split(self, leaf: _Node) -> bool:
        candidates: list[tuple[float, str, float]] = []  # (gain, feature, thr)
        for feature, samples in leaf.reservoir.items():
            result = self._best_split_for_feature(samples)
            if result is not None:
                candidates.append((result[0], feature, result[1]))
        if not candidates:
            return False
        candidates.sort(reverse=True)
        best_gain = candidates[0][0]
        second_gain = candidates[1][0] if len(candidates) > 1 else 0.0
        n = leaf.class_counts.total()
        value_range = math.log2(max(2, len(leaf.class_counts)))
        epsilon = math.sqrt(
            value_range * value_range * math.log(1.0 / self.delta) / (2.0 * n)
        )
        if best_gain <= 0.0:
            return False
        if (best_gain - second_gain) <= epsilon and epsilon >= self.tie_threshold:
            return False
        _gain, feature, threshold = candidates[0]
        self._install_split(leaf, feature, threshold)
        return True

    def _install_split(self, leaf: _Node, feature: str, threshold: float) -> None:
        left = _Node(depth=leaf.depth + 1)
        right = _Node(depth=leaf.depth + 1)
        # Seed the children's class counts from the reservoir so they
        # predict sensibly before fresh examples arrive.
        for value, label in leaf.reservoir.get(feature, ()):
            (left if value <= threshold else right).class_counts[label] += 1
        leaf.feature = feature
        leaf.threshold = threshold
        leaf.majority_goes_left = (
            left.class_counts.total() >= right.class_counts.total()
        )
        leaf.left = left
        leaf.right = right
        leaf.reservoir = {}
        leaf.class_counts = Counter()
        self.splits_installed += 1

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def class_probabilities(self, features: dict[str, float]) -> dict[str, float]:
        """Label distribution at the reached leaf (empty if untrained)."""
        node = self._root
        while not node.is_leaf:
            value = features.get(node.feature)
            go_left = (
                node.majority_goes_left if value is None else value <= node.threshold
            )
            node = node.left if go_left else node.right  # type: ignore[assignment]
        total = node.class_counts.total()
        if total == 0:
            return {}
        return {label: count / total for label, count in node.class_counts.items()}

    def classify(self, features: dict[str, float]) -> tuple[str, dict[str, float]]:
        probabilities = self.class_probabilities(features)
        if not probabilities:
            # Fall back to the global distribution (or fail if untrained).
            merged = self._gather_counts(self._root)
            if not merged:
                raise ModelError("classify() on an untrained tree")
            total = sum(merged.values())  # repro: lint-ok[DET006] int counts
            probabilities = {label: c / total for label, c in merged.items()}
        best = max(probabilities, key=lambda label: (probabilities[label], label))
        return best, probabilities

    def classify_datum(self, datum: Datum) -> tuple[str, dict[str, float]]:
        return self.classify(dict(datum.num_values))

    def _gather_counts(self, node: _Node) -> Counter:
        if node.is_leaf:
            return Counter(node.class_counts)
        return self._gather_counts(node.left) + self._gather_counts(node.right)  # type: ignore[arg-type]

    @property
    def is_trained(self) -> bool:
        return self.examples_seen > 0

    @property
    def depth(self) -> int:
        def walk(node: _Node) -> int:
            if node.is_leaf:
                return node.depth
            return max(walk(node.left), walk(node.right))  # type: ignore[arg-type]

        return walk(self._root)

    @property
    def leaf_count(self) -> int:
        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)  # type: ignore[arg-type]

        return walk(self._root)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_state(self) -> dict[str, Any]:
        def encode(node: _Node) -> dict[str, Any]:
            if node.is_leaf:
                return {
                    "leaf": True,
                    "counts": dict(node.class_counts),
                    "depth": node.depth,
                }
            return {
                "leaf": False,
                "feature": node.feature,
                "threshold": node.threshold,
                "majority_left": node.majority_goes_left,
                "depth": node.depth,
                "left": encode(node.left),  # type: ignore[arg-type]
                "right": encode(node.right),  # type: ignore[arg-type]
            }

        return {
            "algorithm": "hoeffding_tree",
            "examples_seen": self.examples_seen,
            "root": encode(self._root),
        }

    def load_state(self, state: dict[str, Any]) -> None:
        def decode(data: dict[str, Any]) -> _Node:
            node = _Node(depth=int(data.get("depth", 0)))
            if data["leaf"]:
                node.class_counts = Counter(
                    {str(k): int(v) for k, v in data["counts"].items()}
                )
                return node
            node.feature = str(data["feature"])
            node.threshold = float(data["threshold"])
            node.majority_goes_left = bool(data["majority_left"])
            node.left = decode(data["left"])
            node.right = decode(data["right"])
            return node

        self._root = decode(state["root"])
        self.examples_seen = int(state.get("examples_seen", 0))
