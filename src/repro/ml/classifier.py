"""High-level online classifier facade.

Bundles a :class:`~repro.ml.features.FeatureExtractor` with a
:class:`~repro.ml.linear.LinearLearner` behind the two calls the
middleware's analysis classes need: ``train(datum, label)`` and
``classify(datum)``. This mirrors the Jubatus classifier client API used in
the paper's prototype.
"""

from __future__ import annotations

from typing import Any

from repro.ml.features import Datum, FeatureExtractor
from repro.ml.linear import LinearLearner, make_learner

__all__ = ["OnlineClassifier"]


class OnlineClassifier:
    """Datum-in, label-out online multiclass classifier.

    >>> clf = OnlineClassifier(algorithm="pa1")
    >>> for _ in range(3):
    ...     clf.train(Datum.from_mapping({"x": 1.0}), "hot")
    ...     clf.train(Datum.from_mapping({"x": -1.0}), "cold")
    >>> clf.classify(Datum.from_mapping({"x": 0.8})).label
    'hot'
    """

    class Result:
        """Classification outcome: best label plus per-label margins."""

        __slots__ = ("label", "scores")

        def __init__(self, label: str, scores: dict[str, float]) -> None:
            self.label = label
            self.scores = scores

        def margin(self) -> float:
            """Gap between the best and second-best scores (confidence)."""
            if len(self.scores) < 2:
                return self.scores.get(self.label, 0.0)
            ordered = sorted(self.scores.values(), reverse=True)
            return ordered[0] - ordered[1]

        def __repr__(self) -> str:  # pragma: no cover
            return f"Result({self.label!r}, margin={self.margin():.4g})"

    def __init__(
        self,
        algorithm: str = "pa1",
        standardize: bool = False,
        learner: LinearLearner | None = None,
        **params: Any,
    ) -> None:
        self.learner = learner if learner is not None else make_learner(algorithm, **params)
        self.extractor = FeatureExtractor(standardize=standardize)

    def train(self, datum: Datum, label: str) -> bool:
        """Fold in one labelled datum; True if the model changed."""
        features = self.extractor.extract(datum, update=True)
        return self.learner.train(features, label)

    def classify(self, datum: Datum) -> "OnlineClassifier.Result":
        """Classify one datum (raises ModelError if never trained)."""
        features = self.extractor.extract(datum, update=False)
        label, scores = self.learner.classify(features)
        return self.Result(label, scores)

    @property
    def is_trained(self) -> bool:
        return self.learner.is_trained

    @property
    def labels(self) -> list[str]:
        return self.learner.labels

    def to_state(self) -> dict[str, Any]:
        return self.learner.to_state()

    def load_state(self, state: dict[str, Any]) -> None:
        self.learner.load_state(state)
