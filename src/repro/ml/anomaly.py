"""Streaming anomaly detection.

Two detectors cover the elderly-monitoring application's needs (§III-A-1,
"detect emergency situations like a bone fracture by fall"):

* :class:`RobustZScore` — per-dimension running mean/std; the score is the
  largest absolute z-score across dimensions. O(dims) per datum, zero
  memory growth. Good for point outliers in magnitude.
* :class:`LofLite` — a bounded-window variant of Jubatus's ``anomaly``
  (LOF-based): the score is the ratio of the query's k-NN distance to the
  average k-NN distance among its neighbours inside a ring-buffer window.
  Catches density anomalies that z-scores miss, at O(window) per datum.

Both expose the same two-method protocol: ``add(datum) -> score`` (score
then learn) and ``calc_score(datum)`` (score only).
"""

from __future__ import annotations

import math

from repro.errors import ModelError
from repro.ml.features import Datum
from repro.util.ringbuffer import RingBuffer
from repro.util.stats import RunningStats
from repro.util.validate import require_positive

__all__ = ["RobustZScore", "LofLite"]


class RobustZScore:
    """Max absolute z-score across numeric dimensions.

    Until a dimension has ``min_samples`` observations its contribution is
    0.0 (everything is normal while the baseline forms). Unseen dimensions
    on the scoring path contribute 0.0 as well.
    """

    def __init__(self, min_samples: int = 10) -> None:
        self.min_samples = require_positive(min_samples, "min_samples")
        self._stats: dict[str, RunningStats] = {}

    def calc_score(self, datum: Datum) -> float:
        score = 0.0
        for key, value in datum.num_values.items():
            stats = self._stats.get(key)
            if stats is None or stats.count < self.min_samples:
                continue
            sigma = stats.stddev
            if sigma <= 1e-12:
                # Constant-so-far dimension: any deviation is maximally odd.
                score = max(score, math.inf if value != stats.mean else 0.0)
                continue
            score = max(score, abs(value - stats.mean) / sigma)
        return score

    def add(self, datum: Datum) -> float:
        """Score the datum, then absorb it into the baseline."""
        score = self.calc_score(datum)
        for key, value in datum.num_values.items():
            stats = self._stats.get(key)
            if stats is None:
                stats = self._stats[key] = RunningStats()
            stats.add(value)
        return score

    @property
    def dimensions(self) -> list[str]:
        return sorted(self._stats)


class LofLite:
    """Local-outlier-factor over a sliding window of recent points.

    Points are the numeric parts of datums projected onto the union of the
    keys seen so far (missing keys read as 0.0). With fewer than
    ``k + 1`` stored points every score is 1.0 (indistinguishable from
    normal), so the detector self-bootstraps on the live stream.
    """

    def __init__(self, k: int = 5, window: int = 256) -> None:
        self.k = require_positive(k, "k")
        if window <= k:
            raise ModelError(f"window ({window}) must exceed k ({k})")
        self._window: RingBuffer[dict[str, float]] = RingBuffer(window)

    def _distance(self, a: dict[str, float], b: dict[str, float]) -> float:
        keys = sorted(set(a) | set(b))
        return math.sqrt(
            sum((a.get(key, 0.0) - b.get(key, 0.0)) ** 2 for key in keys)
        )

    def _knn_distance(self, point: dict[str, float], exclude_self: bool) -> float:
        """Average distance to the k nearest stored neighbours."""
        distances = sorted(
            self._distance(point, other) for other in self._window
        )
        if exclude_self and distances and distances[0] == 0.0:
            distances = distances[1:]
        neighbours = distances[: self.k]
        if len(neighbours) < self.k:
            return 0.0
        return sum(neighbours) / self.k

    def calc_score(self, datum: Datum) -> float:
        """k-NN distance ratio; ~1.0 is normal, >>1.0 is anomalous."""
        point = dict(datum.num_values)
        if len(self._window) <= self.k:
            return 1.0
        own = self._knn_distance(point, exclude_self=False)
        if own <= 1e-12:
            return 1.0  # sitting on top of existing data
        # Average neighbours' own k-NN distances (reachability proxy).
        neighbour_distances = sorted(
            ((self._distance(point, other), other) for other in self._window),
            key=lambda pair: pair[0],
        )[: self.k]
        reach = [
            self._knn_distance(other, exclude_self=True)
            for _d, other in neighbour_distances
        ]
        reach = [r for r in reach if r > 1e-12]
        if not reach:
            return own  # neighbourhood is degenerate; raw distance is the score
        return own / (sum(reach) / len(reach))

    def add(self, datum: Datum) -> float:
        score = self.calc_score(datum)
        self._window.append(dict(datum.num_values))
        return score

    @property
    def size(self) -> int:
        return len(self._window)
