"""Online regression: passive-aggressive with an epsilon-insensitive loss.

Jubatus's ``regression`` service runs PA regression; the home-appliance
example uses it to learn comfort setpoints from environment streams.
"""

from __future__ import annotations

from typing import Any

from repro.ml.features import Datum, FeatureExtractor, FeatureVector
from repro.ml.storage import SparseVector
from repro.util.validate import require_non_negative, require_positive

__all__ = ["PARegression"]


class PARegression:
    """PA-I regression (Crammer et al. 2006, §5).

    Predicts ``w . x``; an update occurs when the absolute error exceeds
    ``epsilon``, moving ``w`` just enough (capped by ``c``) to bring the
    example inside the epsilon tube.
    """

    def __init__(
        self, c: float = 1.0, epsilon: float = 0.1, standardize: bool = False
    ) -> None:
        self.c = require_positive(c, "c")
        self.epsilon = require_non_negative(epsilon, "epsilon")
        self.weights = SparseVector()
        self.extractor = FeatureExtractor(standardize=standardize)
        self.examples_seen = 0
        self.updates = 0
        self._mix_base = SparseVector()

    # ------------------------------------------------------------------
    # Core (feature-vector level)
    # ------------------------------------------------------------------

    def predict_features(self, features: FeatureVector) -> float:
        return self.weights.dot(features)

    def train_features(self, features: FeatureVector, target: float) -> bool:
        self.examples_seen += 1
        error = target - self.weights.dot(features)
        loss = abs(error) - self.epsilon
        if loss <= 0:
            return False
        norm2 = sum(v * v for v in features.values())
        if norm2 <= 0:
            return False
        tau = min(self.c, loss / norm2)
        self.weights.add(features, scale=tau if error > 0 else -tau)
        self.updates += 1
        return True

    # ------------------------------------------------------------------
    # Datum-level API (matches OnlineClassifier)
    # ------------------------------------------------------------------

    def train(self, datum: Datum, target: float) -> bool:
        return self.train_features(self.extractor.extract(datum, update=True), target)

    def predict(self, datum: Datum) -> float:
        return self.predict_features(self.extractor.extract(datum, update=False))

    # ------------------------------------------------------------------
    # MIX support
    # ------------------------------------------------------------------

    def collect_diff(self) -> dict[str, dict[str, float]]:
        delta = self.weights.copy()
        delta.add(self._mix_base.to_dict(), scale=-1.0)
        return {"_regression": delta.to_dict()}

    def apply_mixed(self, mixed_diff: dict[str, dict[str, float]]) -> None:
        merged = self._mix_base.copy()
        merged.add(mixed_diff.get("_regression", {}))
        self.weights = merged
        self._mix_base = merged.copy()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_state(self) -> dict[str, Any]:
        return {
            "algorithm": "pa_regression",
            "weights": self.weights.to_dict(),
            "c": self.c,
            "epsilon": self.epsilon,
            "examples_seen": self.examples_seen,
            "updates": self.updates,
        }

    def load_state(self, state: dict[str, Any]) -> None:
        self.weights = SparseVector.from_dict(state["weights"])
        self._mix_base = self.weights.copy()
        self.examples_seen = int(state.get("examples_seen", 0))
        self.updates = int(state.get("updates", 0))
