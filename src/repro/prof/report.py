"""Profile exports: text tree, folded stacks, Chrome counters, digest.

All exports are pure functions of a :class:`~repro.prof.profiler.Profiler`
(or, for the counter track, of a trace carrying its ``prof.sample``
records), iterate in sorted order and round deterministically — the same
run always serializes byte-identically, which is what lets the continuous
benchmark gate compare profile digests across commits.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import parse_metric_key
from repro.prof.profiler import PROF_SAMPLE_EVENT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.prof.profiler import Profiler
    from repro.sim.trace import Tracer

__all__ = [
    "chrome_counter_events",
    "folded_stacks",
    "format_profile_tree",
    "profile_digest",
    "profile_to_dict",
    "utilization_rows",
]


def _by_node(
    profiler: "Profiler",
) -> dict[str, dict[str, list[tuple[str, float, int]]]]:
    """Regroup the flat busy table: node -> domain -> [(op, busy, count)]."""
    tree: dict[str, dict[str, list[tuple[str, float, int]]]] = {}
    for (node, domain, op), (busy, count) in sorted(profiler.busy.items()):
        tree.setdefault(node, {}).setdefault(domain, []).append((op, busy, count))
    return tree


def profile_to_dict(profiler: "Profiler") -> dict[str, Any]:
    """JSON-ready profile: busy tree, utilizations, kernel event counts."""
    now = profiler.runtime.now
    nodes: dict[str, Any] = {}
    for node, domains in _by_node(profiler).items():
        entry: dict[str, Any] = {}
        for domain, ops in domains.items():
            entry[domain] = {
                op: {"busy_s": round(busy, 9), "count": count}
                for op, busy, count in sorted(ops)
            }
        if node in profiler.cpu_nodes():
            entry["cpu_utilization"] = round(profiler.cpu_utilization(node), 9)
        nodes[node] = entry
    return {
        "elapsed_s": round(now, 9),
        "nodes": nodes,
        "wlan_utilization": round(profiler.wlan_utilization(), 9),
        "kernel_events": dict(sorted(profiler.event_counts.items())),
        "events_profiled": profiler.events_profiled,
        "samples": profiler.samples,
    }


def folded_stacks(profiler: "Profiler") -> str:
    """Folded-stack lines (``node;domain;op <microseconds>``), sorted.

    Feed to ``flamegraph.pl`` or speedscope for a busy-time flamegraph of
    where the virtual milliseconds went.
    """
    lines = []
    for (node, domain, op), (busy, _count) in sorted(profiler.busy.items()):
        lines.append(f"{node};{domain};{op} {int(round(busy * 1e6))}")
    return "\n".join(lines) + ("\n" if lines else "")


def profile_digest(profiler: "Profiler") -> str:
    """SHA-256 over the folded-stack rendering (regression fingerprint)."""
    return hashlib.sha256(folded_stacks(profiler).encode()).hexdigest()


def format_profile_tree(profiler: "Profiler", title: str = "") -> str:
    """The "where did the millisecond go" tree.

    One block per node: total CPU busy time with utilization over the
    whole run, then per-operation rows sorted by descending busy time;
    WLAN airtime per sending station; a kernel section with the
    busiest event handlers.
    """
    now = profiler.runtime.now
    lines: list[str] = []
    if title:
        lines += [title, "=" * len(title)]
    lines.append(f"profile over {now:.3f} s of virtual time")
    tree = _by_node(profiler)
    for node in sorted(tree):
        domains = tree[node]
        cpu_ops = domains.get("cpu", [])
        cpu_busy = sum(busy for _op, busy, _count in cpu_ops)
        header = f"\n{node}"
        if cpu_ops:
            util = profiler.cpu_utilization(node)
            header += f" — cpu busy {cpu_busy * 1e3:.3f} ms ({util * 100:.1f}% util)"
        lines.append(header)
        for op, busy, count in sorted(cpu_ops, key=lambda row: (-row[1], row[0])):
            share = busy / cpu_busy if cpu_busy > 0 else 0.0
            lines.append(
                f"  cpu  {op:<18} {busy * 1e3:>10.3f} ms  {share * 100:>5.1f}%"
                f"  {count:>6}x"
            )
        for op, busy, count in sorted(domains.get("wlan", [])):
            lines.append(
                f"  wlan {op:<18} {busy * 1e3:>10.3f} ms         {count:>6} frames"
            )
    lines.append(
        f"\nwlan channel airtime: {profiler.wlan_utilization() * 100:.1f}% of elapsed"
    )
    counts = profiler.event_counts
    if counts:
        lines.append(f"\nkernel: {profiler.events_profiled} events executed")
        busiest = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:12]
        for name, count in busiest:
            lines.append(f"  {count:>8}x  {name}")
    return "\n".join(lines)


def utilization_rows(tracer: "Tracer") -> list[dict[str, Any]]:
    """Flatten ``prof.sample`` records into rows for tables and export.

    Each row is ``{"t": time, "series": key, "value": v, "node": ...}``
    with the node label recovered via :func:`parse_metric_key`.
    """
    rows: list[dict[str, Any]] = []
    for record in tracer.select(event=PROF_SAMPLE_EVENT):
        for key, value in sorted(record["u"].items()):
            name, labels = parse_metric_key(key)
            rows.append(
                {
                    "t": record.time,
                    "series": name,
                    "value": value,
                    **labels,
                }
            )
    return rows


def chrome_counter_events(tracer: "Tracer") -> list[dict[str, Any]]:
    """Chrome ``trace_event`` counter track from the sampled timelines.

    Pairs with :func:`repro.obs.breakdown.to_chrome_trace`: merge the two
    event lists into one ``traceEvents`` array and the utilization
    counters render above the span rows in chrome://tracing / Perfetto.
    """
    events: list[dict[str, Any]] = []
    for row in utilization_rows(tracer):
        name = row["series"]
        node = row.get("node")
        track = f"{name}{{{node}}}" if node else name
        events.append(
            {
                "ph": "C",
                "pid": 0,
                "name": track,
                "ts": round(row["t"] * 1e6, 3),
                "args": {"value": row["value"]},
            }
        )
    return events
