"""Deterministic sim-time profiling: resource accounting over virtual time.

PR 2's observability layer answers *how long* a flow took; this package
answers *which resource the time was spent on*. It has two halves (see
``docs/ARCHITECTURE.md`` — "Profiling & continuous benchmarking"):

* :mod:`repro.prof.profiler` — the :class:`Profiler` attached to a
  runtime as ``runtime.prof``, fed by hooks in the CPU queues
  (:mod:`repro.sim.resources`), the WLAN medium (:mod:`repro.net.wlan`)
  and the kernel (handler brackets via a :class:`~repro.sim.kernel.KernelMonitor`);
  it accumulates a node → domain → operation busy-time profile plus
  utilization timelines sampled into the trace on a fixed sim-time
  cadence (kernel epilogues, so samples are schedule-invariant);
* :mod:`repro.prof.report` — exports: the "where did the millisecond
  go" text tree, folded-stack flamegraph lines, Chrome ``trace_event``
  counter tracks, a JSON dict, and a profile digest for regression
  gating.

Like ``runtime.obs`` and ``runtime.san``, profiling is strictly opt-in:
``runtime.prof`` is ``None`` by default and every hook site guards on
that, so the disabled cost is one attribute load per hook.
"""

from __future__ import annotations

from repro.prof.profiler import (
    PROF_SAMPLE_EVENT,
    BusyIntegrator,
    Profiler,
    enable_profiling,
)
from repro.prof.report import (
    chrome_counter_events,
    folded_stacks,
    format_profile_tree,
    profile_digest,
    profile_to_dict,
    utilization_rows,
)

__all__ = [
    "PROF_SAMPLE_EVENT",
    "BusyIntegrator",
    "Profiler",
    "enable_profiling",
    "chrome_counter_events",
    "folded_stacks",
    "format_profile_tree",
    "profile_digest",
    "profile_to_dict",
    "utilization_rows",
]
