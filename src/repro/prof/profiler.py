"""The sim-time profiler: busy-time accounting and utilization timelines.

Everything here runs *inside* the simulation but measures only virtual
time, so a profile is a pure function of (scenario, seed): two runs with
the same inputs produce byte-identical profiles, and the schedule
sanitizer's perturbation replay (:mod:`repro.san`) must not change them
either. Three design points make that hold:

* **Commutative accumulation.** Busy time is summed per
  ``(node, domain, operation)`` key; sums and counts are invariant to
  the order same-instant events fire in.
* **Interval bookkeeping.** A resource grant (a CPU service, a WLAN
  airtime occupation) is recorded as a closed interval on the virtual
  timeline (:class:`BusyIntegrator`), so "busy time inside a sampling
  window" is geometric overlap, not charge-at-submit bookkeeping — a
  node's busy time up to *t* can never exceed ``servers * t``.
* **Epilogue sampling.** The utilization sampler runs as a kernel
  *epilogue* (after every normal event of its instant, perturbed or
  not), so the state it snapshots — queue watermarks, broker occupancy —
  is the end-of-instant state under every tie-break schedule.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Any, Callable

from repro.obs.metrics import metric_key
from repro.sim.events import EventHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.base import Runtime

__all__ = ["PROF_SAMPLE_EVENT", "BusyIntegrator", "Profiler", "enable_profiling"]

#: Trace event name under which utilization samples are recorded.
PROF_SAMPLE_EVENT = "prof.sample"

#: Epilogue priority of the sampler: after WLAN flushes (0) and chaos
#: fault application (1), so a sample sees the instant fully settled.
_SAMPLER_PRIORITY = 2


class BusyIntegrator:
    """Busy intervals on the virtual timeline, queryable by window.

    Intervals are appended with nondecreasing start times (guaranteed by
    the hook sites: a grant starts at the grant instant or later, and
    grants arrive in virtual-time order). They may overlap (k-server
    CPUs, queued airtime grants), so window queries sum *overlap* — for
    a single-server resource the result can never exceed the window.

    Storage is three parallel arrays — starts, ends, and a running
    maximum of ends — so a window query bisects to the first interval
    that can overlap and to the first that starts past the window,
    scanning only the slice between.  The scanned intervals, their
    summation order, and the ``overlap > 0`` guard are exactly those of
    the naive full scan, so results are bit-identical to it (profile
    digests depend on that).
    """

    __slots__ = ("_starts", "_ends", "_maxends", "_total")

    def __init__(self) -> None:
        self._starts: list[float] = []
        self._ends: list[float] = []
        #: ``_maxends[i] == max(_ends[:i+1])`` — nondecreasing, bisectable.
        self._maxends: list[float] = []
        self._total = 0.0

    def add(self, start: float, duration: float) -> None:
        """Record a grant of ``duration`` seconds beginning at ``start``."""
        if duration <= 0.0:
            return
        end = start + duration
        maxends = self._maxends
        self._starts.append(start)
        self._ends.append(end)
        if maxends and maxends[-1] > end:
            maxends.append(maxends[-1])
        else:
            maxends.append(end)
        self._total += duration

    @property
    def total(self) -> float:
        """Total granted busy time (including portions not yet elapsed)."""
        return self._total

    @property
    def grants(self) -> int:
        return len(self._starts)

    def busy_between(self, a: float, b: float) -> float:
        """Aggregate busy seconds inside the window ``[a, b]``."""
        if b <= a:
            return 0.0
        starts = self._starts
        # Everything from the first ``start >= b`` onward is irrelevant
        # (starts are nondecreasing); everything before the first running
        # max-of-ends ``> a`` has ``end <= a`` and contributes 0.
        hi = bisect_left(starts, b)
        if hi == 0:
            return 0.0
        lo = bisect_right(self._maxends, a, 0, hi)
        busy = 0.0
        ends = self._ends
        for i in range(lo, hi):
            start = starts[i]
            end = ends[i]
            overlap = (end if end < b else b) - (start if start > a else a)
            if overlap > 0.0:
                busy += overlap
        return busy

    def busy_up_to(self, t: float) -> float:
        """Aggregate busy seconds in ``[0, t]``."""
        return self.busy_between(0.0, t)


class Profiler:
    """Hierarchical busy-time profile plus sampled utilization timelines.

    Attached to a runtime as ``runtime.prof`` by :func:`enable_profiling`.
    The hook surface (all guarded by ``runtime.prof is not None`` at the
    call sites):

    * :meth:`on_cpu_start` / :meth:`on_cpu_end` — bracket one CPU
      service (:class:`~repro.sim.resources.CpuResource` dispatch and
      completion);
    * :meth:`on_airtime` — one WLAN channel occupation
      (:meth:`~repro.net.wlan.WlanMedium._transmit_now`);
    * the :class:`~repro.sim.kernel.KernelMonitor` protocol — handler
      brackets counting events per callback.
    """

    def __init__(self, runtime: "Runtime", interval_s: float = 1.0) -> None:
        from repro.runtime.state import tracked_state

        self.runtime = runtime
        self.interval_s = float(interval_s)
        self.samples = 0
        #: (node, domain, operation) -> [busy_s, completions]; charged at
        #: grant completion, so the tree covers finished work only.
        self._busy: dict[tuple[str, str, str], list[float]] = {}
        #: Per-node CPU busy timelines (aggregate over servers).
        self._cpu_timeline: dict[str, BusyIntegrator] = {}
        #: Shared-channel airtime timeline.
        self._wlan_timeline = BusyIntegrator()
        #: Kernel handler brackets: callback qualname -> events executed.
        self._event_counts: dict[str, int] = {}
        self.events_profiled = 0
        self._last_sample_t = runtime.now
        self._sampling = False
        # All profiler accumulation is commutative (sums, counts, interval
        # unions), so concurrent same-instant charges are benign; the
        # sampler itself runs as an end-of-instant epilogue.
        self._cell = tracked_state(runtime, "prof", "accounting")  # repro: san-ok[SAN001]

    # ------------------------------------------------------------------
    # CPU hooks (repro.sim.resources)
    # ------------------------------------------------------------------

    #: Resource-name -> node-name memo (a handful of distinct names,
    #: queried on every CPU grant). Shared: the mapping is pure.
    _node_names: dict[str, str] = {}

    @classmethod
    def _node_of(cls, resource_name: str) -> str:
        """``module-e.cpu`` -> ``module-e`` (bare names pass through)."""
        node = cls._node_names.get(resource_name)
        if node is None:
            node = resource_name
            if resource_name.endswith(".cpu"):
                node = resource_name[: -len(".cpu")]
            cls._node_names[resource_name] = node
        return node

    def on_cpu_start(self, resource_name: str, label: str, service_s: float) -> None:
        """One job entered service on a CPU for ``service_s`` seconds."""
        self._cell.note_write()
        node = self._node_of(resource_name)
        timeline = self._cpu_timeline.get(node)
        if timeline is None:
            timeline = self._cpu_timeline[node] = BusyIntegrator()
        timeline.add(self.runtime.now, service_s)

    def on_cpu_end(self, resource_name: str, label: str, service_s: float) -> None:
        """The job's service elapsed; charge it to the profile tree."""
        self._cell.note_write()
        self._charge(self._node_of(resource_name), "cpu", label, service_s)

    # ------------------------------------------------------------------
    # WLAN hook (repro.net.wlan)
    # ------------------------------------------------------------------

    def on_airtime(self, station: str, start: float, airtime_s: float) -> None:
        """``station`` occupies the shared channel for ``airtime_s``."""
        self._cell.note_write()
        self._wlan_timeline.add(start, airtime_s)
        self._charge(station, "wlan", "airtime", airtime_s)

    def _charge(self, node: str, domain: str, op: str, seconds: float) -> None:
        entry = self._busy.get((node, domain, op))
        if entry is None:
            entry = self._busy[(node, domain, op)] = [0.0, 0.0]
        entry[0] += seconds
        entry[1] += 1.0

    # ------------------------------------------------------------------
    # KernelMonitor protocol (handler brackets)
    # ------------------------------------------------------------------

    #: The profiler only acts on ``event_begin``; declaring the other two
    #: hooks uninteresting lets the kernel skip their dispatch entirely.
    wants_scheduled = False
    wants_begin = True
    wants_end = False

    def event_scheduled(
        self, handle: EventHandle, parent: EventHandle | None
    ) -> None:
        return None

    def event_begin(self, handle: EventHandle) -> None:
        name = getattr(handle.callback, "__qualname__", None)
        if name is None:
            name = type(handle.callback).__name__
        self.events_profiled += 1
        self._event_counts[name] = self._event_counts.get(name, 0) + 1

    def event_end(self, handle: EventHandle) -> None:
        return None

    # ------------------------------------------------------------------
    # Queries (used by repro.prof.report and the bench harness)
    # ------------------------------------------------------------------

    @property
    def busy(self) -> dict[tuple[str, str, str], tuple[float, int]]:
        """Completed busy time: ``(node, domain, op) -> (seconds, count)``."""
        return {
            key: (entry[0], int(entry[1])) for key, entry in self._busy.items()
        }

    @property
    def event_counts(self) -> dict[str, int]:
        return dict(self._event_counts)

    def cpu_nodes(self) -> list[str]:
        return sorted(self._cpu_timeline)

    def cpu_busy_between(self, node: str, a: float, b: float) -> float:
        timeline = self._cpu_timeline.get(node)
        return timeline.busy_between(a, b) if timeline is not None else 0.0

    def cpu_utilization(
        self, node: str, since: float = 0.0, until: float | None = None
    ) -> float:
        """Aggregate CPU busy share of ``node`` over ``[since, until]``.

        For multi-core nodes divide by the core count for per-core
        utilization (the paper's modules are all single-core).
        """
        end = self.runtime.now if until is None else until
        window = end - since
        if window <= 0.0:
            return 0.0
        return self.cpu_busy_between(node, since, end) / window

    def wlan_busy_between(self, a: float, b: float) -> float:
        return self._wlan_timeline.busy_between(a, b)

    def wlan_utilization(
        self, since: float = 0.0, until: float | None = None
    ) -> float:
        end = self.runtime.now if until is None else until
        window = end - since
        if window <= 0.0:
            return 0.0
        return self._wlan_timeline.busy_between(since, end) / window

    # ------------------------------------------------------------------
    # Sampling (utilization timeline into the trace)
    # ------------------------------------------------------------------

    def start_sampling(self) -> None:
        """Arm the periodic end-of-instant sampler (sim kernels only)."""
        kernel = getattr(self.runtime, "kernel", None)
        if kernel is None or self._sampling or self.interval_s <= 0:
            return
        self._sampling = True
        kernel.schedule_epilogue(
            self._tick, delay=self.interval_s, priority=_SAMPLER_PRIORITY
        )

    def stop_sampling(self) -> None:
        self._sampling = False

    def _tick(self) -> None:
        if not self._sampling:
            return
        self.sample()
        self.runtime.kernel.schedule_epilogue(
            self._tick, delay=self.interval_s, priority=_SAMPLER_PRIORITY
        )

    def sample(self) -> dict[str, float]:
        """Snapshot utilization since the previous sample into the trace.

        Emits one ``prof.sample`` record whose ``u`` mapping holds, per
        node, the windowed CPU busy share (aggregate over cores divided
        by the core count) and the waiting-queue watermark since the last
        sample; plus the channel airtime share and any component-exposed
        occupancy gauges (``prof_gauges``, e.g. broker inflight).
        """
        runtime = self.runtime
        now = runtime.now
        window = now - self._last_sample_t
        u: dict[str, float] = {}
        nodes = getattr(runtime, "nodes", None) or {}
        for name in sorted(nodes):
            node = nodes[name]
            cpu = node.cpu
            if cpu is None:
                continue
            if window > 0.0:
                busy = self.cpu_busy_between(name, self._last_sample_t, now)
                util = busy / (window * cpu.servers)
            else:
                util = 0.0
            u[metric_key("prof.cpu.util", {"node": name})] = round(util, 9)
            u[metric_key("prof.cpu.queue_peak", {"node": name})] = float(
                cpu.take_queue_watermark()
            )
            for component in node.components:
                gauges: Callable[[], dict[str, float]] | None = getattr(
                    component, "prof_gauges", None
                )
                if gauges is None:
                    continue
                for gauge_name in sorted(values := gauges()):
                    key = metric_key(
                        f"prof.{gauge_name}",
                        {"component": component.name, "node": name},
                    )
                    u[key] = round(float(values[gauge_name]), 9)
        if getattr(runtime, "wlan", None) is not None and window > 0.0:
            share = self._wlan_timeline.busy_between(self._last_sample_t, now)
            u["prof.wlan.util"] = round(share / window, 9)
        # Sampling consumes the accounting accumulators and moves the
        # window origin the next busy_between() is measured from.
        self._cell.note_write()
        self.samples += 1
        self._last_sample_t = now
        runtime.tracer.emit(now, "prof", PROF_SAMPLE_EVENT, u=u)
        return u


def enable_profiling(
    runtime: "Runtime", interval_s: float | None = None
) -> Profiler | None:
    """Install a :class:`Profiler` on ``runtime`` (idempotent).

    ``interval_s`` defaults to the observability scrape cadence when
    ``repro.obs`` is enabled on the runtime (so utilization samples line
    up with metric scrapes), else 1 s. Only simulated runtimes are
    profiled — under the real runtime virtual-cost accounting is
    meaningless, so this is a no-op returning ``None``.
    """
    if getattr(runtime, "prof", None) is not None:
        return runtime.prof
    kernel = getattr(runtime, "kernel", None)
    if kernel is None:
        return None
    if interval_s is None:
        obs = runtime.obs
        interval_s = obs.scrape_interval_s if obs is not None else 1.0
    profiler = Profiler(runtime, interval_s=interval_s)
    runtime.prof = profiler
    # Handler brackets: chain behind any monitor already installed (the
    # schedule sanitizer), preserving its view of the schedule.
    from repro.sim.kernel import CompositeMonitor

    if kernel.monitor is None:
        kernel.monitor = profiler
    else:
        kernel.monitor = CompositeMonitor((kernel.monitor, profiler))
    profiler.start_sampling()
    return profiler
