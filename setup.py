"""Setuptools shim.

Kept alongside pyproject.toml so ``pip install -e .`` works on offline
machines whose pip/setuptools lack the ``wheel`` package required by the
PEP 660 editable path (pip then falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
