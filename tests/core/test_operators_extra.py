"""Tests for the extended operator set: ewma, delta, throttle, dedup."""

import pytest

from repro.errors import RecipeError

from .conftest import make_subtask


class TestEwmaOperator:
    def test_smoothing_converges_to_constant(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "s", "ewma", inputs=["in"], outputs=["out"], params={"alpha": 0.5}
            ),
        )
        for _ in range(10):
            harness.inject("in", {"v": 10.0})
        harness.settle()
        assert out[0].datum.num_values["v"] == 10.0  # first = raw
        assert out[-1].datum.num_values["v"] == pytest.approx(10.0, abs=0.1)

    def test_damps_spikes(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "s", "ewma", inputs=["in"], outputs=["out"], params={"alpha": 0.2}
            ),
        )
        harness.inject("in", {"v": 0.0})
        harness.inject("in", {"v": 100.0})
        harness.settle()
        assert out[1].datum.num_values["v"] == pytest.approx(20.0)

    def test_selected_keys_only(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "s",
                "ewma",
                inputs=["in"],
                outputs=["out"],
                params={"alpha": 0.5, "keys": ["smooth_me"]},
            ),
        )
        harness.inject("in", {"smooth_me": 0.0, "raw": 0.0})
        harness.inject("in", {"smooth_me": 10.0, "raw": 10.0})
        harness.settle()
        assert out[1].datum.num_values["smooth_me"] == pytest.approx(5.0)
        assert out[1].datum.num_values["raw"] == 10.0

    def test_alpha_validation(self, harness):
        module = harness.add_module("m")
        for i, alpha in enumerate((0.0, 1.5, -1.0)):
            with pytest.raises(RecipeError):
                module.deploy(
                    f"a{i}",
                    make_subtask(
                        "s", "ewma", inputs=["in"], params={"alpha": alpha}
                    ),
                )


class TestDeltaOperator:
    def test_suppresses_unchanged(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        operator = harness.deploy(
            module,
            make_subtask(
                "d", "delta", inputs=["in"], outputs=["out"], params={"key": "v"}
            ),
        )
        for v in (1.0, 1.0, 1.0, 2.0, 2.0):
            harness.inject("in", {"v": v})
        harness.settle()
        assert [r.datum.num_values["v"] for r in out] == [1.0, 2.0]
        assert operator.records_suppressed == 3

    def test_min_change_threshold(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "d",
                "delta",
                inputs=["in"],
                outputs=["out"],
                params={"key": "v", "min_change": 1.0},
            ),
        )
        for v in (0.0, 0.5, 0.9, 1.5, 1.9):
            harness.inject("in", {"v": v})
        harness.settle()
        assert [r.datum.num_values["v"] for r in out] == [0.0, 1.5]

    def test_string_values_compare_by_inequality(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "d", "delta", inputs=["in"], outputs=["out"], params={"key": "state"}
            ),
        )
        for state in ("a", "a", "b", "b", "a"):
            harness.inject("in", {"state": state})
        harness.settle()
        assert [r.datum.string_values["state"] for r in out] == ["a", "b", "a"]

    def test_requires_key(self, harness):
        module = harness.add_module("m")
        with pytest.raises(RecipeError):
            module.deploy("a2", make_subtask("d", "delta", inputs=["in"], params={}))


class TestThrottleOperator:
    def test_limits_rate(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        operator = harness.deploy(
            module,
            make_subtask(
                "t",
                "throttle",
                inputs=["in"],
                outputs=["out"],
                params={"interval_s": 1.0},
            ),
        )
        # 10 records in quick succession, then one after the interval.
        for i in range(10):
            harness.inject("in", {"v": float(i)})
        harness.settle(0.5)
        harness.settle(1.0)
        harness.inject("in", {"v": 99.0})
        harness.settle()
        assert len(out) == 2
        assert out[0].datum.num_values["v"] == 0.0
        assert out[1].datum.num_values["v"] == 99.0
        assert operator.records_suppressed == 9

    def test_requires_interval(self, harness):
        module = harness.add_module("m")
        with pytest.raises(RecipeError):
            module.deploy(
                "a2", make_subtask("t", "throttle", inputs=["in"], params={})
            )


class TestDedupOperator:
    def test_drops_duplicate_sample_ids(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        operator = harness.deploy(
            module,
            make_subtask("d", "dedup", inputs=["in"], outputs=["out"], params={}),
        )
        harness.inject("in", {"v": 1.0}, sample_id="x")
        harness.inject("in", {"v": 1.0}, sample_id="x")
        harness.inject("in", {"v": 2.0}, sample_id="y")
        harness.settle()
        assert [r.sample_id for r in out] == ["x", "y"]
        assert operator.duplicates_dropped == 1

    def test_window_eviction_allows_old_ids_again(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "d", "dedup", inputs=["in"], outputs=["out"], params={"window": 2}
            ),
        )
        for sid in ("a", "b", "c", "a"):  # 'a' evicted by the time it repeats
            harness.inject("in", {"v": 1.0}, sample_id=sid)
        harness.settle()
        assert [r.sample_id for r in out] == ["a", "b", "c", "a"]

    def test_end_to_end_with_qos1(self, harness):
        """dedup restores effectively-once behind an at-least-once flow."""
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "d",
                "dedup",
                inputs=["in"],
                outputs=["out"],
                params={"qos": 1},
            ),
        )
        harness.inject("in", {"v": 1.0}, sample_id="only")
        harness.settle(3.0)
        assert [r.sample_id for r in out] == ["only"]
