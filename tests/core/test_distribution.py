"""PublishClass / SubscribeClass tests."""

from repro.core.distribution import PublishClass, SubscribeClass
from repro.core.flow import FlowRecord, topic_for_stream
from repro.ml.features import Datum
from repro.mqtt.client import MqttClient


def make_record(sample_id="r-0", sensed_at=0.0):
    return FlowRecord(
        sample_id=sample_id,
        source="src",
        sensed_at=sensed_at,
        datum=Datum.from_mapping({"v": 1.0}),
    )


def make_client(harness, name):
    client = MqttClient(
        harness.runtime.add_node(name),
        harness.cluster.broker.address,
        client_id=name,
    )
    client.connect()
    return client


def test_publish_subscribe_round_trip(harness):
    pub_client = make_client(harness, "pn")
    sub_client = make_client(harness, "sn")
    publisher = PublishClass(
        pub_client.node, pub_client, "app", "raw"
    )
    got = []
    SubscribeClass(
        sub_client.node,
        sub_client,
        "app",
        ["raw"],
        lambda stream, record: got.append((stream, record)),
    )
    harness.settle()
    publisher.publish_record(make_record(sensed_at=0.5))
    harness.settle()
    assert len(got) == 1
    stream, record = got[0]
    assert stream == "raw"
    assert record.sensed_at == 0.5
    assert publisher.records_published == 1


def test_subscribe_multiple_streams(harness):
    pub_client = make_client(harness, "pn")
    sub_client = make_client(harness, "sn")
    pub_a = PublishClass(pub_client.node, pub_client, "app", "a")
    pub_b = PublishClass(pub_client.node, pub_client, "app", "b")
    got = []
    subscriber = SubscribeClass(
        sub_client.node,
        sub_client,
        "app",
        ["a", "b"],
        lambda stream, record: got.append(stream),
    )
    harness.settle()
    pub_a.publish_record(make_record("1"))
    pub_b.publish_record(make_record("2"))
    harness.settle()
    assert sorted(got) == ["a", "b"]
    assert subscriber.streams == ["a", "b"]
    assert subscriber.records_received == 2


def test_applications_are_isolated(harness):
    pub_client = make_client(harness, "pn")
    sub_client = make_client(harness, "sn")
    publisher = PublishClass(pub_client.node, pub_client, "other-app", "raw")
    got = []
    SubscribeClass(
        sub_client.node, sub_client, "app", ["raw"], lambda s, r: got.append(r)
    )
    harness.settle()
    publisher.publish_record(make_record())
    harness.settle()
    assert got == []


def test_malformed_payload_counted_not_raised(harness):
    sub_client = make_client(harness, "sn")
    got = []
    subscriber = SubscribeClass(
        sub_client.node, sub_client, "app", ["raw"], lambda s, r: got.append(r)
    )
    probe = make_client(harness, "probe2")
    harness.settle()
    probe.publish(topic_for_stream("app", "raw"), {"not": "a record"})
    harness.settle()
    assert got == []
    assert subscriber.decode_errors == 1


def test_stop_unsubscribes(harness):
    pub_client = make_client(harness, "pn")
    sub_client = make_client(harness, "sn")
    publisher = PublishClass(pub_client.node, pub_client, "app", "raw")
    got = []
    subscriber = SubscribeClass(
        sub_client.node, sub_client, "app", ["raw"], lambda s, r: got.append(r)
    )
    harness.settle()
    subscriber.stop()
    harness.settle()
    publisher.publish_record(make_record())
    harness.settle()
    assert got == []


def test_publish_headers_stamped(harness):
    pub_client = make_client(harness, "pn")
    publisher = PublishClass(pub_client.node, pub_client, "app", "raw")
    seen = []
    sub_client = make_client(harness, "sn")
    sub_client.subscribe(
        topic_for_stream("app", "raw"),
        lambda t, p, pkt: seen.append(pkt.get("headers")),
    )
    harness.settle()
    publisher.publish_record(make_record())
    harness.settle()
    assert seen and seen[0]["stream"] == "raw"
    assert seen[0]["published_at"] > 0.0
