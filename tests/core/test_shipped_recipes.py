"""Every shipped .recipe file must validate and round-trip."""

from pathlib import Path

import pytest

from repro.core.dsl import format_recipe, parse_recipe
from repro.core.splitter import RecipeSplit

RECIPES_DIR = Path(__file__).resolve().parents[2] / "examples" / "recipes"
RECIPE_FILES = sorted(RECIPES_DIR.glob("*.recipe"))


def test_recipe_files_exist():
    assert len(RECIPE_FILES) >= 3


@pytest.mark.parametrize("path", RECIPE_FILES, ids=lambda p: p.stem)
def test_recipe_parses_and_splits(path):
    recipe = parse_recipe(path.read_text())
    subtasks = RecipeSplit().split(recipe)
    assert subtasks
    # Every operator named is registered.
    from repro.core.operators import registered_operators

    known = set(registered_operators())
    assert {s.operator for s in subtasks} <= known


@pytest.mark.parametrize("path", RECIPE_FILES, ids=lambda p: p.stem)
def test_recipe_round_trips(path):
    recipe = parse_recipe(path.read_text())
    clone = parse_recipe(format_recipe(recipe))
    assert set(clone.tasks) == set(recipe.tasks)
    for tid in recipe.tasks:
        assert clone.tasks[tid].params == recipe.tasks[tid].params
    assert clone.stages() == recipe.stages()


def test_smart_home_recipe_deploys_and_runs(harness):
    """The richest shipped recipe (8 operators incl. ewma/delta/throttle)
    runs end to end against the synthetic home."""
    from repro.sensors.base import EventSchedule
    from repro.sensors.devices import EnvironmentSensorModel, SwitchActuator

    events = EventSchedule()
    events.add(5.0, 30.0, "occupied")
    module = harness.add_module("pi-home")
    module.attach_sensor("environment", EnvironmentSensorModel(events, day_length_s=60.0))
    light = SwitchActuator()
    module.attach_actuator("light", light)
    harness.settle()
    recipe = parse_recipe((RECIPES_DIR / "smart_home.recipe").read_text())
    app = harness.cluster.submit(recipe)
    harness.settle(20.0)
    judge = app.operator("occupancy-judge")
    assert judge.records_judged > 0
    actuator = app.operator("ceiling-light")
    assert actuator.records_in > 0
    app.stop()
