"""Fault isolation: broken handlers must not take the runtime down."""

import pytest

from repro.core.operators import StreamOperator, register_operator
from repro.errors import RecipeError

from .conftest import make_subtask


class ExplodingOperator(StreamOperator):
    """Raises on records whose datum carries boom=1."""

    def on_record(self, stream, record):
        if record.datum.num_values.get("boom"):
            raise RuntimeError("kaboom")
        self.emit(record.derive(self.subtask.task_id))


register_operator("exploding", ExplodingOperator)


class TestOperatorIsolation:
    def test_bad_record_does_not_stop_the_pipeline(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        operator = harness.deploy(
            module,
            make_subtask("x", "exploding", inputs=["in"], outputs=["out"]),
        )
        harness.inject("in", {"v": 1.0})
        harness.inject("in", {"boom": 1.0})
        harness.inject("in", {"v": 2.0})
        harness.settle()
        assert len(out) == 2  # good records still flow
        assert operator.processing_errors == 1
        assert not operator.stopped
        errors = harness.runtime.tracer.select("operator.error")
        assert errors and "kaboom" in errors[0]["error"]

    def test_crash_loop_stops_the_operator(self, harness):
        module = harness.add_module("m")
        operator = harness.deploy(
            module,
            make_subtask("x", "exploding", inputs=["in"], outputs=["out"]),
        )
        operator.max_consecutive_errors = 5
        for _ in range(8):
            harness.inject("in", {"boom": 1.0})
        harness.settle()
        assert operator.stopped
        assert operator.processing_errors == 5  # no processing after stop
        assert harness.runtime.tracer.count("operator.crash_loop_stopped") == 1

    def test_good_record_resets_the_crash_counter(self, harness):
        module = harness.add_module("m")
        operator = harness.deploy(
            module,
            make_subtask("x", "exploding", inputs=["in"], outputs=["out"]),
        )
        operator.max_consecutive_errors = 3
        for _ in range(2):
            harness.inject("in", {"boom": 1.0})
        harness.inject("in", {"v": 1.0})
        for _ in range(2):
            harness.inject("in", {"boom": 1.0})
        harness.settle()
        assert not operator.stopped
        assert operator.processing_errors == 4

    def test_other_operators_unaffected(self, harness):
        module = harness.add_module("m")
        out = harness.collect("healthy-out")
        harness.deploy(
            module,
            make_subtask("x", "exploding", inputs=["in"], outputs=["out"]),
        )
        harness.deploy(
            module,
            make_subtask(
                "ok",
                "map",
                inputs=["in"],
                outputs=["healthy-out"],
                params={"fn": "identity"},
            ),
        )
        harness.inject("in", {"boom": 1.0})
        harness.settle()
        assert len(out) == 1  # the healthy operator saw the same record


class TestClientCallbackIsolation:
    def test_broken_subscription_does_not_block_others(self, harness):
        from repro.mqtt.client import MqttClient

        client = MqttClient(
            harness.runtime.add_node("n"),
            harness.cluster.broker.address,
            client_id="c",
        )
        client.connect()
        got = []

        def broken(_t, _p, _pkt):
            raise ValueError("bad handler")

        client.subscribe("t", broken)
        client.subscribe("t", lambda _t, p, _pkt: got.append(p))
        harness.settle()
        publisher = MqttClient(
            harness.runtime.add_node("p"),
            harness.cluster.broker.address,
            client_id="p",
        )
        publisher.connect()
        harness.settle()
        publisher.publish("t", "payload")
        harness.settle()
        assert got == ["payload"]
        assert client.callback_errors == 1
        assert harness.runtime.tracer.count("mqtt.client.callback_error") == 1
