"""Fixtures and helpers for middleware-core tests."""

from __future__ import annotations

import pytest

from repro.core.flow import FlowRecord, topic_for_stream
from repro.core.middleware import IFoTCluster
from repro.core.splitter import SubTask
from repro.ml.features import Datum
from repro.mqtt.client import MqttClient
from repro.runtime.sim import SimRuntime

APP = "test-app"


class ClusterHarness:
    """One cluster plus helpers for driving flows in tests."""

    def __init__(self, seed: int = 5) -> None:
        self.runtime = SimRuntime(seed=seed)
        self.cluster = IFoTCluster(self.runtime, heartbeat_s=2.0)
        self._probe = MqttClient(
            self.runtime.add_node("probe"),
            self.cluster.broker.address,
            client_id="probe",
        )
        self._probe.connect()
        self._sample_counter = 0

    def settle(self, duration: float = 1.0) -> None:
        self.runtime.run(until=self.runtime.now + duration)

    def add_module(self, name: str, **kwargs):
        return self.cluster.add_module(name, **kwargs)

    def deploy(self, module, subtask: SubTask, application: str = APP):
        operator = module.deploy(application, subtask)
        self.settle(0.5)
        return operator

    def inject(
        self,
        stream: str,
        values: dict,
        sample_id: str | None = None,
        source: str = "probe",
        attributes: dict | None = None,
        application: str = APP,
    ) -> FlowRecord:
        """Publish a FlowRecord onto a stream from the probe client."""
        if sample_id is None:
            sample_id = f"inj-{self._sample_counter}"
            self._sample_counter += 1
        record = FlowRecord(
            sample_id=sample_id,
            source=source,
            sensed_at=self.runtime.now,
            datum=Datum.from_mapping(values),
            attributes=dict(attributes or {}),
        )
        self._probe.publish(topic_for_stream(application, stream), record.to_payload())
        return record

    def collect(self, stream: str, application: str = APP) -> list[FlowRecord]:
        """Subscribe the probe to a stream; returns the live record list."""
        records: list[FlowRecord] = []
        self._probe.subscribe(
            topic_for_stream(application, stream),
            lambda t, p, pkt: records.append(FlowRecord.from_payload(p)),
        )
        return records


def make_subtask(
    sid: str,
    operator: str,
    inputs: list[str] | None = None,
    outputs: list[str] | None = None,
    params: dict | None = None,
    shard_index: int = 0,
    shard_count: int = 1,
) -> SubTask:
    return SubTask(
        subtask_id=sid,
        task_id=sid.split("#")[0],
        operator=operator,
        inputs=inputs or [],
        outputs=outputs or [],
        params=params or {},
        shard_index=shard_index,
        shard_count=shard_count,
    )


@pytest.fixture
def harness() -> ClusterHarness:
    h = ClusterHarness()
    h.settle(1.0)
    return h
