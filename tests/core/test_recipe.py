import pytest

from repro.core.recipe import Recipe, TaskSpec
from repro.errors import RecipeError


def linear_recipe():
    return Recipe(
        "app",
        [
            TaskSpec("src", "sensor", outputs=["raw"], params={"device": "d"}),
            TaskSpec("mid", "map", inputs=["raw"], outputs=["clean"]),
            TaskSpec("sink", "train", inputs=["clean"]),
        ],
    )


class TestValidation:
    def test_duplicate_task_id(self):
        with pytest.raises(RecipeError, match="duplicate"):
            Recipe("r", [TaskSpec("a", "map"), TaskSpec("a", "map")])

    def test_empty_recipe(self):
        with pytest.raises(RecipeError):
            Recipe("r", [])

    def test_two_producers_same_stream(self):
        with pytest.raises(RecipeError, match="produced by both"):
            Recipe(
                "r",
                [
                    TaskSpec("a", "sensor", outputs=["s"]),
                    TaskSpec("b", "sensor", outputs=["s"]),
                ],
            )

    def test_dangling_input(self):
        with pytest.raises(RecipeError, match="no task produces"):
            Recipe("r", [TaskSpec("a", "map", inputs=["ghost"])])

    def test_cycle_detected(self):
        with pytest.raises(RecipeError, match="cycle"):
            Recipe(
                "r",
                [
                    TaskSpec("a", "map", inputs=["y"], outputs=["x"]),
                    TaskSpec("b", "map", inputs=["x"], outputs=["y"]),
                ],
            )

    def test_self_loop(self):
        with pytest.raises(RecipeError, match="cycle"):
            Recipe("r", [TaskSpec("a", "map", inputs=["x"], outputs=["x"])])

    def test_parallelism_validation(self):
        with pytest.raises(RecipeError):
            TaskSpec("a", "map", parallelism=0)


class TestGraph:
    def test_topological_order(self):
        recipe = linear_recipe()
        order = recipe.topological_order
        assert order.index("src") < order.index("mid") < order.index("sink")

    def test_stages_group_independent_tasks(self):
        recipe = Recipe(
            "r",
            [
                TaskSpec("s1", "sensor", outputs=["a"]),
                TaskSpec("s2", "sensor", outputs=["b"]),
                TaskSpec("join", "merge", inputs=["a", "b"], outputs=["c"]),
                TaskSpec("end", "train", inputs=["c"]),
            ],
        )
        assert recipe.stages() == [["s1", "s2"], ["join"], ["end"]]

    def test_diamond_stages(self):
        recipe = Recipe(
            "r",
            [
                TaskSpec("src", "sensor", outputs=["raw"]),
                TaskSpec("left", "map", inputs=["raw"], outputs=["l"]),
                TaskSpec("right", "map", inputs=["raw"], outputs=["r"]),
                TaskSpec("join", "merge", inputs=["l", "r"]),
            ],
        )
        assert recipe.stages() == [["src"], ["left", "right"], ["join"]]

    def test_producer_and_consumers(self):
        recipe = linear_recipe()
        assert recipe.producer_of("raw") == "src"
        assert recipe.consumers_of("raw") == ["mid"]
        assert recipe.consumers_of("clean") == ["sink"]
        with pytest.raises(RecipeError):
            recipe.producer_of("ghost")

    def test_streams_listing(self):
        assert linear_recipe().streams == ["clean", "raw"]

    def test_fanout_consumers(self):
        recipe = Recipe(
            "r",
            [
                TaskSpec("src", "sensor", outputs=["raw"]),
                TaskSpec("a", "train", inputs=["raw"]),
                TaskSpec("b", "predict", inputs=["raw"]),
            ],
        )
        assert recipe.consumers_of("raw") == ["a", "b"]


class TestDsl:
    def test_json_round_trip(self):
        recipe = linear_recipe()
        clone = Recipe.from_json(recipe.to_json())
        assert clone.name == recipe.name
        assert set(clone.tasks) == set(recipe.tasks)
        assert clone.tasks["src"].params == {"device": "d"}

    def test_dict_round_trip_preserves_extras(self):
        task = TaskSpec(
            "t",
            "train",
            inputs=["x"],
            params={"model": "classifier"},
            capabilities=["gpu"],
            parallelism=3,
            pin_to="m1",
        )
        clone = TaskSpec.from_dict(task.to_dict())
        assert clone.capabilities == ["gpu"]
        assert clone.parallelism == 3
        assert clone.pin_to == "m1"

    def test_unknown_task_fields_rejected(self):
        with pytest.raises(RecipeError, match="unknown task fields"):
            TaskSpec.from_dict({"id": "a", "operator": "map", "bogus": 1})

    def test_missing_required_field(self):
        with pytest.raises(RecipeError):
            TaskSpec.from_dict({"operator": "map"})

    def test_bad_json(self):
        with pytest.raises(RecipeError):
            Recipe.from_json("not json {")

    def test_from_dict_requires_shape(self):
        with pytest.raises(RecipeError):
            Recipe.from_dict({"tasks": []})
        with pytest.raises(RecipeError):
            Recipe.from_dict([1, 2])
