import pytest

from repro.core.flow import FlowRecord, topic_for_stream
from repro.errors import SerializationError
from repro.ml.features import Datum


def make_record(sample_id="s-0", source="a", sensed_at=1.0, **values):
    return FlowRecord(
        sample_id=sample_id,
        source=source,
        sensed_at=sensed_at,
        datum=Datum.from_mapping(values or {"v": 1.0}),
    )


def test_topic_for_stream():
    assert topic_for_stream("app", "raw") == "ifot/flow/app/raw"


def test_payload_round_trip():
    record = make_record(v=2.5)
    record.path.append("step1")
    record.attributes["score"] = 0.7
    record.merged_ids.append("s-1")
    clone = FlowRecord.from_payload(record.to_payload())
    assert clone.sample_id == record.sample_id
    assert clone.sensed_at == record.sensed_at
    assert clone.datum == record.datum
    assert clone.path == ["step1"]
    assert clone.attributes == {"score": 0.7}
    assert clone.merged_ids == ["s-1"]


def test_from_payload_rejects_garbage():
    with pytest.raises(SerializationError):
        FlowRecord.from_payload({"nope": 1})
    with pytest.raises(SerializationError):
        FlowRecord.from_payload("string")
    with pytest.raises(SerializationError):
        FlowRecord.from_payload({"id": "x", "src": "a", "ts": "NaNish", "datum": {}})


def test_derive_appends_provenance():
    record = make_record()
    derived = record.derive("clean")
    assert derived.path == ["clean"]
    assert derived.sample_id == record.sample_id
    assert derived.datum is record.datum  # unchanged datum is shared
    derived.attributes["x"] = 1
    assert "x" not in record.attributes  # copies are independent


def test_derive_with_new_datum():
    record = make_record(v=1.0)
    new_datum = Datum.from_mapping({"v": 99.0})
    derived = record.derive("map", datum=new_datum)
    assert derived.datum.num_values["v"] == 99.0


def test_merge_keeps_oldest_sensed_at():
    a = make_record(sample_id="a", source="sa", sensed_at=5.0, x=1.0)
    b = make_record(sample_id="b", source="sb", sensed_at=3.0, y=2.0)
    merged = FlowRecord.merge("win", [a, b])
    assert merged.sensed_at == 3.0
    assert merged.sample_id == "b"
    assert merged.source == "sb"
    assert merged.datum.num_values == {"x": 1.0, "y": 2.0}
    assert sorted(merged.merged_ids) == ["a", "b"]


def test_merge_later_record_wins_conflicts():
    a = make_record(sample_id="a", sensed_at=1.0, v=1.0)
    b = make_record(sample_id="b", sensed_at=2.0, v=2.0)
    merged = FlowRecord.merge("win", [a, b])
    assert merged.datum.num_values["v"] == 2.0


def test_merge_accumulates_nested_merged_ids():
    a = make_record(sample_id="a", sensed_at=1.0)
    b = make_record(sample_id="b", sensed_at=2.0)
    first = FlowRecord.merge("w1", [a, b])
    c = make_record(sample_id="c", sensed_at=3.0)
    second = FlowRecord.merge("w2", [first, c])
    assert sorted(second.merged_ids) == ["a", "b", "c"]


def test_merge_empty_rejected():
    with pytest.raises(SerializationError):
        FlowRecord.merge("w", [])


def test_merge_combines_attributes():
    a = make_record(sample_id="a", sensed_at=1.0)
    a.attributes["from_a"] = 1
    b = make_record(sample_id="b", sensed_at=2.0)
    b.attributes["from_b"] = 2
    merged = FlowRecord.merge("w", [a, b])
    assert merged.attributes == {"from_a": 1, "from_b": 2}
