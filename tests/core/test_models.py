import pytest

from repro.core.flow import FlowRecord
from repro.core.models import build_flow_model
from repro.errors import ModelError, RecipeError
from repro.ml.features import Datum


def record(values, attributes=None, sample_id="s"):
    return FlowRecord(
        sample_id=sample_id,
        source="src",
        sensed_at=0.0,
        datum=Datum.from_mapping(values),
        attributes=dict(attributes or {}),
    )


class TestFactory:
    def test_kinds(self):
        for kind in ("classifier", "regression", "anomaly", "cluster"):
            model = build_flow_model({"model": kind})
            assert model is not None

    def test_default_is_classifier(self):
        model = build_flow_model({})
        assert type(model).__name__ == "ClassifierFlowModel"

    def test_unknown_kind(self):
        with pytest.raises(RecipeError):
            build_flow_model({"model": "dnn"})

    def test_bad_params(self):
        with pytest.raises(RecipeError):
            build_flow_model({"model": "classifier", "bogus_param": 1})


class TestClassifierFlowModel:
    def test_label_from_datum_string(self):
        model = build_flow_model({"model": "classifier", "label_key": "label"})
        info = model.train(record({"x": 1.0, "label": "hot"}))
        assert info["trained"] is True and info["label"] == "hot"

    def test_label_from_attributes(self):
        model = build_flow_model({"model": "classifier"})
        info = model.train(record({"x": 1.0}, attributes={"label": "cold"}))
        assert info["label"] == "cold"

    def test_no_label_no_train(self):
        model = build_flow_model({"model": "classifier"})
        info = model.train(record({"x": 1.0}))
        assert info["trained"] is False
        assert not model.ready

    def test_label_stripped_from_features(self):
        """The label must not leak into the feature vector."""
        model = build_flow_model({"model": "classifier", "label_key": "label"})
        for i in range(10):
            model.train(record({"x": 1.0, "label": "a" if i % 2 else "b"}))
        learner = model.mix_model()
        for vector in learner.weights.values():
            assert all(not k.startswith("str$label") for k in vector.keys())

    def test_judge(self):
        model = build_flow_model({"model": "classifier"})
        model.train(record({"x": 1.0, "label": "p"}))
        model.train(record({"x": -1.0, "label": "n"}))
        out = model.judge(record({"x": 2.0}))
        assert out["label"] == "p"
        assert "margin" in out

    def test_state_round_trip(self):
        model = build_flow_model({"model": "classifier"})
        model.train(record({"x": 1.0, "label": "p"}))
        clone = build_flow_model({"model": "classifier"})
        clone.import_state(model.export_state())
        assert clone.ready
        assert clone.judge(record({"x": 1.0}))["label"] == "p"


class TestRegressionFlowModel:
    def test_target_from_datum(self):
        model = build_flow_model(
            {"model": "regression", "target_key": "t", "epsilon": 0.0}
        )
        for i in range(30):
            model.train(record({"x": float(i % 3), "t": float(i % 3) * 2.0}))
        out = model.judge(record({"x": 2.0}))
        assert out["prediction"] == pytest.approx(4.0, abs=1.0)

    def test_no_target_skips(self):
        model = build_flow_model({"model": "regression"})
        assert model.train(record({"x": 1.0}))["trained"] is False
        assert not model.ready

    def test_state_round_trip_restores_ready(self):
        model = build_flow_model({"model": "regression", "target_key": "t"})
        model.train(record({"x": 1.0, "t": 2.0}))
        clone = build_flow_model({"model": "regression", "target_key": "t"})
        clone.import_state(model.export_state())
        assert clone.ready


class TestAnomalyFlowModel:
    def test_zscore_flags_outlier(self):
        model = build_flow_model(
            {"model": "anomaly", "detector": "zscore", "min_samples": 5, "threshold": 4.0}
        )
        import random

        rng = random.Random(0)
        for _ in range(100):
            model.judge(record({"v": rng.gauss(0, 1)}))
        out = model.judge(record({"v": 50.0}))
        assert out["anomalous"] is True and out["score"] > 4.0

    def test_lof_detector_option(self):
        model = build_flow_model(
            {"model": "anomaly", "detector": "lof", "k": 3, "window": 32}
        )
        for i in range(40):
            model.train(record({"v": float(i % 5)}))
        assert model.ready

    def test_learn_on_judge_false_keeps_baseline(self):
        model = build_flow_model(
            {
                "model": "anomaly",
                "detector": "zscore",
                "min_samples": 2,
                "learn_on_judge": False,
            }
        )
        for v in (1.0, 1.1, 0.9, 1.0):
            model.train(record({"v": v}))
        before = model.judge(record({"v": 5.0}))["score"]
        for _ in range(10):
            model.judge(record({"v": 5.0}))
        after = model.judge(record({"v": 5.0}))["score"]
        assert after == pytest.approx(before)

    def test_unknown_detector(self):
        with pytest.raises(RecipeError):
            build_flow_model({"model": "anomaly", "detector": "autoencoder"})

    def test_snapshots_unsupported(self):
        model = build_flow_model({"model": "anomaly"})
        with pytest.raises(ModelError):
            model.export_state()
        with pytest.raises(ModelError):
            model.mix_model()


class TestClusterFlowModel:
    def test_train_and_judge(self):
        model = build_flow_model({"model": "cluster", "k": 2})
        # First two distinct points seed the centroids, so interleave the
        # clusters to seed one centroid in each.
        for v in (0.0, 10.0, 0.1, 10.1):
            model.train(record({"x": v}))
        out = model.judge(record({"x": 9.9}))
        assert out["cluster"] == model.judge(record({"x": 10.05}))["cluster"]
        assert out["distance"] < 1.0

    def test_state_round_trip(self):
        model = build_flow_model({"model": "cluster", "k": 2})
        model.train(record({"x": 0.0}))
        model.train(record({"x": 10.0}))
        clone = build_flow_model({"model": "cluster", "k": 2})
        clone.import_state(model.export_state())
        assert clone.ready
