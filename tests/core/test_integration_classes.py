"""SensorClass / ActuatorClass tests."""

import pytest

from repro.errors import RecipeError
from repro.sensors.base import EventSchedule
from repro.sensors.devices import FixedPayloadModel, SwitchActuator

from .conftest import make_subtask


@pytest.fixture
def sensor_module(harness):
    module = harness.add_module("pi-s")
    module.attach_sensor("sample", FixedPayloadModel(values=2))
    return module


class TestSensorClass:
    def test_samples_at_rate(self, harness, sensor_module):
        out = harness.collect("raw")
        operator = harness.deploy(
            sensor_module,
            make_subtask(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 10},
            ),
        )
        harness.settle(2.0)
        # ~10 Hz over >2 s of run time (deploy settling included).
        assert 15 <= operator.samples_taken <= 30
        # The very last sample may still be in flight when the run stops.
        assert operator.samples_taken - 1 <= len(out) <= operator.samples_taken

    def test_records_carry_sensed_at_and_source(self, harness, sensor_module):
        out = harness.collect("raw")
        harness.deploy(
            sensor_module,
            make_subtask(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 5},
            ),
        )
        harness.settle(1.0)
        record = out[0]
        assert record.source == "pi-s"
        assert 0.0 < record.sensed_at <= harness.runtime.now
        assert record.path == ["sense"]
        assert record.datum.num_values  # has channels

    def test_sample_ids_unique(self, harness, sensor_module):
        out = harness.collect("raw")
        harness.deploy(
            sensor_module,
            make_subtask(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 20},
            ),
        )
        harness.settle(1.0)
        ids = [r.sample_id for r in out]
        assert len(ids) == len(set(ids))

    def test_stop_stops_sampling(self, harness, sensor_module):
        operator = harness.deploy(
            sensor_module,
            make_subtask(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 10},
            ),
        )
        harness.settle(1.0)
        count = operator.samples_taken
        operator.stop()
        harness.settle(1.0)
        assert operator.samples_taken == count

    def test_missing_device_rejected(self, harness, sensor_module):
        with pytest.raises(Exception):  # DeploymentError via module.sensor
            sensor_module.deploy(
                "a2",
                make_subtask(
                    "s", "sensor", outputs=["raw"], params={"device": "ghost"}
                ),
            )

    def test_bad_params(self, harness, sensor_module):
        with pytest.raises(RecipeError):
            sensor_module.deploy(
                "a3", make_subtask("s", "sensor", outputs=["raw"], params={})
            )
        with pytest.raises(RecipeError):
            sensor_module.deploy(
                "a4",
                make_subtask(
                    "s",
                    "sensor",
                    outputs=["raw"],
                    params={"device": "sample", "rate_hz": 0},
                ),
            )
        with pytest.raises(RecipeError):
            sensor_module.deploy(
                "a5",
                make_subtask(
                    "s",
                    "sensor",
                    inputs=["x"],
                    outputs=["raw"],
                    params={"device": "sample", "rate_hz": 1},
                ),
            )


class TestActuatorClass:
    def deploy_actuator(self, harness):
        module = harness.add_module("pi-a")
        switch = SwitchActuator()
        module.attach_actuator("light", switch)
        operator = harness.deploy(
            module,
            make_subtask(
                "act", "actuator", inputs=["cmd"], params={"device": "light"}
            ),
        )
        return switch, operator

    def test_applies_commands(self, harness):
        switch, operator = self.deploy_actuator(harness)
        harness.inject("cmd", {"v": 1.0}, attributes={"command": {"on": True}})
        harness.settle()
        assert switch.on is True
        assert operator.commands_applied == 1

    def test_ignores_records_without_command(self, harness):
        switch, operator = self.deploy_actuator(harness)
        harness.inject("cmd", {"v": 1.0})
        harness.settle()
        assert switch.on is False
        assert operator.commands_ignored == 1

    def test_latency_traced(self, harness):
        switch, _ = self.deploy_actuator(harness)
        harness.inject("cmd", {"v": 1.0}, attributes={"command": {"on": True}})
        harness.settle()
        records = harness.runtime.tracer.select("actuator.applied")
        assert records and records[0]["latency_s"] >= 0.0

    def test_config_validation(self, harness):
        module = harness.add_module("pi-b")
        module.attach_actuator("light", SwitchActuator())
        with pytest.raises(RecipeError):
            module.deploy(
                "a2", make_subtask("a", "actuator", inputs=["c"], params={})
            )
        with pytest.raises(RecipeError):
            module.deploy(
                "a3",
                make_subtask(
                    "a",
                    "actuator",
                    inputs=["c"],
                    outputs=["bad"],
                    params={"device": "light"},
                ),
            )
        with pytest.raises(RecipeError):
            module.deploy(
                "a4", make_subtask("a", "actuator", params={"device": "light"})
            )
