"""Live load accounting: later deployments avoid already-busy modules."""

from repro.core.recipe import Recipe, TaskSpec
from repro.sensors.devices import FixedPayloadModel


def heavy_recipe(name, pin_sensor_to):
    """A sensor plus two expensive train tasks."""
    return Recipe(
        name,
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 5},
                pin_to=pin_sensor_to,
                capabilities=["sensor:sample"],
            ),
            TaskSpec(
                "t1",
                "train",
                inputs=["raw"],
                params={"model": "classifier", "label_key": "label"},
            ),
            TaskSpec(
                "t2",
                "train",
                inputs=["raw"],
                params={"model": "classifier", "label_key": "label"},
            ),
        ],
    )


def test_module_current_load_tracks_deployments(harness):
    module = harness.add_module("pi-1")
    module.attach_sensor("sample", FixedPayloadModel())
    harness.settle()
    assert module.current_load() == 0.0
    app = harness.cluster.submit(heavy_recipe("app1", "pi-1"))
    harness.settle(2.0)
    total = sum(
        m.current_load() for m in harness.cluster.modules.values()
    )
    assert total > 0.0
    app.stop()
    harness.settle(2.0)
    assert module.current_load() == 0.0


def test_directory_carries_announced_load(harness):
    module = harness.add_module("pi-1")
    module.attach_sensor("sample", FixedPayloadModel())
    harness.settle()
    harness.cluster.submit(heavy_recipe("app1", "pi-1"))
    harness.settle(2.0)
    infos = {
        m.name: m for m in harness.cluster.management.directory.module_infos()
    }
    assert infos["pi-1"].base_load > 0.0


def test_second_application_lands_on_idle_module(harness):
    """With app1 saturating pi-1's announced load, app2's analysis tasks
    must prefer the idle module even though both are otherwise equal."""
    busy = harness.add_module("pi-busy")
    busy.attach_sensor("sample", FixedPayloadModel())
    idle = harness.add_module("pi-idle")
    harness.settle()
    # app1: everything pinned/placed on pi-busy (idle exists but the pin +
    # load-aware placement on an empty cluster may spread; pin trains too).
    app1 = Recipe(
        "app1",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 5},
                pin_to="pi-busy",
                capabilities=["sensor:sample"],
            ),
            TaskSpec(
                "t1",
                "train",
                inputs=["raw"],
                params={"model": "classifier", "label_key": "label"},
                pin_to="pi-busy",
            ),
        ],
    )
    harness.cluster.submit(app1)
    harness.settle(2.0)
    app2 = Recipe(
        "app2",
        [
            TaskSpec(
                "sense2",
                "sensor",
                outputs=["raw2"],
                params={"device": "sample", "rate_hz": 5},
                pin_to="pi-busy",
                capabilities=["sensor:sample"],
            ),
            TaskSpec(
                "judge",
                "predict",
                inputs=["raw2"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "train_on_stream": True,
                },
            ),
        ],
    )
    deployed = harness.cluster.submit(app2)
    assert deployed.assignment.module_for("judge") == "pi-idle"
