from repro.core.recipe import Recipe, TaskSpec
from repro.core.splitter import RecipeSplit, SubTask, shard_of


def test_split_preserves_stage_order():
    recipe = Recipe(
        "r",
        [
            TaskSpec("s1", "sensor", outputs=["a"]),
            TaskSpec("s2", "sensor", outputs=["b"]),
            TaskSpec("join", "merge", inputs=["a", "b"], outputs=["c"]),
            TaskSpec("end", "train", inputs=["c"]),
        ],
    )
    subtasks = RecipeSplit().split(recipe)
    assert [s.subtask_id for s in subtasks] == ["s1", "s2", "join", "end"]
    assert [s.stage_index for s in subtasks] == [0, 0, 1, 2]


def test_split_shards_parallel_tasks():
    recipe = Recipe(
        "r",
        [
            TaskSpec("src", "sensor", outputs=["raw"]),
            TaskSpec("work", "map", inputs=["raw"], outputs=["out"], parallelism=3),
        ],
    )
    subtasks = RecipeSplit().split(recipe)
    shards = [s for s in subtasks if s.task_id == "work"]
    assert [s.subtask_id for s in shards] == ["work#0", "work#1", "work#2"]
    assert [s.shard_index for s in shards] == [0, 1, 2]
    assert all(s.shard_count == 3 for s in shards)
    assert all(s.inputs == ["raw"] for s in shards)


def test_parallel_groups():
    recipe = Recipe(
        "r",
        [
            TaskSpec("src", "sensor", outputs=["raw"]),
            TaskSpec("a", "map", inputs=["raw"], outputs=["x"], parallelism=2),
            TaskSpec("b", "train", inputs=["x"]),
        ],
    )
    split = RecipeSplit()
    groups = split.parallel_groups(split.split(recipe))
    assert [len(g) for g in groups] == [1, 2, 1]
    assert {s.subtask_id for s in groups[1]} == {"a#0", "a#1"}


def test_parallel_groups_empty():
    assert RecipeSplit().parallel_groups([]) == []


def test_shard_of_stable_and_in_range():
    for count in (1, 2, 7):
        for sid in ("a", "b", "sample-123"):
            shard = shard_of(sid, count)
            assert 0 <= shard < count
            assert shard == shard_of(sid, count)  # deterministic
    assert shard_of("anything", 1) == 0


def test_shard_of_distributes():
    counts = [0, 0, 0]
    for i in range(300):
        counts[shard_of(f"sample-{i}", 3)] += 1
    assert all(c > 50 for c in counts)


def test_subtask_dict_round_trip():
    subtask = SubTask(
        subtask_id="t#1",
        task_id="t",
        operator="map",
        inputs=["a"],
        outputs=["b"],
        params={"fn": "identity"},
        capabilities=["x"],
        pin_to="m",
        stage_index=2,
        shard_index=1,
        shard_count=4,
    )
    clone = SubTask.from_dict(subtask.to_dict())
    assert clone == subtask


def test_pin_and_capabilities_propagate():
    recipe = Recipe(
        "r",
        [
            TaskSpec(
                "src",
                "sensor",
                outputs=["raw"],
                capabilities=["sensor:accel"],
                pin_to="pi-1",
            )
        ],
    )
    subtask = RecipeSplit().split(recipe)[0]
    assert subtask.capabilities == ["sensor:accel"]
    assert subtask.pin_to == "pi-1"
