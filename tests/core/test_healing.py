"""FailureDetector, degradation policy and recovery-report tests."""

from __future__ import annotations

import pytest

from repro.core.healing import (
    ALIVE,
    CONFIRMED,
    SUSPECT,
    AppLoad,
    FailureDetector,
    plan_degradation,
    recovery_report,
)
from repro.runtime.sim import SimRuntime
from repro.sim.trace import Tracer

EXPECTED_S = 2.0


class FakeDirectory:
    """Just the watch hooks the detector consumes."""

    def __init__(self) -> None:
        self.heartbeat_watchers = []
        self.member_watchers = []

    def watch_heartbeats(self, callback) -> None:
        self.heartbeat_watchers.append(callback)

    def watch_members(self, callback) -> None:
        self.member_watchers.append(callback)

    def heartbeat(self, name: str, incarnation: int, now: float) -> None:
        for callback in self.heartbeat_watchers:
            callback(name, incarnation, now)

    def leave(self, name: str) -> None:
        for callback in self.member_watchers:
            callback(name, False)


@pytest.fixture
def rig():
    runtime = SimRuntime(seed=11)
    directory = FakeDirectory()
    confirmed: list[str] = []
    suspected: list[str] = []
    detector = FailureDetector(
        runtime.add_node("mgmt"),
        directory,
        expected_interval_s=EXPECTED_S,
        on_suspect=suspected.append,
        on_confirm=confirmed.append,
    )
    return runtime, directory, detector, suspected, confirmed


def beat(runtime, directory, name, incarnation, at):
    runtime.run(until=at)
    directory.heartbeat(name, incarnation, runtime.now)


class TestFailureDetector:
    def test_thresholds_must_be_ordered(self):
        runtime = SimRuntime(seed=1)
        with pytest.raises(ValueError):
            FailureDetector(
                runtime.add_node("n"),
                FakeDirectory(),
                expected_interval_s=2.0,
                suspect_phi=4.0,
                confirm_phi=3.0,
            )

    def test_silence_walks_alive_suspect_confirmed(self, rig):
        runtime, directory, detector, suspected, confirmed = rig
        beat(runtime, directory, "pi-1", 0, 1.0)
        beat(runtime, directory, "pi-1", 0, 3.0)
        runtime.run(until=3.5)
        assert detector.peers["pi-1"].state == ALIVE
        # phi = silence / expected: suspect at 2 intervals of silence...
        runtime.run(until=3.0 + 2.0 * EXPECTED_S + 1.0)
        assert detector.peers["pi-1"].state == SUSPECT
        assert suspected == ["pi-1"] and not confirmed
        # ...confirmed at 3.
        runtime.run(until=3.0 + 3.0 * EXPECTED_S + 1.0)
        assert detector.peers["pi-1"].state == CONFIRMED
        assert confirmed == ["pi-1"]
        assert detector.confirms_raised == 1

    def test_same_incarnation_heartbeat_refutes_suspicion(self, rig):
        runtime, directory, detector, suspected, confirmed = rig
        beat(runtime, directory, "pi-1", 3, 1.0)
        runtime.run(until=1.0 + 2.5 * EXPECTED_S)
        assert detector.peers["pi-1"].state == SUSPECT
        beat(runtime, directory, "pi-1", 3, runtime.now + 0.1)
        assert detector.peers["pi-1"].state == ALIVE
        assert detector.refutes == 1
        assert not confirmed

    def test_stale_incarnation_never_resurrects_confirmed_peer(self, rig):
        runtime, directory, detector, _, confirmed = rig
        beat(runtime, directory, "pi-1", 2, 1.0)
        runtime.run(until=1.0 + 4.0 * EXPECTED_S)
        assert detector.peers["pi-1"].state == CONFIRMED
        # A heartbeat left in flight by the dead boot (incarnation 1 < 2)
        # must not refute the verdict.
        directory.heartbeat("pi-1", 1, runtime.now)
        assert detector.peers["pi-1"].state == CONFIRMED
        assert detector.stale_heartbeats == 1
        assert confirmed == ["pi-1"]

    def test_higher_incarnation_resets_the_record(self, rig):
        runtime, directory, detector, _, confirmed = rig
        beat(runtime, directory, "pi-1", 1, 1.0)
        runtime.run(until=1.0 + 4.0 * EXPECTED_S)
        assert detector.peers["pi-1"].state == CONFIRMED
        beat(runtime, directory, "pi-1", 2, runtime.now + 0.1)
        peer = detector.peers["pi-1"]
        assert peer.state == ALIVE
        assert peer.incarnation == 2
        assert peer.interval_ewma is None  # predecessor history discarded

    def test_phi_basis_clamped_against_bursty_announcements(self, rig):
        runtime, directory, detector, suspected, _ = rig
        # Deploy/capability churn: announcements milliseconds apart drive
        # the EWMA toward zero. One quiet heartbeat period must not read
        # as hundreds of missed intervals.
        beat(runtime, directory, "pi-1", 0, 1.0)
        for i in range(5):
            beat(runtime, directory, "pi-1", 0, 1.001 + i * 0.001)
        peer = detector.peers["pi-1"]
        assert peer.interval_ewma is not None and peer.interval_ewma < 0.01
        assert detector.phi(peer, runtime.now + EXPECTED_S) < 2.0
        runtime.run(until=runtime.now + 1.5 * EXPECTED_S)
        assert peer.state == ALIVE and not suspected

    def test_slower_cadence_raises_the_basis(self, rig):
        runtime, directory, detector, suspected, _ = rig
        # A peer announcing every 8 s (4x slower than expected) earns a
        # proportionally longer grace period.
        beat(runtime, directory, "pi-1", 0, 1.0)
        beat(runtime, directory, "pi-1", 0, 9.0)
        peer = detector.peers["pi-1"]
        assert peer.interval_ewma == pytest.approx(8.0)
        runtime.run(until=9.0 + 2.5 * EXPECTED_S)
        assert peer.state == ALIVE  # 5 s silence, but basis is 8 s
        assert detector.phi(peer, runtime.now) < 1.0

    def test_membership_departure_forgets_the_peer(self, rig):
        runtime, directory, detector, _, confirmed = rig
        beat(runtime, directory, "pi-1", 0, 1.0)
        directory.leave("pi-1")
        assert "pi-1" not in detector.peers
        runtime.run(until=30.0)
        assert not confirmed  # no re-confirm of a known departure

    def test_excluded_peer_is_never_tracked(self, rig):
        runtime, directory, detector, _, _ = rig
        detector.exclude.add("mgmt")
        beat(runtime, directory, "mgmt", 0, 1.0)
        assert "mgmt" not in detector.peers

    def test_disconnected_observer_holds_accrual(self):
        runtime = SimRuntime(seed=11)
        directory = FakeDirectory()
        link = {"up": True}
        confirmed: list[str] = []
        detector = FailureDetector(
            runtime.add_node("mgmt"),
            directory,
            expected_interval_s=EXPECTED_S,
            on_confirm=confirmed.append,
            connected=lambda: link["up"],
        )
        beat(runtime, directory, "pi-1", 0, 1.0)
        # Our own broker session drops: every peer goes silent at once,
        # which is evidence about us, not them.
        link["up"] = False
        runtime.run(until=20.0)
        assert detector.peers["pi-1"].state == ALIVE and not confirmed
        # Accrual restarts from the reconnect instant: no instant verdict,
        # but genuine post-reconnect silence still confirms.
        link["up"] = True
        runtime.run(until=runtime.now + 1.5 * EXPECTED_S)
        assert detector.peers["pi-1"].state == ALIVE
        runtime.run(until=runtime.now + 3.0 * EXPECTED_S)
        assert confirmed == ["pi-1"]

    def test_snapshot_renders_per_peer_state(self, rig):
        runtime, directory, detector, _, _ = rig
        beat(runtime, directory, "pi-1", 4, 1.0)
        snap = detector.snapshot()
        assert snap["pi-1"]["state"] == ALIVE
        assert snap["pi-1"]["incarnation"] == 4
        assert snap["pi-1"]["heartbeats"] == 1


class TestPlanDegradation:
    def loads(self):
        return [
            AppLoad("video", priority=0, utilization=0.5),
            AppLoad("audit", priority=1, utilization=0.3),
            AppLoad("alarm", priority=2, utilization=0.4),
        ]

    def test_everything_fits_nothing_shed(self):
        plan = plan_degradation(self.loads(), capacity=2.0)
        assert plan.shed == () and plan.feasible
        assert plan.residual == pytest.approx(1.2)

    def test_sheds_lowest_priority_first(self):
        plan = plan_degradation(self.loads(), capacity=0.75)
        assert [load.application for load in plan.shed] == ["video"]
        assert plan.feasible and plan.residual == pytest.approx(0.7)

    def test_priority_ties_break_by_name(self):
        loads = [
            AppLoad("bravo", priority=0, utilization=0.4),
            AppLoad("alpha", priority=0, utilization=0.4),
            AppLoad("keep", priority=5, utilization=0.4),
        ]
        plan = plan_degradation(loads, capacity=0.5)
        assert [load.application for load in plan.shed] == ["alpha", "bravo"]

    def test_last_application_is_never_shed(self):
        loads = [AppLoad("only", priority=0, utilization=5.0)]
        plan = plan_degradation(loads, capacity=1.0)
        assert plan.shed == ()
        assert not plan.feasible
        assert plan.residual == pytest.approx(5.0)

    def test_residual_overcommit_reported_when_infeasible(self):
        loads = [
            AppLoad("a", priority=0, utilization=2.0),
            AppLoad("b", priority=1, utilization=2.0),
        ]
        plan = plan_degradation(loads, capacity=1.0)
        assert [load.application for load in plan.shed] == ["a"]
        assert not plan.feasible and plan.residual == pytest.approx(2.0)


class TestRecoveryReport:
    def synthetic_trace(self) -> Tracer:
        tracer = Tracer()
        tracer.emit(10.0, "chaos", "chaos.fault", kind="node_crash", node="m-d")
        tracer.emit(13.9, "detector@mgmt", "detector.confirm", module="m-d")
        tracer.emit(
            14.0,
            "mgmt",
            "mgmt.failover_moved",
            application="app",
            subtask="train",
            from_module="m-d",
            to_module="m-c",
        )
        tracer.emit(
            20.0,
            "mgmt",
            "migrate.start",
            migration="migration-0",
            application="app",
            subtask="train",
            from_module="m-c",
            to_module="m-d",
        )
        tracer.emit(
            20.3, "agent@m-c", "migrate.state_sent", migration="migration-0",
            buffered=2,
        )
        tracer.emit(
            20.4, "agent@m-c", "migrate.released", migration="migration-0",
            tail=3,
        )
        tracer.emit(
            20.5, "agent@m-d", "migrate.done", migration="migration-0",
            replayed=4, skipped=1,
        )
        tracer.emit(
            25.0, "mgmt", "mgmt.load_shed", application="batch", priority=0
        )
        tracer.emit(
            25.0, "mgmt", "mgmt.degraded", residual=0.4, capacity=1.5
        )
        return tracer

    def test_parses_detection_migration_and_shedding(self):
        report = recovery_report(self.synthetic_trace())
        assert [f["kind"] for f in report.faults] == ["node_crash"]
        (detection,) = report.detections
        assert detection["signal"] == "detector.confirm"
        assert detection["latency_s"] == pytest.approx(3.9)
        (migration,) = report.migrations
        assert migration["duration_s"] == pytest.approx(0.5)
        assert migration["snapshot"] == 2
        assert migration["tail"] == 3
        assert migration["skipped"] == 1
        assert [entry["application"] for entry in report.shed] == ["batch"]
        assert report.degraded[0]["residual"] == pytest.approx(0.4)
        rendered = report.render()
        assert "node_crash" in rendered
        assert "migration-0" in rendered
        assert "shed batch" in rendered

    def test_undetected_fault_is_reported_as_such(self):
        tracer = Tracer()
        tracer.emit(5.0, "chaos", "chaos.fault", kind="partition", stations="a|b")
        report = recovery_report(tracer)
        (detection,) = report.detections
        assert detection["latency_s"] is None
        assert "never detected" in report.render()

    def test_restart_noticed_via_failback_migration(self):
        tracer = Tracer()
        tracer.emit(18.0, "chaos", "chaos.fault", kind="node_restart", node="m-d")
        tracer.emit(
            20.1, "mgmt", "migrate.start", migration="migration-0",
            application="app", subtask="train",
            from_module="m-c", to_module="m-d",
        )
        report = recovery_report(tracer)
        (detection,) = report.detections
        assert detection["signal"] == "migrate.start"
        assert detection["latency_s"] == pytest.approx(2.1)
