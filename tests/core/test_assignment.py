import pytest

from repro.core.assignment import (
    Assignment,
    CapabilityAwareStrategy,
    LoadAwareStrategy,
    ModuleInfo,
    RoundRobinStrategy,
    TaskAssignment,
    estimate_cost,
)
from repro.core.splitter import SubTask
from repro.errors import AssignmentError


def subtask(sid, operator="map", capabilities=None, pin_to=None, shard_count=1):
    return SubTask(
        subtask_id=sid,
        task_id=sid.split("#")[0],
        operator=operator,
        inputs=[],
        outputs=[],
        params={},
        capabilities=capabilities or [],
        pin_to=pin_to,
        shard_count=shard_count,
    )


def modules(*names, **kwargs):
    return [ModuleInfo(name=n, **kwargs) for n in names]


class TestDriver:
    def test_no_modules(self):
        with pytest.raises(AssignmentError):
            TaskAssignment().assign([subtask("a")], [])

    def test_duplicate_module_names(self):
        with pytest.raises(AssignmentError):
            TaskAssignment().assign([subtask("a")], modules("m", "m"))

    def test_pinned_placement(self):
        assignment = TaskAssignment().assign(
            [subtask("a", pin_to="m2")], modules("m1", "m2")
        )
        assert assignment.module_for("a") == "m2"

    def test_pin_to_unknown_module(self):
        with pytest.raises(AssignmentError, match="unknown module"):
            TaskAssignment().assign([subtask("a", pin_to="ghost")], modules("m1"))

    def test_pin_to_incapable_module(self):
        with pytest.raises(AssignmentError, match="lacks capabilities"):
            TaskAssignment().assign(
                [subtask("a", capabilities=["gpu"], pin_to="m1")], modules("m1")
            )

    def test_capability_filtering(self):
        mods = [
            ModuleInfo("plain"),
            ModuleInfo("cam", capabilities={"sensor:camera"}),
        ]
        assignment = TaskAssignment().assign(
            [subtask("a", capabilities=["sensor:camera"])], mods
        )
        assert assignment.module_for("a") == "cam"

    def test_no_capable_module(self):
        with pytest.raises(AssignmentError, match="no module provides"):
            TaskAssignment().assign([subtask("a", capabilities=["gpu"])], modules("m"))

    def test_missing_placement_lookup(self):
        with pytest.raises(AssignmentError):
            Assignment().module_for("ghost")

    def test_subtasks_on(self):
        assignment = Assignment(placements={"a": "m1", "b": "m1", "c": "m2"})
        assert assignment.subtasks_on("m1") == ["a", "b"]


class TestStrategies:
    def test_round_robin_cycles(self):
        strategy = RoundRobinStrategy()
        assignment = TaskAssignment(strategy).assign(
            [subtask(f"t{i}") for i in range(4)], modules("m1", "m2")
        )
        placements = [assignment.module_for(f"t{i}") for i in range(4)]
        assert placements == ["m1", "m2", "m1", "m2"]

    def test_load_aware_balances_costs(self):
        # train (8.0) should not land with other heavy ops on one module.
        subtasks = [
            subtask("t1", operator="train"),
            subtask("t2", operator="map"),
            subtask("t3", operator="map"),
        ]
        assignment = TaskAssignment(LoadAwareStrategy()).assign(
            subtasks, modules("m1", "m2")
        )
        assert assignment.module_for("t2") != assignment.module_for("t1")

    def test_load_aware_respects_capacity(self):
        mods = [ModuleInfo("slow", capacity=1.0), ModuleInfo("fast", capacity=10.0)]
        subtasks = [subtask(f"t{i}", operator="train") for i in range(4)]
        assignment = TaskAssignment(LoadAwareStrategy()).assign(subtasks, mods)
        fast_count = len(assignment.subtasks_on("fast"))
        assert fast_count >= 3

    def test_load_aware_accounts_base_load(self):
        mods = [
            ModuleInfo("busy", base_load=100.0),
            ModuleInfo("idle"),
        ]
        assignment = TaskAssignment(LoadAwareStrategy()).assign(
            [subtask("t")], mods
        )
        assert assignment.module_for("t") == "idle"

    def test_capability_aware_prefers_narrow_modules(self):
        mods = [
            ModuleInfo("generalist", capabilities={"sensor:a", "actuator:b"}),
            ModuleInfo("narrow"),
        ]
        assignment = TaskAssignment(CapabilityAwareStrategy()).assign(
            [subtask("plain-task")], mods
        )
        assert assignment.module_for("plain-task") == "narrow"

    def test_shards_spread_over_modules(self):
        shards = [
            subtask(f"w#{i}", operator="train", shard_count=3) for i in range(3)
        ]
        assignment = TaskAssignment(LoadAwareStrategy()).assign(
            shards, modules("m1", "m2", "m3")
        )
        assert len({assignment.module_for(s.subtask_id) for s in shards}) == 3

    def test_projected_load_reported(self):
        assignment = TaskAssignment(LoadAwareStrategy()).assign(
            [subtask("t", operator="train")], modules("m1")
        )
        assert assignment.projected_load["m1"] == pytest.approx(8.0)


def test_estimate_cost_shard_discount():
    full = estimate_cost(subtask("a", operator="train"))
    shard = estimate_cost(subtask("a#0", operator="train", shard_count=4))
    assert shard == pytest.approx(full / 4)


def test_estimate_cost_unknown_operator_default():
    assert estimate_cost(subtask("a", operator="exotic")) == pytest.approx(2.0)
