import pytest

from repro.core.operators import create_operator, registered_operators
from repro.core.splitter import shard_of
from repro.errors import RecipeError

from .conftest import make_subtask


def test_registry_contains_all_operators():
    names = registered_operators()
    for expected in (
        "window",
        "map",
        "filter",
        "merge",
        "stat",
        "command",
        "sensor",
        "actuator",
        "train",
        "predict",
        "mix",
    ):
        assert expected in names


def test_unknown_operator_rejected(harness):
    module = harness.add_module("m")
    with pytest.raises(RecipeError, match="unknown operator"):
        create_operator(module, "app", make_subtask("t", "bogus"))


class TestWindowOperator:
    def test_align_mode_merges_one_per_source(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "win",
                "window",
                inputs=["in"],
                outputs=["out"],
                params={"mode": "align", "sources": ["sa", "sb"]},
            ),
        )
        harness.inject("in", {"x": 1.0}, source="sa")
        harness.inject("in", {"x": 2.0}, source="sa")  # overwrites sa slot
        harness.settle()
        assert out == []
        harness.inject("in", {"y": 3.0}, source="sb")
        harness.settle()
        assert len(out) == 1
        assert out[0].datum.num_values == {"x": 2.0, "y": 3.0}
        assert len(out[0].merged_ids) == 2

    def test_align_arity_mode(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "win",
                "window",
                inputs=["in"],
                outputs=["out"],
                params={"mode": "align", "arity": 2},
            ),
        )
        harness.inject("in", {"x": 1.0}, source="s1")
        harness.inject("in", {"y": 2.0}, source="s2")
        harness.settle()
        assert len(out) == 1

    def test_count_mode(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "win",
                "window",
                inputs=["in"],
                outputs=["out"],
                params={"mode": "count", "count": 3},
            ),
        )
        for i in range(7):
            harness.inject("in", {"v": float(i)})
        harness.settle()
        assert len(out) == 2  # two full windows, one partial pending

    def test_time_mode_flushes_periodically(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "win",
                "window",
                inputs=["in"],
                outputs=["out"],
                params={"mode": "time", "interval_s": 1.0},
            ),
        )
        harness.inject("in", {"v": 1.0})
        harness.inject("in", {"v": 2.0})
        harness.settle(2.0)
        assert len(out) == 1
        assert len(out[0].merged_ids) == 2
        harness.settle(2.0)
        assert len(out) == 1  # empty windows are not flushed

    def test_bad_configs(self, harness):
        module = harness.add_module("m")
        cases = [
            {"mode": "align"},
            {"mode": "count"},
            {"mode": "time"},
            {"mode": "bogus"},
        ]
        for i, params in enumerate(cases):
            with pytest.raises(RecipeError):
                module.deploy(
                    "app2",
                    make_subtask(f"w{i}", "window", inputs=["in"], params=params),
                )


class TestMapOperator:
    def deploy_map(self, harness, params):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask("m1", "map", inputs=["in"], outputs=["out"], params=params),
        )
        return out

    def test_magnitude(self, harness):
        out = self.deploy_map(
            harness, {"fn": "magnitude", "keys": ["x", "y"], "out": "mag"}
        )
        harness.inject("in", {"x": 3.0, "y": 4.0})
        harness.settle()
        assert out[0].datum.num_values["mag"] == pytest.approx(5.0)

    def test_select(self, harness):
        out = self.deploy_map(harness, {"fn": "select", "keys": ["keep"]})
        harness.inject("in", {"keep": 1.0, "drop": 2.0, "label": "x"})
        harness.settle()
        assert out[0].datum.num_values == {"keep": 1.0}
        assert out[0].datum.string_values == {}

    def test_rename(self, harness):
        out = self.deploy_map(harness, {"fn": "rename", "mapping": {"a": "b"}})
        harness.inject("in", {"a": 1.0})
        harness.settle()
        assert out[0].datum.num_values == {"b": 1.0}

    def test_scale(self, harness):
        out = self.deploy_map(harness, {"fn": "scale", "key": "v", "factor": 10.0})
        harness.inject("in", {"v": 1.5})
        harness.settle()
        assert out[0].datum.num_values["v"] == pytest.approx(15.0)

    def test_round(self, harness):
        out = self.deploy_map(harness, {"fn": "round", "digits": 1})
        harness.inject("in", {"v": 1.26})
        harness.settle()
        assert out[0].datum.num_values["v"] == pytest.approx(1.3)

    def test_provenance_appended(self, harness):
        out = self.deploy_map(harness, {"fn": "identity"})
        harness.inject("in", {"v": 1.0})
        harness.settle()
        assert out[0].path[-1] == "m1"

    def test_unknown_fn(self, harness):
        module = harness.add_module("m")
        with pytest.raises(RecipeError, match="unknown map fn"):
            module.deploy(
                "app2", make_subtask("m1", "map", inputs=["in"], params={"fn": "bogus"})
            )

    def test_missing_fn_param(self, harness):
        module = harness.add_module("m")
        with pytest.raises(RecipeError, match="missing param"):
            module.deploy(
                "app2",
                make_subtask("m1", "map", inputs=["in"], params={"fn": "select"}),
            )


class TestFilterOperator:
    def test_numeric_threshold(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        operator = harness.deploy(
            module,
            make_subtask(
                "f",
                "filter",
                inputs=["in"],
                outputs=["out"],
                params={"key": "v", "op": "gt", "value": 5.0},
            ),
        )
        harness.inject("in", {"v": 10.0})
        harness.inject("in", {"v": 1.0})
        harness.settle()
        assert len(out) == 1 and out[0].datum.num_values["v"] == 10.0
        assert operator.records_dropped == 1

    def test_attrs_field(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "f",
                "filter",
                inputs=["in"],
                outputs=["out"],
                params={"key": "anomalous", "op": "eq", "value": True, "field": "attrs"},
            ),
        )
        harness.inject("in", {"v": 1.0}, attributes={"anomalous": True})
        harness.inject("in", {"v": 2.0}, attributes={"anomalous": False})
        harness.settle()
        assert len(out) == 1

    def test_string_equality(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "f",
                "filter",
                inputs=["in"],
                outputs=["out"],
                params={"key": "label", "op": "eq", "value": "alert"},
            ),
        )
        harness.inject("in", {"label": "alert"})
        harness.inject("in", {"label": "ok"})
        harness.settle()
        assert len(out) == 1

    def test_missing_key_drops(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "f",
                "filter",
                inputs=["in"],
                outputs=["out"],
                params={"key": "ghost", "op": "gt", "value": 0},
            ),
        )
        harness.inject("in", {"v": 1.0})
        harness.settle()
        assert out == []

    def test_bad_config(self, harness):
        module = harness.add_module("m")
        for i, params in enumerate(
            [
                {"op": "gt", "value": 1},
                {"key": "v", "op": "contains", "value": 1},
                {"key": "v", "op": "gt", "value": 1, "field": "bogus"},
            ]
        ):
            with pytest.raises(RecipeError):
                module.deploy(
                    "app2", make_subtask(f"f{i}", "filter", inputs=["in"], params=params)
                )


class TestMergeOperator:
    def test_waits_for_all_inputs(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask("j", "merge", inputs=["a", "b"], outputs=["out"]),
        )
        harness.inject("a", {"x": 1.0})
        harness.settle()
        assert out == []
        harness.inject("b", {"y": 2.0})
        harness.settle()
        assert len(out) == 1
        assert out[0].datum.num_values == {"x": 1.0, "y": 2.0}

    def test_emits_on_every_update_after_complete(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask("j", "merge", inputs=["a", "b"], outputs=["out"]),
        )
        harness.inject("a", {"x": 1.0})
        harness.inject("b", {"y": 2.0})
        harness.inject("a", {"x": 10.0})
        harness.settle()
        assert len(out) == 2
        assert out[1].datum.num_values["x"] == 10.0
        assert out[1].datum.num_values["y"] == 2.0

    def test_require_all_false(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "j",
                "merge",
                inputs=["a", "b"],
                outputs=["out"],
                params={"require_all": False},
            ),
        )
        harness.inject("a", {"x": 1.0})
        harness.settle()
        assert len(out) == 1


class TestStatOperator:
    def test_enriches_with_window_stats(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "s",
                "stat",
                inputs=["in"],
                outputs=["out"],
                params={"keys": ["v"], "window": 3, "stats": ["mean", "max"]},
            ),
        )
        for v in (1.0, 2.0, 3.0, 4.0):
            harness.inject("in", {"v": v})
        harness.settle()
        last = out[-1]
        assert last.attributes["v_mean"] == pytest.approx(3.0)  # window (2,3,4)
        assert last.attributes["v_max"] == 4.0

    def test_bad_config(self, harness):
        module = harness.add_module("m")
        with pytest.raises(RecipeError):
            module.deploy("a2", make_subtask("s", "stat", inputs=["in"], params={}))
        with pytest.raises(RecipeError):
            module.deploy(
                "a3",
                make_subtask(
                    "s2",
                    "stat",
                    inputs=["in"],
                    params={"keys": ["v"], "stats": ["median"]},
                ),
            )


class TestCommandOperator:
    def params(self):
        return {
            "rules": [
                {"when": {"key": "label", "eq": "dark"}, "command": {"on": True}},
                {"when": {"key": "lux", "gt": 500}, "command": {"on": False}},
            ],
        }

    def test_first_matching_rule_wins(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "c", "command", inputs=["in"], outputs=["out"], params=self.params()
            ),
        )
        harness.inject("in", {"lux": 600.0}, attributes={"label": "dark"})
        harness.settle()
        assert out[0].attributes["command"] == {"on": True}

    def test_no_match_no_default_silent(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        harness.deploy(
            module,
            make_subtask(
                "c", "command", inputs=["in"], outputs=["out"], params=self.params()
            ),
        )
        harness.inject("in", {"lux": 100.0})
        harness.settle()
        assert out == []

    def test_default_command(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        params = self.params()
        params["default"] = {"on": None}
        harness.deploy(
            module,
            make_subtask(
                "c", "command", inputs=["in"], outputs=["out"], params=params
            ),
        )
        harness.inject("in", {"lux": 100.0})
        harness.settle()
        assert out[0].attributes["command"] == {"on": None}

    def test_bad_rules(self, harness):
        module = harness.add_module("m")
        for i, params in enumerate(
            [
                {},
                {"rules": []},
                {"rules": [{"when": {"key": "x"}, "command": {}}]},  # no comparator
                {"rules": [{"command": {}}]},  # no when
                {"rules": [{"when": {"key": "x", "gt": 1, "lt": 2}, "command": {}}]},
            ]
        ):
            with pytest.raises(RecipeError):
                module.deploy(
                    f"a{i}", make_subtask("c", "command", inputs=["in"], params=params)
                )


class TestSharding:
    def test_shard_filter_partitions_records(self, harness):
        module = harness.add_module("m")
        outs = [harness.collect(f"out{i}") for i in range(2)]
        for i in range(2):
            harness.deploy(
                module,
                make_subtask(
                    f"w#{i}",
                    "map",
                    inputs=["in"],
                    outputs=[f"out{i}"],
                    params={"fn": "identity"},
                    shard_index=i,
                    shard_count=2,
                ),
            )
        ids = [f"sample-{i}" for i in range(20)]
        for sid in ids:
            harness.inject("in", {"v": 1.0}, sample_id=sid)
        harness.settle()
        got0 = {r.sample_id for r in outs[0]}
        got1 = {r.sample_id for r in outs[1]}
        assert got0 | got1 == set(ids)
        assert got0.isdisjoint(got1)
        assert got0 == {sid for sid in ids if shard_of(sid, 2) == 0}


class TestLifecycle:
    def test_stopped_operator_ignores_records(self, harness):
        module = harness.add_module("m")
        out = harness.collect("out")
        operator = harness.deploy(
            module,
            make_subtask(
                "m1", "map", inputs=["in"], outputs=["out"], params={"fn": "identity"}
            ),
        )
        harness.inject("in", {"v": 1.0})
        harness.settle()
        operator.stop()
        harness.inject("in", {"v": 2.0})
        harness.settle()
        assert len(out) == 1

    def test_emit_to_undeclared_stream_rejected(self, harness):
        module = harness.add_module("m")
        operator = harness.deploy(
            module,
            make_subtask(
                "m1", "map", inputs=["in"], outputs=["out"], params={"fn": "identity"}
            ),
        )
        from repro.core.flow import FlowRecord
        from repro.ml.features import Datum

        record = FlowRecord("x", "s", 0.0, Datum())
        with pytest.raises(RecipeError):
            operator.emit(record, stream="ghost")
