"""IFoTCluster / Application facade tests."""

import pytest

from repro.core.middleware import IFoTCluster
from repro.core.recipe import Recipe, TaskSpec
from repro.errors import ConfigurationError, DeploymentError
from repro.runtime.sim import SimRuntime
from repro.sensors.devices import FixedPayloadModel


def sensor_recipe():
    return Recipe(
        "quick",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 5},
                capabilities=["sensor:sample"],
            ),
        ],
    )


def test_duplicate_module_rejected(harness):
    harness.add_module("m")
    with pytest.raises(ConfigurationError):
        harness.add_module("m")


def test_module_lookup(harness):
    module = harness.add_module("m")
    assert harness.cluster.module("m") is module
    with pytest.raises(ConfigurationError):
        harness.cluster.module("ghost")


def test_application_operator_lookup(harness):
    module = harness.add_module("m")
    module.attach_sensor("sample", FixedPayloadModel())
    harness.settle()
    app = harness.cluster.submit(sensor_recipe())
    harness.settle(2.0)
    operator = app.operator("sense")
    assert operator.samples_taken > 0
    with pytest.raises(DeploymentError):
        app.operator("ghost")


def test_application_stop_idempotent(harness):
    module = harness.add_module("m")
    module.attach_sensor("sample", FixedPayloadModel())
    harness.settle()
    app = harness.cluster.submit(sensor_recipe())
    harness.settle(1.0)
    app.stop()
    app.stop()
    assert app.stopped


def test_operator_lookup_without_assignment_raises(harness):
    module = harness.add_module("m")
    module.attach_sensor("sample", FixedPayloadModel())
    harness.settle()
    app = harness.cluster.submit(sensor_recipe(), via_module="m")
    with pytest.raises(DeploymentError):
        app.operator("sense")


def test_cluster_shutdown_stops_everything(harness):
    module = harness.add_module("m")
    module.attach_sensor("sample", FixedPayloadModel())
    harness.settle()
    harness.cluster.submit(sensor_recipe())
    harness.settle(1.0)
    harness.cluster.shutdown()
    count = harness.runtime.tracer.count("sensor.sample")
    harness.settle(2.0)
    assert harness.runtime.tracer.count("sensor.sample") == count


def test_sim_only_node_kwargs_rejected_on_real_runtime():
    from repro.runtime.real import AsyncioRuntime

    with AsyncioRuntime() as runtime:
        cluster = IFoTCluster(runtime)
        with pytest.raises(ConfigurationError):
            cluster.add_module("m", cpu_speed=2.0)
        cluster2 = None  # cluster usable otherwise
        module = cluster.add_module("ok")
        assert module.name == "ok"


def test_two_applications_share_modules(harness):
    module = harness.add_module("m")
    module.attach_sensor("sample", FixedPayloadModel())
    harness.settle()
    app1 = harness.cluster.submit(sensor_recipe())
    recipe2 = Recipe(
        "second",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 5},
                capabilities=["sensor:sample"],
            ),
        ],
    )
    app2 = harness.cluster.submit(recipe2)
    harness.settle(2.0)
    assert "quick/sense" in module.operators
    assert "second/sense" in module.operators
    app1.stop()
    harness.settle(1.0)
    assert "quick/sense" not in module.operators
    assert "second/sense" in module.operators
