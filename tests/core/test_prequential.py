"""LearningClass prequential-accuracy integration."""

from tests.core.conftest import make_subtask


def test_learning_class_tracks_prequential_accuracy(harness):
    module = harness.add_module("m")
    operator = harness.deploy(
        module,
        make_subtask(
            "train",
            "train",
            inputs=["in"],
            params={
                "model": "classifier",
                "label_key": "label",
                "track_accuracy": True,
                "accuracy_window": 50,
            },
        ),
    )
    import random as _random

    rng = _random.Random(6)
    for i in range(120):
        x = rng.gauss(0, 1)
        harness.inject("in", {"x": x, "label": "p" if x > 0 else "n"})
    harness.settle(2.0)
    assert operator.accuracy.total > 100
    assert operator.accuracy.windowed > 0.8
    traced = [
        r for r in harness.runtime.tracer.select("ml.trained") if "win_acc" in r.fields
    ]
    assert traced and 0.0 <= traced[-1]["win_acc"] <= 1.0
