"""CLI coverage: validate / fmt / operators / paper-exp."""

import json

import pytest

from repro.cli import main

DSL = """
recipe cli-app
task sense : sensor
    out raw
    device = thermo
    rate_hz = 5
task judge : predict
    in raw
    model = anomaly
"""


@pytest.fixture
def recipe_file(tmp_path):
    path = tmp_path / "app.recipe"
    path.write_text(DSL)
    return path


def test_validate_ok(recipe_file, capsys):
    assert main(["validate", str(recipe_file)]) == 0
    out = capsys.readouterr().out
    assert "recipe 'cli-app': OK" in out
    assert "stage 0: sense" in out
    assert "stage 1: judge" in out


def test_validate_with_dry_run_assignment(recipe_file, capsys):
    assert main(["validate", str(recipe_file), "--modules", "3"]) == 0
    out = capsys.readouterr().out
    assert "dry-run assignment over 3 modules" in out
    assert "judge -> module-" in out


def test_validate_rejects_bad_recipe(tmp_path, capsys):
    path = tmp_path / "bad.recipe"
    path.write_text("recipe r\ntask t : map\n in ghost\n")
    assert main(["validate", str(path)]) == 1
    assert "no task produces" in capsys.readouterr().err


def test_validate_missing_file(capsys):
    assert main(["validate", "/nonexistent.recipe"]) == 2


def test_validate_json_recipe(tmp_path, capsys):
    from repro.core.dsl import parse_recipe

    recipe = parse_recipe(DSL)
    path = tmp_path / "app.json"
    path.write_text(json.dumps(recipe.to_dict()))
    assert main(["validate", str(path)]) == 0
    assert "OK" in capsys.readouterr().out


def test_fmt_round_trips(recipe_file, capsys, tmp_path):
    assert main(["fmt", str(recipe_file)]) == 0
    formatted = capsys.readouterr().out
    # The formatted output is itself valid DSL for the same graph.
    again = tmp_path / "again.recipe"
    again.write_text(formatted)
    assert main(["validate", str(again)]) == 0


def test_operators_listing(capsys):
    assert main(["operators"]) == 0
    out = capsys.readouterr().out.split()
    for op in ("sensor", "actuator", "train", "predict", "window", "mix"):
        assert op in out


def test_paper_exp_single_rate(capsys):
    assert main(["paper-exp", "--rates", "5", "--duration", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out and "Table III" in out
    assert "58.969" in out  # paper reference column present


def test_paper_exp_csv_json_export(tmp_path, capsys):
    csv_path = tmp_path / "results.csv"
    json_path = tmp_path / "results.json"
    assert (
        main(
            [
                "paper-exp",
                "--rates",
                "5",
                "--duration",
                "0.5",
                "--csv",
                str(csv_path),
                "--json",
                str(json_path),
            ]
        )
        == 0
    )
    assert csv_path.exists() and json_path.exists()
    header = csv_path.read_text().splitlines()[0]
    assert "train_avg_ms" in header
    import json as _json

    data = _json.loads(json_path.read_text())
    assert data[0]["rate_hz"] == 5
