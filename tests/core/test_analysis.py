"""LearningClass / JudgingClass / ManagingClass tests."""

import pytest

from repro.errors import RecipeError

from .conftest import make_subtask


class TestLearningClass:
    def test_trains_on_labeled_records(self, harness):
        module = harness.add_module("m")
        operator = harness.deploy(
            module,
            make_subtask(
                "train",
                "train",
                inputs=["in"],
                params={"model": "classifier", "label_key": "label"},
            ),
        )
        harness.inject("in", {"x": 1.0, "label": "a"})
        harness.inject("in", {"x": -1.0, "label": "b"})
        harness.settle()
        assert operator.records_trained == 2
        assert operator.model.ready

    def test_unlabeled_records_counted_but_not_trained(self, harness):
        module = harness.add_module("m")
        operator = harness.deploy(
            module,
            make_subtask(
                "train",
                "train",
                inputs=["in"],
                params={"model": "classifier", "label_key": "label"},
            ),
        )
        harness.inject("in", {"x": 1.0})
        harness.settle()
        assert operator.records_trained == 1
        assert not operator.model.ready

    def test_trace_carries_latency(self, harness):
        module = harness.add_module("m")
        harness.deploy(
            module,
            make_subtask(
                "train", "train", inputs=["in"], params={"model": "classifier"}
            ),
        )
        harness.inject("in", {"x": 1.0, "label": "a"})
        harness.settle()
        records = harness.runtime.tracer.select("ml.trained")
        assert records and records[0]["latency_s"] > 0.0

    def test_emit_info_forwards_downstream(self, harness):
        module = harness.add_module("m")
        out = harness.collect("trained")
        harness.deploy(
            module,
            make_subtask(
                "train",
                "train",
                inputs=["in"],
                outputs=["trained"],
                params={"model": "classifier", "label_key": "label"},
            ),
        )
        harness.inject("in", {"x": 1.0, "label": "a"})
        harness.settle()
        assert out and out[0].attributes["trained"] is True

    def test_model_snapshot_published(self, harness):
        module = harness.add_module("m")
        harness.deploy(
            module,
            make_subtask(
                "train",
                "train",
                inputs=["in"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "publish_model_every": 2,
                },
            ),
        )
        for i in range(4):
            harness.inject("in", {"x": float(i), "label": "a" if i % 2 else "b"})
        harness.settle()
        assert harness.runtime.tracer.count("ml.model_published") == 2
        # Snapshot is retained on the broker.
        assert any(
            "ifot/model" in t for t in harness.cluster.broker.retained_topics()
        )

    def test_mix_group_requires_mixable_model(self, harness):
        module = harness.add_module("m")
        with pytest.raises(RecipeError):
            module.deploy(
                "a2",
                make_subtask(
                    "t",
                    "train",
                    inputs=["in"],
                    params={"model": "anomaly", "mix_group": "g"},
                ),
            )


class TestJudgingClass:
    def test_unjudged_until_model_ready(self, harness):
        module = harness.add_module("m")
        out = harness.collect("judged")
        operator = harness.deploy(
            module,
            make_subtask(
                "pred",
                "predict",
                inputs=["in"],
                outputs=["judged"],
                params={"model": "classifier", "label_key": "label"},
            ),
        )
        harness.inject("in", {"x": 1.0})
        harness.settle()
        assert out[0].attributes["judged"] is False
        assert operator.records_unjudged == 1

    def test_train_on_stream_bootstraps(self, harness):
        module = harness.add_module("m")
        out = harness.collect("judged")
        harness.deploy(
            module,
            make_subtask(
                "pred",
                "predict",
                inputs=["in"],
                outputs=["judged"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "train_on_stream": True,
                },
            ),
        )
        harness.inject("in", {"x": 1.0, "label": "a"})
        harness.inject("in", {"x": 1.1})
        harness.settle()
        assert out[1].attributes["judged"] is True
        assert out[1].attributes["label"] == "a"

    def test_model_from_snapshot_load(self, harness):
        module_train = harness.add_module("mt")
        module_judge = harness.add_module("mj")
        harness.deploy(
            module_train,
            make_subtask(
                "train",
                "train",
                inputs=["in"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "publish_model_every": 2,
                },
            ),
        )
        judge = harness.deploy(
            module_judge,
            make_subtask(
                "pred",
                "predict",
                inputs=["in"],
                outputs=["judged"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "model_from": "train",
                },
            ),
        )
        out = harness.collect("judged")
        for i in range(6):
            harness.inject(
                "in", {"x": 1.0 if i % 2 else -1.0, "label": "p" if i % 2 else "n"}
            )
        harness.settle(2.0)
        assert judge.model_loads >= 1
        harness.inject("in", {"x": 1.0})
        harness.settle()
        assert out[-1].attributes["judged"] is True
        assert out[-1].attributes["label"] == "p"

    def test_anomaly_judging_pipeline(self, harness):
        module = harness.add_module("m")
        out = harness.collect("scored")
        harness.deploy(
            module,
            make_subtask(
                "anom",
                "predict",
                inputs=["in"],
                outputs=["scored"],
                params={
                    "model": "anomaly",
                    "detector": "zscore",
                    "threshold": 4.0,
                    "min_samples": 5,
                    "train_on_stream": True,
                },
            ),
        )
        import random

        rng = random.Random(0)
        for _ in range(50):
            harness.inject("in", {"v": rng.gauss(0, 1)})
        harness.inject("in", {"v": 100.0})
        harness.settle()
        assert out[-1].attributes["anomalous"] is True
        assert all(r.attributes.get("anomalous") is False for r in out[10:-1])


class TestManagingClassMix:
    def test_mix_round_converges_two_learners(self, harness):
        modules = [harness.add_module(f"m{i}") for i in range(3)]
        learners = []
        for i in range(2):
            learners.append(
                harness.deploy(
                    modules[i],
                    make_subtask(
                        f"train#{i}",
                        "train",
                        inputs=["in"],
                        params={
                            "model": "classifier",
                            "label_key": "label",
                            "mix_group": "g1",
                        },
                        shard_index=i,
                        shard_count=2,
                    ),
                )
            )
        manager = harness.deploy(
            modules[2],
            make_subtask(
                "mgr",
                "mix",
                params={
                    "group": "g1",
                    "participants": ["train#0", "train#1"],
                    "interval_s": 3.0,
                    "timeout_s": 1.5,
                },
            ),
        )
        import random

        rng = random.Random(1)
        for i in range(60):
            x = rng.gauss(0, 1)
            harness.inject(
                "in",
                {"x": x, "label": "p" if x > 0 else "n"},
                sample_id=f"mix-{i}",
            )
        harness.settle(8.0)
        assert manager.rounds_completed >= 1
        w0 = {
            label: v.to_dict()
            for label, v in learners[0].model.mix_model().weights.items()
        }
        w1 = {
            label: v.to_dict()
            for label, v in learners[1].model.mix_model().weights.items()
        }
        assert w0 == w1  # identical after the last applied mix
        assert harness.runtime.tracer.count("ml.mix_applied") >= 2

    def test_mix_round_partial_on_dead_participant(self, harness):
        module = harness.add_module("m0")
        learner_module = harness.add_module("m1")
        harness.deploy(
            learner_module,
            make_subtask(
                "train#0",
                "train",
                inputs=["in"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "mix_group": "g2",
                },
            ),
        )
        manager = harness.deploy(
            module,
            make_subtask(
                "mgr",
                "mix",
                params={
                    "group": "g2",
                    "participants": ["train#0", "ghost"],
                    "interval_s": 2.0,
                    "timeout_s": 1.0,
                },
            ),
        )
        harness.inject("in", {"x": 1.0, "label": "a"})
        harness.settle(6.0)
        # Ghost never answers; rounds complete partially on timeout.
        assert manager.rounds_completed >= 1

    def test_mix_round_aborts_below_quorum(self, harness):
        module = harness.add_module("m0")
        manager = harness.deploy(
            module,
            make_subtask(
                "mgr",
                "mix",
                params={
                    "group": "g3",
                    "participants": ["ghost"],
                    "interval_s": 2.0,
                    "timeout_s": 1.0,
                },
            ),
        )
        harness.settle(6.0)
        assert manager.rounds_aborted >= 1
        assert manager.rounds_completed == 0

    def test_bad_config(self, harness):
        module = harness.add_module("m")
        with pytest.raises(RecipeError):
            module.deploy("a2", make_subtask("m1", "mix", params={}))
