"""ModuleAgent / ManagementNode / StreamDirectory tests."""

import pytest

from repro.core.recipe import Recipe, TaskSpec
from repro.sensors.devices import FixedPayloadModel, SwitchActuator

from .conftest import make_subtask


def simple_recipe(rate_hz=5):
    return Recipe(
        "app",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": rate_hz},
                capabilities=["sensor:sample"],
            ),
            TaskSpec(
                "train",
                "train",
                inputs=["raw"],
                params={"model": "classifier", "label_key": "label"},
            ),
        ],
    )


class TestDirectory:
    def test_modules_announced_with_capabilities(self, harness):
        module = harness.add_module("pi-1")
        module.attach_sensor("sample", FixedPayloadModel())
        harness.settle()
        directory = harness.cluster.management.directory
        records = directory.modules()
        names = [r.name for r in records]
        assert "pi-1" in names and "mgmt" in names
        pi = next(r for r in records if r.name == "pi-1")
        assert "sensor:sample" in pi.capabilities

    def test_capability_change_reannounces_immediately(self, harness):
        module = harness.add_module("pi-1")
        harness.settle(0.5)
        module.attach_actuator("light", SwitchActuator())
        harness.settle(0.5)
        directory = harness.cluster.management.directory
        pi = next(r for r in directory.modules() if r.name == "pi-1")
        assert "actuator:light" in pi.capabilities

    def test_departed_module_expires(self, harness):
        module = harness.add_module("pi-1")
        harness.settle()
        directory = harness.cluster.management.directory
        assert any(r.name == "pi-1" for r in directory.modules())
        module.node.fail()
        harness.settle(40.0)  # past TTL
        assert not any(r.name == "pi-1" for r in directory.modules())

    def test_clean_leave_via_tombstone(self, harness):
        module = harness.add_module("pi-1")
        harness.settle()
        module.agent.stop()
        harness.settle(1.0)
        directory = harness.cluster.management.directory
        assert not any(r.name == "pi-1" for r in directory.modules())

    def test_stream_search(self, harness):
        module = harness.add_module("pi-1")
        module.attach_sensor("sample", FixedPayloadModel())
        harness.settle()
        harness.cluster.submit(simple_recipe())
        harness.settle(2.0)
        directory = harness.cluster.management.directory
        found = directory.find_streams(application="app", pattern="raw*")
        assert len(found) == 1
        assert found[0].stream == "raw"
        assert found[0].producer_module == "pi-1"
        assert found[0].topic == "ifot/flow/app/raw"
        assert directory.find_streams(pattern="nomatch*") == []


class TestDeployment:
    def test_submit_recipe_deploys_operators(self, harness):
        module = harness.add_module("pi-1")
        module.attach_sensor("sample", FixedPayloadModel())
        harness.settle()
        app = harness.cluster.submit(simple_recipe())
        harness.settle(2.0)
        assert app.assignment.module_for("sense") == "pi-1"
        assert "app/sense" in module.operators
        trained_on = app.assignment.module_for("train")
        host = (
            harness.cluster.module(trained_on)
            if trained_on in harness.cluster.modules
            else harness.cluster.management.module
        )
        assert "app/train" in host.operators

    def test_application_runs_end_to_end(self, harness):
        module = harness.add_module("pi-1")
        module.attach_sensor("sample", FixedPayloadModel())
        harness.settle()
        harness.cluster.submit(simple_recipe(rate_hz=10))
        harness.settle(4.0)
        assert harness.runtime.tracer.count("ml.trained") > 10

    def test_stop_application_undeploys_everywhere(self, harness):
        module = harness.add_module("pi-1")
        module.attach_sensor("sample", FixedPayloadModel())
        harness.settle()
        app = harness.cluster.submit(simple_recipe())
        harness.settle(2.0)
        app.stop()
        harness.settle(2.0)
        assert module.operators == {}
        count = harness.runtime.tracer.count("ml.trained")
        harness.settle(2.0)
        assert harness.runtime.tracer.count("ml.trained") == count

    def test_submit_via_remote_module_leader(self, harness):
        """Fig. 6: the recipe is sent to a module, which leads deployment."""
        module = harness.add_module("pi-1")
        module.attach_sensor("sample", FixedPayloadModel())
        harness.settle()
        app = harness.cluster.submit(simple_recipe(), via_module="pi-1")
        assert app.assignment is None  # led remotely
        harness.settle(3.0)
        assert module.agent.recipes_led == 1
        assert any(key.startswith("app/") for key in module.operators)

    def test_deploy_failure_traced_not_fatal(self, harness):
        """A deploy command for a missing device must not crash the agent."""
        module = harness.add_module("pi-1")  # no sensor attached
        harness.settle()
        module.client  # agent listens already
        harness.cluster.management.module.client.publish(
            "ifot/ctl/module/pi-1/deploy",
            {
                "application": "bad",
                "subtask": make_subtask(
                    "s", "sensor", outputs=["raw"], params={"device": "ghost"}
                ).to_dict(),
            },
        )
        harness.settle()
        assert module.operators == {}
        assert harness.runtime.tracer.count("agent.deploy_failed") == 1

    def test_strategy_by_name(self, harness):
        from repro.core.management import strategy_by_name
        from repro.errors import DeploymentError

        assert strategy_by_name("round_robin").name == "round_robin"
        with pytest.raises(DeploymentError):
            strategy_by_name("bogus")


class TestStatusMonitoring:
    def test_status_reports_collected(self, harness):
        module = harness.add_module("pi-1")
        module.attach_sensor("sample", FixedPayloadModel())
        harness.settle()
        management = harness.cluster.management
        management.request_status()
        harness.settle(1.0)
        assert "pi-1" in management.status_reports
        report = management.status_reports["pi-1"]
        assert report["sensors"] == ["sample"]
        assert "capabilities" in report

    def test_status_reflects_deployments(self, harness):
        module = harness.add_module("pi-1")
        module.attach_sensor("sample", FixedPayloadModel())
        harness.settle()
        harness.cluster.submit(simple_recipe())
        harness.settle(2.0)
        management = harness.cluster.management
        management.request_status()
        harness.settle(1.0)
        assert any(
            "app/" in op for op in management.status_reports["pi-1"]["operators"]
        )


class TestDashboard:
    def test_dashboard_renders_cluster_state(self, harness):
        module = harness.add_module("pi-1")
        module.attach_sensor("sample", FixedPayloadModel())
        harness.settle()
        harness.cluster.submit(simple_recipe())
        harness.settle(2.0)
        management = harness.cluster.management
        management.request_status()
        harness.settle(1.0)
        text = management.render_dashboard()
        assert "pi-1" in text
        assert "sensor:sample" in text
        assert "[management]" in text  # mgmt node flagged
        assert "app:raw" in text  # announced stream
        assert "app:" in text and "sense->pi-1" in text  # led application
        assert "app/sense" in text  # operator from the status report

    def test_dashboard_renders_when_empty(self, harness):
        text = harness.cluster.management.render_dashboard()
        assert "IFoT management console" in text
