"""Secondary / tertiary use of curated streams (paper §VI goal (b)).

A second application consumes a first application's *output* stream via
an external reference (``"app1:stream"``) without touching app1's recipe
or redeploying anything.
"""

import pytest

from repro.core.recipe import Recipe, TaskSpec
from repro.errors import RecipeError
from repro.sensors.devices import AlertActuator, FixedPayloadModel

from .conftest import make_subtask


def test_recipe_accepts_external_references():
    recipe = Recipe(
        "consumer",
        [
            TaskSpec(
                "reuse",
                "map",
                inputs=["producer-app:curated"],
                outputs=["local"],
                params={"fn": "identity"},
            )
        ],
    )
    assert recipe.external_inputs() == ["producer-app:curated"]
    # External inputs impose no stage dependency.
    assert recipe.stages() == [["reuse"]]


def test_malformed_external_reference_rejected():
    with pytest.raises(RecipeError, match="malformed external"):
        Recipe(
            "bad",
            [TaskSpec("t", "map", inputs=[":stream"], params={"fn": "identity"})],
        )
    with pytest.raises(RecipeError, match="malformed external"):
        Recipe(
            "bad2",
            [TaskSpec("t", "map", inputs=["app:"], params={"fn": "identity"})],
        )


def test_dsl_supports_external_references():
    from repro.core.dsl import format_recipe, parse_recipe

    text = """
recipe consumer
task reuse : map
    in producer-app:curated
    out local
    fn = identity
"""
    recipe = parse_recipe(text)
    assert recipe.external_inputs() == ["producer-app:curated"]
    clone = parse_recipe(format_recipe(recipe))
    assert clone.external_inputs() == ["producer-app:curated"]


def test_secondary_use_end_to_end(harness):
    """App2 consumes app1's judged stream and raises alerts from it."""
    module = harness.add_module("pi-1")
    module.attach_sensor("sample", FixedPayloadModel())
    pager_module = harness.add_module("pi-2")
    pager = AlertActuator()
    pager_module.attach_actuator("pager", pager)
    harness.settle()

    producer = Recipe(
        "producer-app",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 10},
                capabilities=["sensor:sample"],
            ),
            TaskSpec(
                "judge",
                "predict",
                inputs=["raw"],
                outputs=["curated"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "train_on_stream": True,
                },
            ),
        ],
    )
    consumer = Recipe(
        "consumer-app",
        [
            TaskSpec(
                "alerts",
                "command",
                inputs=["producer-app:curated"],
                outputs=["cmds"],
                params={
                    "rules": [
                        {
                            "when": {"key": "label", "eq": "hi"},
                            "command": {"message": "hi seen"},
                        }
                    ]
                },
            ),
            TaskSpec(
                "pager",
                "actuator",
                inputs=["cmds"],
                params={"device": "pager"},
                capabilities=["actuator:pager"],
            ),
        ],
    )
    app1 = harness.cluster.submit(producer)
    app2 = harness.cluster.submit(consumer)
    harness.settle(5.0)
    assert len(pager.alerts) > 5  # half the samples are labelled "hi"
    # Stopping the consumer must not disturb the producer.
    app2.stop()
    harness.settle(1.0)
    judged_before = harness.runtime.tracer.count("ml.judged")
    harness.settle(2.0)
    assert harness.runtime.tracer.count("ml.judged") > judged_before
    app1.stop()


def test_external_reference_shard_filter_applies(harness):
    """Sharded consumers of an external stream still partition records."""
    module = harness.add_module("pi-1")
    outs = [harness.collect(f"out{i}", application="consumer") for i in range(2)]
    for i in range(2):
        module.deploy(
            "consumer",
            make_subtask(
                f"reuse#{i}",
                "map",
                inputs=["other:feed"],
                outputs=[f"out{i}"],
                params={"fn": "identity"},
                shard_index=i,
                shard_count=2,
            ),
        )
    harness.settle(0.5)
    for i in range(20):
        harness.inject("feed", {"v": 1.0}, sample_id=f"x{i}", application="other")
    harness.settle()
    got0 = {r.sample_id for r in outs[0]}
    got1 = {r.sample_id for r in outs[1]}
    assert got0 | got1 == {f"x{i}" for i in range(20)}
    assert got0.isdisjoint(got1)
