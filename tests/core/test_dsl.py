"""Recipe DSL: parsing, formatting, round-tripping, errors."""

import pytest

from repro.core.dsl import format_recipe, parse_recipe
from repro.core.recipe import Recipe, TaskSpec
from repro.errors import RecipeError

EXAMPLE = """
# Fall detection pipeline
recipe elderly-monitoring

task wearable : sensor
    out accel-raw
    needs sensor:accel
    on pi-wearable
    device = accel
    rate_hz = 20

task magnitude : map
    in accel-raw
    out accel-mag
    fn = magnitude
    keys = [ax, ay, az]

task detector : predict x2    # two shards
    in accel-mag
    out scored
    model = anomaly
    threshold = 6.0
    train_on_stream = true
"""


class TestParsing:
    def test_example_parses(self):
        recipe = parse_recipe(EXAMPLE)
        assert recipe.name == "elderly-monitoring"
        assert set(recipe.tasks) == {"wearable", "magnitude", "detector"}

    def test_task_fields(self):
        recipe = parse_recipe(EXAMPLE)
        wearable = recipe.tasks["wearable"]
        assert wearable.operator == "sensor"
        assert wearable.outputs == ["accel-raw"]
        assert wearable.capabilities == ["sensor:accel"]
        assert wearable.pin_to == "pi-wearable"
        assert wearable.params == {"device": "accel", "rate_hz": 20}

    def test_value_types(self):
        recipe = parse_recipe(EXAMPLE)
        detector = recipe.tasks["detector"]
        assert detector.params["threshold"] == 6.0
        assert detector.params["train_on_stream"] is True
        assert detector.parallelism == 2
        magnitude = recipe.tasks["magnitude"]
        assert magnitude.params["keys"] == ["ax", "ay", "az"]

    def test_json_values_pass_through(self):
        text = """
recipe r
task src : sensor
    out scored
    device = d
task c : command
    in scored
    out cmds
    rules = [{"when": {"key": "anomalous", "eq": true}, "command": {"on": true}}]
"""
        recipe = parse_recipe(text)
        rules = recipe.tasks["c"].params["rules"]
        assert rules[0]["when"]["key"] == "anomalous"
        assert rules[0]["command"] == {"on": True}

    def test_comments_and_blank_lines_ignored(self):
        text = "# hi\nrecipe r\n\n# mid\ntask t : sensor  # trailing\n  out raw\n  device = d\n"
        recipe = parse_recipe(text)
        assert recipe.tasks["t"].outputs == ["raw"]

    def test_hash_inside_quoted_string_kept(self):
        text = 'recipe r\ntask t : sensor\n  out raw\n  label = "a#b"\n'
        assert parse_recipe(text).tasks["t"].params["label"] == "a#b"

    def test_multiple_in_lines_accumulate(self):
        text = "recipe r\ntask s : sensor\n out a\n out b\ntask t : merge\n  in a\n  in b\n"
        # two producers needed: split outputs across two tasks instead
        text = (
            "recipe r\n"
            "task s1 : sensor\n out a\n"
            "task s2 : sensor\n out b\n"
            "task t : merge\n in a\n in b\n out c\n"
        )
        recipe = parse_recipe(text)
        assert recipe.tasks["t"].inputs == ["a", "b"]

    def test_param_prefix_escapes_keywords(self):
        text = "recipe r\ntask t : map\n  in x\n  param out = magnitude\ntask s : sensor\n  out x\n  device = d\n"
        recipe = parse_recipe(text)
        assert recipe.tasks["t"].params["out"] == "magnitude"


class TestErrors:
    def test_missing_recipe_decl(self):
        with pytest.raises(RecipeError, match="missing 'recipe"):
            parse_recipe("task t : sensor\n out raw\n")

    def test_duplicate_recipe_decl(self):
        with pytest.raises(RecipeError, match="duplicate recipe"):
            parse_recipe("recipe a\nrecipe b\ntask t : sensor\n out raw\n")

    def test_clause_outside_task(self):
        with pytest.raises(RecipeError, match="outside of a task"):
            parse_recipe("recipe r\nout raw\n")

    def test_bad_task_line(self):
        with pytest.raises(RecipeError, match="task <id>"):
            parse_recipe("recipe r\ntask missing-colon sensor\n")

    def test_keyword_param_without_prefix(self):
        with pytest.raises(RecipeError, match="collides with a keyword"):
            parse_recipe("recipe r\ntask t : map\n  in = 5\n")

    def test_error_includes_line_number(self):
        with pytest.raises(RecipeError, match="line 3"):
            parse_recipe("recipe r\ntask t : sensor\n ???\n")

    def test_empty_recipe(self):
        with pytest.raises(RecipeError, match="no tasks"):
            parse_recipe("recipe r\n")

    def test_malformed_structured_value(self):
        with pytest.raises(RecipeError, match="malformed structured"):
            parse_recipe('recipe r\ntask t : sensor\n out raw\n cfg = {"broken\n')

    def test_graph_validation_still_applies(self):
        with pytest.raises(RecipeError, match="no task produces"):
            parse_recipe("recipe r\ntask t : map\n in ghost\n")


class TestRoundTrip:
    def test_example_round_trips(self):
        recipe = parse_recipe(EXAMPLE)
        text = format_recipe(recipe)
        clone = parse_recipe(text)
        assert clone.name == recipe.name
        assert set(clone.tasks) == set(recipe.tasks)
        for tid in recipe.tasks:
            a, b = recipe.tasks[tid], clone.tasks[tid]
            assert a.operator == b.operator
            assert a.inputs == b.inputs
            assert a.outputs == b.outputs
            assert a.params == b.params
            assert a.capabilities == b.capabilities
            assert a.parallelism == b.parallelism
            assert a.pin_to == b.pin_to

    def test_tricky_values_round_trip(self):
        recipe = Recipe(
            "tricky",
            [
                TaskSpec(
                    "t",
                    "sensor",
                    outputs=["raw"],
                    params={
                        "device": "a b",  # needs quoting (contains nothing odd? keep)
                        "numeric_string": "42",
                        "with_comma": "a,b",
                        "with_hash": "x#y",
                        "nested": {"k": [1, 2, {"deep": True}]},
                        "out": "keyword-name",
                    },
                )
            ],
        )
        clone = parse_recipe(format_recipe(recipe))
        assert clone.tasks["t"].params == recipe.tasks["t"].params

    def test_paper_testbed_recipe_round_trips(self):
        from repro.bench.scenarios import build_paper_recipe

        recipe = build_paper_recipe(20)
        clone = parse_recipe(format_recipe(recipe))
        assert clone.stages() == recipe.stages()
        assert clone.tasks["train"].params == recipe.tasks["train"].params


def test_dsl_recipe_actually_deploys(harness):
    from repro.sensors.devices import FixedPayloadModel

    module = harness.add_module("pi-1")
    module.attach_sensor("sample", FixedPayloadModel())
    harness.settle()
    text = """
recipe dsl-app
task sense : sensor
    out raw
    needs sensor:sample
    device = sample
    rate_hz = 10
task judge : predict
    in raw
    model = classifier
    label_key = label
    train_on_stream = true
"""
    app = harness.cluster.submit(parse_recipe(text))
    harness.settle(3.0)
    assert harness.runtime.tracer.count("ml.judged") > 10
    app.stop()


class TestDeadlines:
    DEADLINED = """
recipe timed

task sense : sensor
    out raw
    device = accel
    rate_hz = 10

task act : actuator
    in raw
    deadline_ms = 750.5
    device = pager
"""

    def test_deadline_parses_as_task_field_not_param(self):
        recipe = parse_recipe(self.DEADLINED)
        act = recipe.tasks["act"]
        assert act.deadline_ms == 750.5
        assert "deadline_ms" not in act.params

    def test_param_prefix_keeps_it_an_operator_param(self):
        text = self.DEADLINED.replace(
            "    deadline_ms = 750.5", "    param deadline_ms = 750.5"
        )
        act = parse_recipe(text).tasks["act"]
        assert act.deadline_ms is None
        assert act.params["deadline_ms"] == 750.5

    def test_non_numeric_deadline_rejected(self):
        text = self.DEADLINED.replace(
            "    deadline_ms = 750.5", "    deadline_ms = soon"
        )
        with pytest.raises(RecipeError, match="deadline_ms must be a number"):
            parse_recipe(text)

    def test_deadline_round_trips(self):
        recipe = parse_recipe(self.DEADLINED)
        again = parse_recipe(format_recipe(recipe))
        assert again.tasks["act"].deadline_ms == 750.5
        assert recipe.to_dict() == again.to_dict()

    def test_deadline_survives_json_dsl(self):
        recipe = parse_recipe(self.DEADLINED)
        assert Recipe.from_json(recipe.to_json()).tasks["act"].deadline_ms == 750.5

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(RecipeError, match="deadline_ms must be positive"):
            TaskSpec("t", "map", inputs=[], outputs=[], deadline_ms=0)
