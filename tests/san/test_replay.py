"""Schedule-stable digests: invariant within an instant, sensitive to all else."""

from repro.san.replay import schedule_stable_digest
from repro.sim.trace import Tracer


def _tracer(records) -> Tracer:
    tracer = Tracer()
    for time, source, event, fields in records:
        tracer.emit(time, source, event, **fields)
    return tracer


def test_within_instant_order_does_not_matter():
    a = _tracer(
        [
            (1.0, "s1", "tick", {"n": 1}),
            (1.0, "s2", "tick", {"n": 2}),
            (2.0, "s1", "tick", {"n": 3}),
        ]
    )
    b = _tracer(
        [
            (1.0, "s2", "tick", {"n": 2}),
            (1.0, "s1", "tick", {"n": 1}),
            (2.0, "s1", "tick", {"n": 3}),
        ]
    )
    assert schedule_stable_digest(a) == schedule_stable_digest(b)


def test_field_key_order_does_not_matter():
    a = _tracer([(1.0, "s", "e", {"x": 1, "y": 2})])
    b = Tracer()
    b.emit(1.0, "s", "e", y=2, x=1)
    assert schedule_stable_digest(a) == schedule_stable_digest(b)


def test_content_change_changes_digest():
    a = _tracer([(1.0, "s", "tick", {"n": 1})])
    b = _tracer([(1.0, "s", "tick", {"n": 2})])
    assert schedule_stable_digest(a) != schedule_stable_digest(b)


def test_record_moving_across_instants_changes_digest():
    a = _tracer([(1.0, "s", "tick", {}), (2.0, "s", "tock", {})])
    b = _tracer([(1.0, "s", "tick", {}), (1.0, "s", "tock", {})])
    assert schedule_stable_digest(a) != schedule_stable_digest(b)


def test_record_count_changes_digest():
    a = _tracer([(1.0, "s", "tick", {})])
    b = _tracer([(1.0, "s", "tick", {}), (1.0, "s", "tick", {})])
    assert schedule_stable_digest(a) != schedule_stable_digest(b)


def test_empty_trace_digest_is_stable():
    assert schedule_stable_digest(Tracer()) == schedule_stable_digest(Tracer())
