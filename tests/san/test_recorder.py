"""SimSan happens-before analysis: which same-instant pairs race."""

from repro.runtime.state import tracked_state
from repro.san.recorder import SimSan
from repro.sim.kernel import SimKernel
from repro.util.validate import Severity


class _ToyRuntime:
    """Just enough runtime for SimSan.install and tracked_state."""

    def __init__(self) -> None:
        self.kernel = SimKernel()
        self.san = None


def _install() -> tuple[_ToyRuntime, SimSan]:
    runtime = _ToyRuntime()
    san = SimSan()
    san.install(runtime)
    return runtime, san


def _write(cell):
    cell.value = (cell.value or 0) + 1


def _read(cell):
    _ = cell.value


def test_unordered_same_instant_writes_are_san001():
    runtime, san = _install()
    cell = tracked_state(runtime, "toy", "counter", 0)
    runtime.kernel.schedule(1.0, _write, cell)
    runtime.kernel.schedule(1.0, _write, cell)
    runtime.kernel.run()
    (finding,) = san.analyze()
    assert finding.rule == "SAN001"
    assert finding.cell == "toy:counter"
    assert finding.time == 1.0
    assert not finding.suppressed


def test_unordered_read_vs_write_is_san002():
    runtime, san = _install()
    cell = tracked_state(runtime, "toy", "flag", False)
    runtime.kernel.schedule(1.0, _read, cell)
    runtime.kernel.schedule(1.0, _write, cell)
    runtime.kernel.run()
    (finding,) = san.analyze()
    assert finding.rule == "SAN002"
    kinds = {finding.access_a[1], finding.access_b[1]}
    assert kinds == {"read", "write"}


def test_read_read_never_conflicts():
    runtime, san = _install()
    cell = tracked_state(runtime, "toy", "config", 7)
    runtime.kernel.schedule(1.0, _read, cell)
    runtime.kernel.schedule(1.0, _read, cell)
    runtime.kernel.run()
    assert san.analyze() == []


def test_different_instants_never_conflict():
    runtime, san = _install()
    cell = tracked_state(runtime, "toy", "counter", 0)
    runtime.kernel.schedule(1.0, _write, cell)
    runtime.kernel.schedule(2.0, _write, cell)
    runtime.kernel.run()
    assert san.analyze() == []


def test_schedule_parentage_orders_the_pair():
    runtime, san = _install()
    cell = tracked_state(runtime, "toy", "counter", 0)

    def parent():
        _write(cell)
        runtime.kernel.call_soon(_write, cell)  # same instant, but caused

    runtime.kernel.schedule(1.0, parent)
    runtime.kernel.run()
    assert san.analyze() == []


def test_transitive_parentage_orders_the_pair():
    runtime, san = _install()
    cell = tracked_state(runtime, "toy", "counter", 0)

    def grandparent():
        _write(cell)
        runtime.kernel.call_soon(middle)

    def middle():
        runtime.kernel.call_soon(_write, cell)

    runtime.kernel.schedule(1.0, grandparent)
    runtime.kernel.run()
    assert san.analyze() == []


def test_epilogue_contract_orders_normal_before_epilogue():
    runtime, san = _install()
    cell = tracked_state(runtime, "toy", "buffer", 0)
    runtime.kernel.schedule(1.0, _write, cell)
    runtime.kernel.schedule_epilogue(_write, cell, delay=1.0)
    runtime.kernel.run()
    assert san.analyze() == []


def test_epilogue_descendant_is_ordered_after_normal_wave():
    # A normal event spawned *by* an epilogue at the same instant still
    # runs after every plain normal event: its epilogue-ancestor chain is
    # deeper, so the pair is HB-ordered.
    runtime, san = _install()
    cell = tracked_state(runtime, "toy", "buffer", 0)

    def epilogue():
        runtime.kernel.call_soon(_write, cell)

    runtime.kernel.schedule(1.0, _write, cell)
    runtime.kernel.schedule_epilogue(epilogue, delay=1.0)
    runtime.kernel.run()
    assert san.analyze() == []


def test_sibling_epilogues_with_distinct_priorities_are_ordered():
    runtime, san = _install()
    cell = tracked_state(runtime, "toy", "buffer", 0)
    runtime.kernel.schedule_epilogue(_write, cell, delay=1.0, priority=0)
    runtime.kernel.schedule_epilogue(_write, cell, delay=1.0, priority=1)
    runtime.kernel.run()
    assert san.analyze() == []


def test_sibling_epilogues_with_equal_priority_race():
    # Equal-priority epilogues pop in seq order — a schedule accident.
    runtime, san = _install()
    cell = tracked_state(runtime, "toy", "buffer", 0)
    runtime.kernel.schedule_epilogue(_write, cell, delay=1.0, priority=0)
    runtime.kernel.schedule_epilogue(_write, cell, delay=1.0, priority=0)
    runtime.kernel.run()
    (finding,) = san.analyze()
    assert finding.rule == "SAN001"


def test_setup_accesses_outside_events_are_ignored():
    runtime, san = _install()
    cell = tracked_state(runtime, "toy", "counter", 0)
    _write(cell)  # setup code, before the schedule runs
    runtime.kernel.schedule(1.0, _write, cell)
    runtime.kernel.run()
    _read(cell)  # teardown code, after the schedule drained
    assert san.analyze() == []
    assert san.accesses_recorded == 2  # the in-event read + write only


def test_san_ok_annotation_on_declaration_suppresses():
    runtime, san = _install()
    cell = tracked_state(runtime, "toy", "commutative", 0)  # repro: san-ok[SAN001]
    runtime.kernel.schedule(1.0, _write, cell)
    runtime.kernel.schedule(1.0, _write, cell)
    runtime.kernel.run()
    (finding,) = san.analyze()
    assert finding.suppressed
    diagnostics, suppressed = san.diagnostics()
    assert diagnostics == []
    assert suppressed == 1


def test_diagnostics_aggregate_per_cell_and_rule():
    runtime, san = _install()
    cell = tracked_state(runtime, "toy", "hot", 0)
    for _ in range(3):  # 3 unordered writers → 3 pairwise findings
        runtime.kernel.schedule(1.0, _write, cell)
    runtime.kernel.run()
    findings = san.analyze()
    assert len(findings) == 3
    diagnostics, suppressed = san.diagnostics(findings)
    assert suppressed == 0
    (diag,) = diagnostics  # one diagnostic per (cell, rule), not per pair
    assert diag.rule == "SAN001"
    assert diag.severity is Severity.ERROR
    assert "3 unordered pairs" in diag.message
    assert diag.where == "toy:hot"
    assert diag.file == __file__


def test_counters_reflect_observed_events_and_cells():
    runtime, san = _install()
    a = tracked_state(runtime, "toy", "a", 0)
    b = tracked_state(runtime, "toy", "b", 0)
    runtime.kernel.schedule(1.0, _write, a)
    runtime.kernel.schedule(2.0, _write, b)
    runtime.kernel.run()
    assert san.events_observed == 2
    assert san.cells_touched == 2
