"""End-to-end sanitizer runs over toy scenarios.

The acceptance pair: a deliberately racy scenario must be caught *twice*
— statically by the happens-before pass (SAN001) and dynamically by
perturbation replay as digest divergence (SAN010) — while a commutative
scenario sails through both.
"""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.state import tracked_state
from repro.san.runner import (
    SAN_SCENARIOS,
    SanScenario,
    get_san_scenario,
    run_sanitizer,
    sanitize_scenario,
)
from repro.sim.kernel import SimKernel
from repro.sim.trace import Tracer


class _ToyRuntime:
    def __init__(self) -> None:
        self.kernel = SimKernel()
        self.san = None


def _racy_run(prepare):
    """Two same-instant writers whose order changes the observable trace."""
    runtime = _ToyRuntime()
    prepare(runtime)
    kernel = runtime.kernel
    tracer = Tracer()
    cell = tracked_state(runtime, "toy", "accumulator", 1.0)

    def double():
        cell.value = cell.value * 2.0
        tracer.emit(kernel.now, "toy", "step", op="double", value=cell.peek())

    def add_three():
        cell.value = cell.value + 3.0
        tracer.emit(kernel.now, "toy", "step", op="add", value=cell.peek())

    kernel.schedule(1.0, double)
    kernel.schedule(1.0, add_three)
    kernel.run()
    return tracer


RACY = SanScenario(
    name="toy-racy",
    description="deliberate same-instant write-write race",
    run=_racy_run,
)


def _clean_run(prepare):
    """Same-instant writers on independent cells: commutative by design."""
    runtime = _ToyRuntime()
    prepare(runtime)
    kernel = runtime.kernel
    tracer = Tracer()
    cells = [tracked_state(runtime, "toy", f"slot{i}", 0.0) for i in range(4)]

    def bump(i):
        cells[i].value = cells[i].value + 1.0
        tracer.emit(kernel.now, f"toy{i}", "step", value=cells[i].peek())

    for i in range(4):
        kernel.schedule(1.0, bump, i)
    kernel.run()
    return tracer


CLEAN = SanScenario(
    name="toy-clean",
    description="independent same-instant writers",
    run=_clean_run,
)


def test_racy_scenario_is_caught_by_both_passes():
    # Enough replay seeds that (deterministically, seeds 1..6) at least
    # one permutes the two writers; all inputs are fixed, so this test
    # cannot flake.
    result = sanitize_scenario(RACY, perturb=6)
    assert any(f.rule == "SAN001" and not f.suppressed for f in result.findings)
    assert result.diverged_seeds  # observable divergence under replay
    rules = {d.rule for d in result.diagnostics}
    assert "SAN001" in rules and "SAN010" in rules
    for diag in result.diagnostics:
        if diag.rule == "SAN010":
            assert "seed" in diag.message


def test_clean_scenario_passes_both_passes():
    result = sanitize_scenario(CLEAN, perturb=6)
    assert [f for f in result.findings if not f.suppressed] == []
    assert result.diverged_seeds == []
    assert result.diagnostics == []
    assert result.cells == 4
    assert result.events == 4


def test_perturbed_digests_are_recorded_per_seed():
    result = sanitize_scenario(CLEAN, perturb=3)
    assert [seed for seed, _digest in result.perturbed] == [1, 2, 3]
    assert all(digest == result.base_digest for _seed, digest in result.perturbed)


@pytest.mark.slow
def test_profiled_fig5_is_schedule_stable():
    """Satellite: the profiler's ``prof.sample`` records enter the trace,
    so running it under the sanitizer folds profile determinism into the
    schedule-stable digest — a tie-break-dependent profile would be
    SAN010 divergence."""
    plain = sanitize_scenario("fig5", perturb=1)
    profiled = sanitize_scenario("fig5", perturb=1, profile=True)
    assert profiled.diverged_seeds == []
    assert not [d for d in profiled.diagnostics if d.rule == "SAN010"]
    # The profiled digest covers strictly more records (the samples), so
    # it must differ from the unprofiled one — proof the samples are in.
    assert profiled.base_digest != plain.base_digest


def test_registry_contains_fig5_and_every_chaos_scenario():
    from repro.chaos.scenarios import SCENARIOS as CHAOS_SCENARIOS

    assert "fig5" in SAN_SCENARIOS
    for name in CHAOS_SCENARIOS:
        assert name in SAN_SCENARIOS
    assert get_san_scenario("fig5").name == "fig5"


def test_unknown_scenario_raises_configuration_error():
    with pytest.raises(ConfigurationError, match="unknown sanitizer scenario"):
        get_san_scenario("no-such-scenario")


@pytest.mark.slow
def test_run_sanitizer_over_fig5_is_clean():
    report = run_sanitizer(scenarios=["fig5"], perturb=1)
    (result,) = report.results
    assert result.scenario == "fig5"
    assert report.diagnostics == []
    assert report.suppressed > 0  # annotated-commutative cells are counted
    payload = report.to_dict()
    assert payload["scenarios"][0]["race_pairs"] == 0
    assert payload["scenarios"][0]["perturbed"][0]["diverged"] is False
