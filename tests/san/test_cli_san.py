"""``repro san`` CLI: listing, exit codes, JSON output."""

import json

import pytest

from repro.cli import main


def test_list_prints_every_scenario(capsys):
    from repro.san import SAN_SCENARIOS

    assert main(["san", "--list"]) == 0
    out = capsys.readouterr().out
    for name in SAN_SCENARIOS:
        assert name in out


def test_unknown_scenario_exits_one(capsys):
    assert main(["san", "no-such-scenario"]) == 1
    assert "unknown sanitizer scenario" in capsys.readouterr().err


@pytest.mark.slow
def test_fig5_strict_exits_zero(capsys):
    assert main(["san", "fig5", "--perturb", "1", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "fig5:" in out
    assert "1 perturbed replays (stable)" in out
    assert "san OK" in out


@pytest.mark.slow
def test_json_format_is_machine_readable(capsys):
    assert main(["san", "fig5", "--perturb", "1", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["perturb"] == 1
    (scenario,) = payload["scenarios"]
    assert scenario["name"] == "fig5"
    assert scenario["race_pairs"] == 0
    assert scenario["diagnostics"] == []
