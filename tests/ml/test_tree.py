import random

import pytest

from repro.errors import ModelError
from repro.ml.tree import HoeffdingTreeClassifier


def xor_draw(rng):
    x, y = rng.uniform(-1, 1), rng.uniform(-1, 1)
    return {"x": x, "y": y}, ("a" if (x > 0) ^ (y > 0) else "b")


def band_draw(rng):
    x = rng.uniform(0, 10)
    return {"x": x}, ("in" if 3 < x < 7 else "out")


class TestHoeffdingTree:
    def test_learns_threshold_concept(self):
        rng = random.Random(1)
        tree = HoeffdingTreeClassifier(grace_period=40)
        for _ in range(800):
            features, label = band_draw(rng)
            tree.train(features, label)
        correct = sum(
            1
            for _ in range(300)
            for features, label in [band_draw(rng)]
            if tree.classify(features)[0] == label
        )
        assert correct / 300 > 0.95
        assert tree.depth >= 2  # a band needs two cuts

    def test_learns_xor_where_linear_fails(self):
        rng = random.Random(0)
        tree = HoeffdingTreeClassifier(
            grace_period=30, tie_threshold=0.15, max_depth=6
        )
        from repro.ml.linear import make_learner

        linear = make_learner("pa1")
        for _ in range(4000):
            features, label = xor_draw(rng)
            tree.train(features, label)
            linear.train({**features, "bias": 1.0}, label)

        def accuracy(predict):
            correct = 0
            for _ in range(400):
                features, label = xor_draw(rng)
                correct += predict(features) == label
            return correct / 400

        tree_acc = accuracy(lambda f: tree.classify(f)[0])
        linear_acc = accuracy(lambda f: linear.classify({**f, "bias": 1.0})[0])
        assert tree_acc > 0.95
        assert linear_acc < 0.65  # XOR is not linearly separable

    def test_untrained_classify_raises(self):
        with pytest.raises(ModelError):
            HoeffdingTreeClassifier().classify({"x": 1.0})

    def test_empty_label_rejected(self):
        with pytest.raises(ModelError):
            HoeffdingTreeClassifier().train({"x": 1.0}, "")

    def test_pure_stream_never_splits(self):
        tree = HoeffdingTreeClassifier(grace_period=10)
        rng = random.Random(2)
        for _ in range(500):
            tree.train({"x": rng.random()}, "only")
        assert tree.splits_installed == 0
        assert tree.classify({"x": 0.5})[0] == "only"

    def test_max_depth_respected(self):
        rng = random.Random(3)
        tree = HoeffdingTreeClassifier(
            grace_period=20, tie_threshold=0.3, max_depth=2
        )
        for _ in range(3000):
            features, label = xor_draw(rng)
            tree.train(features, label)
        assert tree.depth <= 2

    def test_missing_feature_routes_to_majority(self):
        rng = random.Random(4)
        tree = HoeffdingTreeClassifier(grace_period=40)
        for _ in range(600):
            features, label = band_draw(rng)
            tree.train(features, label)
        # Prediction with the split feature absent still yields a label.
        label, probabilities = tree.classify({})
        assert label in ("in", "out")
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_class_probabilities_sum_to_one(self):
        rng = random.Random(5)
        tree = HoeffdingTreeClassifier(grace_period=40)
        for _ in range(500):
            features, label = band_draw(rng)
            tree.train(features, label)
        probabilities = tree.class_probabilities({"x": 5.0})
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_state_round_trip(self):
        rng = random.Random(6)
        tree = HoeffdingTreeClassifier(grace_period=40)
        for _ in range(800):
            features, label = band_draw(rng)
            tree.train(features, label)
        clone = HoeffdingTreeClassifier()
        clone.load_state(tree.to_state())
        for _ in range(50):
            features, _ = band_draw(rng)
            assert clone.classify(features)[0] == tree.classify(features)[0]

    def test_param_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            HoeffdingTreeClassifier(grace_period=0)
        with pytest.raises(ConfigurationError):
            HoeffdingTreeClassifier(delta=0.9)
        with pytest.raises(ConfigurationError):
            HoeffdingTreeClassifier(max_depth=0)

    def test_datum_api(self):
        from repro.ml.features import Datum

        tree = HoeffdingTreeClassifier(grace_period=10)
        tree.train_datum(Datum.from_mapping({"x": 1.0}), "a")
        assert tree.classify_datum(Datum.from_mapping({"x": 1.0}))[0] == "a"


class TestTreeFlowModel:
    def test_learns_conjunction_through_middleware_model(self):
        """'alert iff hot AND dark' — a conjunction linear models miss."""
        from repro.core.flow import FlowRecord
        from repro.core.models import build_flow_model
        from repro.ml.features import Datum

        # temp and lux carry near-equal gain for the conjunction, so growth
        # goes through the Hoeffding tie-break — loosen it for fast learning.
        model = build_flow_model(
            {"model": "tree", "grace_period": 30, "tie_threshold": 0.15}
        )
        rng = random.Random(7)
        for i in range(2000):
            temp = rng.uniform(0, 40)
            lux = rng.uniform(0, 800)
            label = "alert" if (temp > 30 and lux < 150) else "ok"
            record = FlowRecord(
                sample_id=f"s{i}",
                source="t",
                sensed_at=0.0,
                datum=Datum.from_mapping(
                    {"temp": temp, "lux": lux, "label": label}
                ),
            )
            model.train(record)
        assert model.ready

        def judge(temp, lux):
            record = FlowRecord(
                sample_id="probe", source="t", sensed_at=0.0,
                datum=Datum.from_mapping({"temp": temp, "lux": lux}),
            )
            return model.judge(record)["label"]

        assert judge(35.0, 50.0) == "alert"
        assert judge(35.0, 700.0) == "ok"
        assert judge(10.0, 50.0) == "ok"

    def test_snapshot_round_trip(self):
        from repro.core.flow import FlowRecord
        from repro.core.models import build_flow_model
        from repro.ml.features import Datum

        model = build_flow_model({"model": "tree"})
        record = FlowRecord(
            sample_id="s", source="t", sensed_at=0.0,
            datum=Datum.from_mapping({"x": 1.0, "label": "a"}),
        )
        model.train(record)
        clone = build_flow_model({"model": "tree"})
        clone.import_state(model.export_state())
        assert clone.ready
