import pytest

from repro.errors import FeatureError
from repro.ml.features import Datum, FeatureExtractor


class TestDatum:
    def test_from_mapping_sorts_types(self):
        d = Datum.from_mapping({"room": "kitchen", "temp": 21, "on": True})
        assert d.string_values == {"room": "kitchen", "on": "true"}
        assert d.num_values == {"temp": 21.0}

    def test_bool_false_is_categorical(self):
        d = Datum.from_mapping({"on": False})
        assert d.string_values["on"] == "false"
        assert "on" not in d.num_values

    def test_unsupported_type_rejected(self):
        with pytest.raises(FeatureError):
            Datum.from_mapping({"x": [1, 2]})

    def test_payload_round_trip(self):
        d = Datum.from_mapping({"a": 1.5, "s": "x"})
        assert Datum.from_payload(d.to_payload()) == d

    def test_from_payload_rejects_garbage(self):
        with pytest.raises(FeatureError):
            Datum.from_payload({"nope": 1})
        with pytest.raises(FeatureError):
            Datum.from_payload("not a dict")

    def test_merged_with_other_wins(self):
        a = Datum.from_mapping({"x": 1.0, "k": "a"})
        b = Datum.from_mapping({"x": 2.0})
        merged = a.merged_with(b)
        assert merged.num_values["x"] == 2.0
        assert merged.string_values["k"] == "a"
        # originals untouched
        assert a.num_values["x"] == 1.0


class TestFeatureExtractor:
    def test_numeric_and_string_features(self):
        fx = FeatureExtractor()
        features = fx.extract(Datum.from_mapping({"t": 2.0, "room": "den"}))
        assert features["num$t"] == 2.0
        assert features["str$room$den"] == 1.0
        assert features["bias"] == 1.0

    def test_no_bias_option(self):
        fx = FeatureExtractor(with_bias=False)
        features = fx.extract(Datum.from_mapping({"t": 1.0}))
        assert "bias" not in features

    def test_standardization_converges(self):
        fx = FeatureExtractor(standardize=True)
        import random

        rng = random.Random(0)
        for _ in range(500):
            fx.extract(Datum.from_mapping({"t": rng.gauss(100.0, 5.0)}))
        features = fx.extract(Datum.from_mapping({"t": 105.0}), update=False)
        assert features["num$t"] == pytest.approx(1.0, abs=0.2)

    def test_predict_path_does_not_drift_scaler(self):
        fx = FeatureExtractor(standardize=True)
        for v in (0.0, 1.0, 2.0):
            fx.extract(Datum.from_mapping({"t": v}))
        before = fx.extract(Datum.from_mapping({"t": 1.0}), update=False)
        for _ in range(100):
            fx.extract(Datum.from_mapping({"t": 50.0}), update=False)
        after = fx.extract(Datum.from_mapping({"t": 1.0}), update=False)
        assert before == after

    def test_reset(self):
        fx = FeatureExtractor(standardize=True)
        fx.extract(Datum.from_mapping({"t": 5.0}))
        fx.reset()
        features = fx.extract(Datum.from_mapping({"t": 5.0}))
        assert features["num$t"] == 5.0  # raw again (stats restarted)
