import math
import random

import pytest

from repro.errors import ModelError
from repro.ml.anomaly import LofLite, RobustZScore
from repro.ml.clustering import OnlineKMeans
from repro.ml.features import Datum
from repro.ml.stat import WindowStat


def gaussian_stream(n, mean=0.0, sigma=1.0, seed=0, key="v"):
    rng = random.Random(seed)
    for _ in range(n):
        yield Datum.from_mapping({key: rng.gauss(mean, sigma)})


class TestRobustZScore:
    def test_score_zero_until_min_samples(self):
        z = RobustZScore(min_samples=10)
        for d in gaussian_stream(5):
            z.add(d)
        assert z.calc_score(Datum.from_mapping({"v": 1000.0})) == 0.0

    def test_detects_magnitude_outlier(self):
        z = RobustZScore(min_samples=10)
        for d in gaussian_stream(200):
            z.add(d)
        assert z.calc_score(Datum.from_mapping({"v": 0.2})) < 3.0
        assert z.calc_score(Datum.from_mapping({"v": 20.0})) > 10.0

    def test_multi_dimension_takes_max(self):
        z = RobustZScore(min_samples=5)
        rng = random.Random(0)
        for _ in range(100):
            z.add(Datum.from_mapping({"a": rng.gauss(0, 1), "b": rng.gauss(0, 0.1)}))
        score = z.calc_score(Datum.from_mapping({"a": 0.0, "b": 3.0}))
        assert score > 10.0  # driven by the tight dimension b

    def test_constant_dimension_infinite_surprise(self):
        z = RobustZScore(min_samples=3)
        for _ in range(10):
            z.add(Datum.from_mapping({"c": 5.0}))
        assert z.calc_score(Datum.from_mapping({"c": 5.0})) == 0.0
        assert math.isinf(z.calc_score(Datum.from_mapping({"c": 6.0})))

    def test_unseen_dimension_ignored(self):
        z = RobustZScore(min_samples=3)
        for d in gaussian_stream(20):
            z.add(d)
        assert z.calc_score(Datum.from_mapping({"new": 99.0})) == 0.0

    def test_dimensions_listing(self):
        z = RobustZScore()
        z.add(Datum.from_mapping({"b": 1.0, "a": 2.0}))
        assert z.dimensions == ["a", "b"]


class TestLofLite:
    def test_bootstrap_scores_one(self):
        lof = LofLite(k=3, window=16)
        assert lof.calc_score(Datum.from_mapping({"v": 0.0})) == 1.0

    def test_detects_density_outlier(self):
        lof = LofLite(k=4, window=64)
        rng = random.Random(1)
        for _ in range(64):
            lof.add(Datum.from_mapping({"x": rng.gauss(0, 0.2), "y": rng.gauss(0, 0.2)}))
        normal = lof.calc_score(Datum.from_mapping({"x": 0.1, "y": -0.1}))
        outlier = lof.calc_score(Datum.from_mapping({"x": 8.0, "y": 8.0}))
        assert normal < 2.0
        assert outlier > 5.0

    def test_window_bounded(self):
        lof = LofLite(k=2, window=8)
        for d in gaussian_stream(100):
            lof.add(d)
        assert lof.size == 8

    def test_duplicate_point_scores_normal(self):
        lof = LofLite(k=2, window=8)
        for _ in range(8):
            lof.add(Datum.from_mapping({"v": 1.0}))
        assert lof.calc_score(Datum.from_mapping({"v": 1.0})) == 1.0

    def test_window_must_exceed_k(self):
        with pytest.raises(ModelError):
            LofLite(k=5, window=5)


class TestOnlineKMeans:
    def test_finds_two_clusters(self):
        km = OnlineKMeans(k=2)
        rng = random.Random(2)
        for _ in range(400):
            center = rng.choice([0.0, 10.0])
            km.push(Datum.from_mapping({"x": rng.gauss(center, 0.5)}))
        centers = sorted(c["x"] for c in km.centroids)
        assert centers[0] == pytest.approx(0.0, abs=0.5)
        assert centers[1] == pytest.approx(10.0, abs=0.5)

    def test_nearest_before_any_push_raises(self):
        with pytest.raises(ModelError):
            OnlineKMeans(k=2).nearest(Datum.from_mapping({"x": 1.0}))

    def test_seeding_skips_duplicates(self):
        km = OnlineKMeans(k=3)
        for _ in range(5):
            km.push(Datum.from_mapping({"x": 1.0}))
        assert km.cluster_count == 1

    def test_decay_tracks_drift(self):
        km = OnlineKMeans(k=1, decay=0.9)
        for _ in range(50):
            km.push(Datum.from_mapping({"x": 0.0}))
        for _ in range(50):
            km.push(Datum.from_mapping({"x": 10.0}))
        assert km.centroids[0]["x"] > 8.0

    def test_state_round_trip(self):
        km = OnlineKMeans(k=2)
        rng = random.Random(3)
        for _ in range(100):
            km.push(Datum.from_mapping({"x": rng.gauss(rng.choice([0, 5]), 0.3)}))
        clone = OnlineKMeans(k=2)
        clone.load_state(km.to_state())
        d = Datum.from_mapping({"x": 4.8})
        assert clone.nearest(d)[0] == km.nearest(d)[0]


class TestWindowStat:
    def test_windowed_mean(self):
        ws = WindowStat(window=10)
        for i in range(20):
            ws.push("t", float(i))
        assert ws.mean("t") == pytest.approx(14.5)
        assert ws.count("t") == 10
        assert ws.min("t") == 10.0
        assert ws.max("t") == 19.0

    def test_stddev(self):
        ws = WindowStat(window=100)
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            ws.push("t", v)
        assert ws.stddev("t") == pytest.approx(2.0)

    def test_missing_key_nan(self):
        ws = WindowStat()
        assert math.isnan(ws.mean("ghost"))
        assert math.isnan(ws.stddev("ghost"))
        assert ws.count("ghost") == 0
        assert ws.sum("ghost") == 0.0

    def test_moment(self):
        ws = WindowStat(window=10)
        for v in (1.0, 2.0, 3.0):
            ws.push("t", v)
        assert ws.moment("t", 1) == pytest.approx(2.0)
        assert ws.moment("t", 2, center=2.0) == pytest.approx(2.0 / 3.0)

    def test_keys(self):
        ws = WindowStat()
        ws.push("b", 1.0)
        ws.push("a", 1.0)
        assert ws.keys == ["a", "b"]
