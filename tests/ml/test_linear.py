import random

import pytest

from repro.errors import ModelError
from repro.ml.linear import (
    AROW,
    ConfidenceWeighted,
    PassiveAggressive,
    Perceptron,
    make_learner,
)

ALGORITHMS = ["perceptron", "pa", "pa1", "pa2", "cw", "arow"]


def linearly_separable_stream(n, seed=0):
    rng = random.Random(seed)
    for _ in range(n):
        x, y = rng.gauss(0, 1), rng.gauss(0, 1)
        label = "pos" if x + 0.5 * y > 0 else "neg"
        yield {"x": x, "y": y, "bias": 1.0}, label


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_learns_separable_concept(algorithm):
    learner = make_learner(algorithm)
    for features, label in linearly_separable_stream(300):
        learner.train(features, label)
    correct = 0
    total = 0
    for features, label in linearly_separable_stream(200, seed=1):
        predicted, _scores = learner.classify(features)
        correct += predicted == label
        total += 1
    assert correct / total > 0.85


def test_classify_untrained_raises():
    with pytest.raises(ModelError):
        Perceptron().classify({"x": 1.0})


def test_empty_label_rejected():
    with pytest.raises(ModelError):
        Perceptron().train({"x": 1.0}, "")


def test_perceptron_no_update_when_correct():
    p = Perceptron()
    p.train({"x": 1.0}, "a")  # creates label, margin 0 -> update
    updates_before = p.updates
    p.train({"x": 1.0}, "a")  # now margin > 0 -> no update
    assert p.updates == updates_before


def test_pa_variants_differ():
    base = {"x": 1.0}
    pa = make_learner("pa")
    pa1 = make_learner("pa1", c=0.01)
    pa.train(base, "a")
    pa1.train(base, "a")
    # PA-I caps the step at C.
    assert pa1.weights["a"]["x"] <= 0.01 + 1e-12
    assert pa.weights["a"]["x"] > pa1.weights["a"]["x"]


def test_pa_invalid_variant():
    with pytest.raises(ModelError):
        PassiveAggressive(variant=3)


def test_arow_variance_shrinks():
    learner = AROW(r=0.5)
    for features, label in linearly_separable_stream(50):
        learner.train(features, label)
    assert learner.variance_of("pos", "x") < 1.0


def test_cw_updates_on_low_confidence_margin():
    learner = ConfidenceWeighted(phi=1.0)
    learner.train({"x": 1.0}, "a")
    first_updates = learner.updates
    # Correct but low-margin example still triggers an update in CW.
    learner.train({"x": 0.01}, "a")
    assert learner.updates >= first_updates


def test_make_learner_unknown():
    with pytest.raises(ModelError):
        make_learner("svm")


def test_labels_and_is_trained():
    learner = make_learner("pa1")
    assert not learner.is_trained
    learner.train({"x": 1.0}, "b")
    learner.train({"x": -1.0}, "a")
    assert learner.is_trained
    assert learner.labels == ["a", "b"]


def test_deterministic_tie_break():
    learner = Perceptron()
    learner.weights["a"] = learner.weights.get("a") or __import__(
        "repro.ml.storage", fromlist=["SparseVector"]
    ).SparseVector()
    learner._ensure_label("a")
    learner._ensure_label("b")
    label, _ = learner.classify({"x": 1.0})
    assert label == "b"  # equal scores -> lexicographically larger label wins


def test_state_round_trip():
    learner = make_learner("pa1")
    for features, label in linearly_separable_stream(100):
        learner.train(features, label)
    clone = make_learner("pa1")
    clone.load_state(learner.to_state())
    for features, _ in linearly_separable_stream(50, seed=2):
        assert clone.classify(features)[0] == learner.classify(features)[0]
    assert clone.examples_seen == learner.examples_seen


def test_collect_and_apply_diff_round_trip():
    learner = make_learner("pa1")
    for features, label in linearly_separable_stream(50):
        learner.train(features, label)
    diff = learner.collect_diff()
    # Applying your own diff back is a no-op on the weights.
    before = {l: w.to_dict() for l, w in learner.weights.items()}
    learner.apply_mixed(diff)
    after = {l: w.to_dict() for l, w in learner.weights.items()}
    for label in before:
        for key in before[label]:
            assert after[label][key] == pytest.approx(before[label][key])


def test_diff_resets_after_apply():
    learner = make_learner("pa1")
    learner.train({"x": 1.0}, "a")
    learner.apply_mixed(learner.collect_diff())
    empty = learner.collect_diff()
    assert all(not delta for delta in empty.values())
