import random

import pytest

from repro.errors import ModelError
from repro.ml.features import Datum
from repro.ml.neighbors import NearestNeighbors


def d(**values):
    return Datum.from_mapping(values)


class TestNearestNeighbors:
    def test_neighbors_sorted_by_distance(self):
        nn = NearestNeighbors(window=16)
        nn.set_row("far", d(x=10.0))
        nn.set_row("near", d(x=1.0))
        nn.set_row("mid", d(x=5.0))
        hits = nn.neighbors(d(x=0.0), k=3)
        assert [h.row_id for h in hits] == ["near", "mid", "far"]
        assert hits[0].distance == pytest.approx(1.0)

    def test_k_limits_results(self):
        nn = NearestNeighbors(window=16)
        for i in range(10):
            nn.set_row(f"r{i}", d(x=float(i)))
        assert len(nn.neighbors(d(x=0.0), k=3)) == 3

    def test_update_replaces_row(self):
        nn = NearestNeighbors(window=16)
        nn.set_row("r", d(x=100.0))
        nn.set_row("r", d(x=1.0))
        assert len(nn) == 1
        assert nn.neighbors(d(x=0.0), k=1)[0].distance == pytest.approx(1.0)

    def test_window_evicts_oldest(self):
        nn = NearestNeighbors(window=2)
        nn.set_row("a", d(x=1.0))
        nn.set_row("b", d(x=2.0))
        nn.set_row("c", d(x=3.0))
        ids = {h.row_id for h in nn.neighbors(d(x=0.0), k=5)}
        assert ids == {"b", "c"}

    def test_missing_keys_read_as_zero(self):
        nn = NearestNeighbors()
        nn.set_row("a", d(x=3.0, y=4.0))
        hit = nn.neighbors(d(x=0.0), k=1)[0]
        assert hit.distance == pytest.approx(5.0)

    def test_cosine_metric(self):
        nn = NearestNeighbors(metric="cosine")
        nn.set_row("same-direction", d(x=10.0, y=0.0))
        nn.set_row("orthogonal", d(x=0.0, y=1.0))
        hits = nn.neighbors(d(x=1.0, y=0.0), k=2)
        assert hits[0].row_id == "same-direction"
        assert hits[0].distance == pytest.approx(0.0, abs=1e-9)
        assert hits[1].distance == pytest.approx(1.0)

    def test_unknown_metric(self):
        with pytest.raises(ModelError):
            NearestNeighbors(metric="manhattan")

    def test_classify_majority(self):
        nn = NearestNeighbors()
        rng = random.Random(0)
        for i in range(50):
            x = rng.gauss(0, 1)
            nn.set_row(f"r{i}", d(x=x), label="p" if x > 0 else "n")
        label, votes = nn.classify(d(x=1.5), k=7)
        assert label == "p"
        assert sum(votes.values()) == 7

    def test_classify_without_labels_raises(self):
        nn = NearestNeighbors()
        nn.set_row("r", d(x=1.0))
        with pytest.raises(ModelError):
            nn.classify(d(x=1.0))

    def test_state_round_trip(self):
        nn = NearestNeighbors(window=8)
        for i in range(5):
            nn.set_row(f"r{i}", d(x=float(i)), label="even" if i % 2 == 0 else "odd")
        clone = NearestNeighbors(window=8)
        clone.load_state(nn.to_state())
        assert len(clone) == 5
        assert clone.classify(d(x=2.1), k=1)[0] == "even"


class TestKnnFlowModel:
    def test_knn_model_via_factory(self):
        from repro.core.flow import FlowRecord
        from repro.core.models import build_flow_model

        model = build_flow_model({"model": "knn", "k": 3, "window": 32})
        assert not model.ready
        for i in range(12):
            x = 1.0 if i % 2 else -1.0
            record = FlowRecord(
                sample_id=f"s{i}",
                source="t",
                sensed_at=0.0,
                datum=Datum.from_mapping({"x": x, "label": "pos" if x > 0 else "neg"}),
            )
            model.train(record)
        assert model.ready
        probe = FlowRecord(
            sample_id="probe", source="t", sensed_at=0.0,
            datum=Datum.from_mapping({"x": 0.8}),
        )
        out = model.judge(probe)
        assert out["label"] == "pos"
        assert out["votes"]["pos"] >= 2

    def test_knn_state_round_trip(self):
        from repro.core.flow import FlowRecord
        from repro.core.models import build_flow_model

        model = build_flow_model({"model": "knn"})
        record = FlowRecord(
            sample_id="s", source="t", sensed_at=0.0,
            datum=Datum.from_mapping({"x": 1.0, "label": "a"}),
        )
        model.train(record)
        clone = build_flow_model({"model": "knn"})
        clone.import_state(model.export_state())
        assert clone.ready
