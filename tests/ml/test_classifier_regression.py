import random

import pytest

from repro.errors import ModelError
from repro.ml.classifier import OnlineClassifier
from repro.ml.features import Datum
from repro.ml.regression import PARegression


class TestOnlineClassifier:
    def test_train_and_classify(self):
        clf = OnlineClassifier(algorithm="pa1")
        for _ in range(5):
            clf.train(Datum.from_mapping({"x": 1.0}), "hot")
            clf.train(Datum.from_mapping({"x": -1.0}), "cold")
        result = clf.classify(Datum.from_mapping({"x": 0.9}))
        assert result.label == "hot"
        assert result.margin() > 0

    def test_untrained_raises(self):
        with pytest.raises(ModelError):
            OnlineClassifier().classify(Datum.from_mapping({"x": 1.0}))

    def test_labels_property(self):
        clf = OnlineClassifier()
        clf.train(Datum.from_mapping({"x": 1.0}), "b")
        clf.train(Datum.from_mapping({"x": 1.0}), "a")
        assert clf.labels == ["a", "b"]
        assert clf.is_trained

    def test_state_round_trip(self):
        clf = OnlineClassifier(algorithm="pa2")
        rng = random.Random(3)
        for _ in range(200):
            x = rng.gauss(0, 1)
            clf.train(Datum.from_mapping({"x": x}), "p" if x > 0 else "n")
        clone = OnlineClassifier(algorithm="pa2")
        clone.load_state(clf.to_state())
        d = Datum.from_mapping({"x": 0.7})
        assert clone.classify(d).label == clf.classify(d).label

    def test_margin_single_label(self):
        clf = OnlineClassifier()
        clf.train(Datum.from_mapping({"x": 1.0}), "only")
        result = clf.classify(Datum.from_mapping({"x": 1.0}))
        assert result.label == "only"

    def test_string_features(self):
        clf = OnlineClassifier()
        for _ in range(5):
            clf.train(Datum.from_mapping({"weather": "rain"}), "inside")
            clf.train(Datum.from_mapping({"weather": "sun"}), "outside")
        assert clf.classify(Datum.from_mapping({"weather": "rain"})).label == "inside"


class TestPARegression:
    def test_learns_linear_function(self):
        reg = PARegression(epsilon=0.01)
        rng = random.Random(1)
        for _ in range(600):
            x = rng.uniform(-1, 1)
            reg.train(Datum.from_mapping({"x": x}), 2.0 * x - 1.0)
        assert reg.predict(Datum.from_mapping({"x": 0.5})) == pytest.approx(0.0, abs=0.1)

    def test_epsilon_tube_suppresses_updates(self):
        reg = PARegression(epsilon=10.0)
        assert reg.train_features({"x": 1.0}, 5.0) is False
        assert reg.updates == 0
        assert reg.examples_seen == 1

    def test_c_caps_step(self):
        reg = PARegression(c=0.1, epsilon=0.0)
        reg.train_features({"x": 1.0}, 100.0)
        assert reg.weights["x"] <= 0.1 + 1e-12

    def test_state_round_trip(self):
        reg = PARegression()
        for i in range(50):
            reg.train_features({"x": float(i % 5)}, float(i % 5) * 3)
        clone = PARegression()
        clone.load_state(reg.to_state())
        assert clone.predict_features({"x": 2.0}) == pytest.approx(
            reg.predict_features({"x": 2.0})
        )

    def test_mix_diff_round_trip(self):
        reg = PARegression(epsilon=0.0)
        reg.train_features({"x": 1.0}, 1.0)
        diff = reg.collect_diff()
        assert "_regression" in diff
        reg.apply_mixed(diff)
        assert not reg.collect_diff()["_regression"]  # base advanced

    def test_invalid_params(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PARegression(c=0.0)
        with pytest.raises(ConfigurationError):
            PARegression(epsilon=-1.0)
