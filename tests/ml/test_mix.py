import random

import pytest

from repro.errors import MixError
from repro.ml.linear import make_learner
from repro.ml.mix import MixCoordinator, MixParticipantState, average_diffs


class TestAverageDiffs:
    def test_uniform_average(self):
        a = {"l": {"x": 2.0}}
        b = {"l": {"x": 4.0}}
        assert average_diffs([a, b]) == {"l": {"x": 3.0}}

    def test_missing_entries_count_as_zero(self):
        a = {"l": {"x": 2.0}}
        b = {"other": {"y": 4.0}}
        mixed = average_diffs([a, b])
        assert mixed["l"]["x"] == pytest.approx(1.0)
        assert mixed["other"]["y"] == pytest.approx(2.0)

    def test_weighted(self):
        a = {"l": {"x": 0.0}}
        b = {"l": {"x": 10.0}}
        mixed = average_diffs([a, b], weights=[3.0, 1.0])
        assert mixed["l"]["x"] == pytest.approx(2.5)

    def test_exact_zero_pruned(self):
        a = {"l": {"x": 1.0}}
        b = {"l": {"x": -1.0}}
        assert average_diffs([a, b]) == {"l": {}}

    def test_errors(self):
        with pytest.raises(MixError):
            average_diffs([])
        with pytest.raises(MixError):
            average_diffs([{"l": {}}], weights=[1.0, 2.0])
        with pytest.raises(MixError):
            average_diffs([{"l": {}}], weights=[0.0])


class TestCoordinator:
    def test_full_round(self):
        coord = MixCoordinator()
        round_ = coord.start_round(["a", "b"])
        assert not coord.receive_diff("a", round_.round_id, {"l": {"x": 2.0}})
        assert coord.receive_diff("b", round_.round_id, {"l": {"x": 4.0}})
        mixed = coord.finish_round()
        assert mixed == {"l": {"x": 3.0}}
        assert coord.rounds_completed == 1
        assert coord.current is None

    def test_stale_round_replies_ignored(self):
        coord = MixCoordinator()
        r1 = coord.start_round(["a"])
        coord.receive_diff("a", r1.round_id, {})
        coord.finish_round()
        r2 = coord.start_round(["a"])
        assert coord.receive_diff("a", r1.round_id, {"l": {"x": 1.0}}) is False
        assert r2.diffs == {}

    def test_unexpected_participant_rejected(self):
        coord = MixCoordinator()
        round_ = coord.start_round(["a"])
        with pytest.raises(MixError):
            coord.receive_diff("intruder", round_.round_id, {})

    def test_partial_finish_requires_flag(self):
        coord = MixCoordinator()
        round_ = coord.start_round(["a", "b"])
        coord.receive_diff("a", round_.round_id, {"l": {"x": 2.0}})
        with pytest.raises(MixError):
            coord.finish_round()
        mixed = coord.finish_round(allow_partial=True)
        assert mixed == {"l": {"x": 2.0}}

    def test_quorum_enforced(self):
        coord = MixCoordinator(min_quorum=2)
        round_ = coord.start_round(["a", "b", "c"])
        coord.receive_diff("a", round_.round_id, {})
        with pytest.raises(MixError):
            coord.finish_round(allow_partial=True)

    def test_concurrent_round_rejected(self):
        coord = MixCoordinator()
        coord.start_round(["a"])
        with pytest.raises(MixError):
            coord.start_round(["a"])

    def test_abort(self):
        coord = MixCoordinator()
        coord.start_round(["a"])
        coord.abort_round()
        assert coord.current is None
        coord.start_round(["a"])  # works again

    def test_empty_participants_rejected(self):
        with pytest.raises(MixError):
            MixCoordinator().start_round([])


class TestEndToEndMix:
    def test_sharded_learners_converge_to_identical_models(self):
        rng = random.Random(7)
        learners = [make_learner("pa1") for _ in range(3)]
        participants = [
            MixParticipantState(f"p{i}", learner)
            for i, learner in enumerate(learners)
        ]
        coord = MixCoordinator()
        for _epoch in range(4):
            for i in range(120):
                x, y = rng.gauss(0, 1), rng.gauss(0, 1)
                label = "pos" if x - y > 0 else "neg"
                learners[i % 3].train({"x": x, "y": y, "bias": 1.0}, label)
            round_ = coord.start_round([p.name for p in participants])
            for p in participants:
                reply = p.make_reply(round_.round_id)
                coord.receive_diff(p.name, reply["round"], reply["diff"], reply["weight"])
            mixed = coord.finish_round()
            for p in participants:
                assert p.apply_broadcast(round_.round_id, mixed)
        weights = [
            {l: w.to_dict() for l, w in learner.weights.items()} for learner in learners
        ]
        assert weights[0] == weights[1] == weights[2]
        # And the mixed model is actually good.
        correct = 0
        for _ in range(200):
            x, y = rng.gauss(0, 1), rng.gauss(0, 1)
            label = "pos" if x - y > 0 else "neg"
            correct += learners[0].classify({"x": x, "y": y, "bias": 1.0})[0] == label
        assert correct / 200 > 0.9

    def test_replayed_broadcast_ignored(self):
        learner = make_learner("pa1")
        p = MixParticipantState("p", learner)
        learner.train({"x": 1.0}, "a")
        assert p.apply_broadcast(1, {"a": {"x": 5.0}}) is True
        weight_after = learner.weights["a"]["x"]
        assert p.apply_broadcast(1, {"a": {"x": 99.0}}) is False
        assert learner.weights["a"]["x"] == weight_after
