import pytest

from repro.ml.storage import SparseVector


def test_zero_entries_pruned():
    v = SparseVector({"a": 1.0, "b": 0.0})
    assert len(v) == 1
    v["a"] = 0.0
    assert len(v) == 0
    assert v["a"] == 0.0


def test_dot_product():
    v = SparseVector({"a": 2.0, "b": -1.0})
    assert v.dot({"a": 3.0, "c": 10.0}) == pytest.approx(6.0)
    assert v.dot({}) == 0.0
    # symmetric regardless of operand sizes
    big = {f"k{i}": 1.0 for i in range(10)}
    big["a"] = 1.0
    assert v.dot(big) == pytest.approx(2.0)


def test_add_with_scale():
    v = SparseVector({"a": 1.0})
    v.add({"a": 2.0, "b": 3.0}, scale=2.0)
    assert v.to_dict() == {"a": 5.0, "b": 6.0}
    v.add({"a": 5.0}, scale=-1.0)
    assert "a" not in v


def test_add_zero_scale_is_noop():
    v = SparseVector({"a": 1.0})
    v.add({"b": 9.9}, scale=0.0)
    assert v.to_dict() == {"a": 1.0}


def test_scale():
    v = SparseVector({"a": 2.0, "b": 4.0})
    v.scale(0.5)
    assert v.to_dict() == {"a": 1.0, "b": 2.0}
    v.scale(0.0)
    assert len(v) == 0


def test_norm():
    v = SparseVector({"a": 3.0, "b": 4.0})
    assert v.norm() == pytest.approx(5.0)
    assert SparseVector().norm() == 0.0


def test_copy_is_independent():
    v = SparseVector({"a": 1.0})
    c = v.copy()
    c["a"] = 9.0
    assert v["a"] == 1.0


def test_equality_and_round_trip():
    v = SparseVector({"a": 1.5})
    assert SparseVector.from_dict(v.to_dict()) == v
    assert v != SparseVector({"a": 2.0})


def test_iteration_and_contains():
    v = SparseVector({"a": 1.0, "b": 2.0})
    assert dict(iter(v)) == {"a": 1.0, "b": 2.0}
    assert "a" in v and "z" not in v
    assert sorted(v.keys()) == ["a", "b"]
