import math
import random

import pytest

from repro.ml.classifier import OnlineClassifier
from repro.ml.evaluation import PrequentialAccuracy, PrequentialEvaluator
from repro.ml.features import Datum


class TestPrequentialAccuracy:
    def test_empty_is_nan(self):
        acc = PrequentialAccuracy()
        assert math.isnan(acc.windowed)
        assert math.isnan(acc.cumulative)

    def test_cumulative_counts_everything(self):
        acc = PrequentialAccuracy(window=2)
        for outcome in (True, True, False, False):
            acc.record(outcome)
        assert acc.cumulative == pytest.approx(0.5)
        assert acc.windowed == pytest.approx(0.0)  # last two were wrong

    def test_window_slides(self):
        acc = PrequentialAccuracy(window=3)
        for outcome in (False, False, False, True, True, True):
            acc.record(outcome)
        assert acc.windowed == pytest.approx(1.0)
        assert acc.cumulative == pytest.approx(0.5)

    def test_summary(self):
        acc = PrequentialAccuracy()
        acc.record(True)
        summary = acc.summary()
        assert summary["count"] == 1
        assert summary["cumulative"] == 1.0


class TestPrequentialEvaluator:
    def test_cold_start_skipped_not_scored(self):
        ev = PrequentialEvaluator(OnlineClassifier())
        first = ev.step(Datum.from_mapping({"x": 1.0}), "a")
        assert first is None
        assert ev.skipped_cold == 1
        assert ev.accuracy.total == 0

    def test_accuracy_improves_on_learnable_stream(self):
        ev = PrequentialEvaluator(OnlineClassifier(algorithm="pa1"), window=100)
        rng = random.Random(4)
        for _ in range(400):
            x = rng.gauss(0, 1)
            ev.step(Datum.from_mapping({"x": x}), "p" if x > 0 else "n")
        assert ev.accuracy.windowed > 0.9

    def test_tracks_concept_drift(self):
        """Windowed accuracy dips when the concept flips, then recovers."""
        ev = PrequentialEvaluator(OnlineClassifier(algorithm="pa1"), window=60)
        rng = random.Random(5)

        def run(n, flip):
            for _ in range(n):
                x = rng.gauss(0, 1)
                label = ("n" if x > 0 else "p") if flip else ("p" if x > 0 else "n")
                ev.step(Datum.from_mapping({"x": x}), label)

        run(300, flip=False)
        stable = ev.accuracy.windowed
        # PA adapts within a handful of examples on this 1-D concept, so
        # sample the window during the transition and take the deepest dip.
        dips = []
        for _ in range(6):
            run(10, flip=True)
            dips.append(ev.accuracy.windowed)
        run(400, flip=True)
        recovered = ev.accuracy.windowed
        assert stable > 0.9
        assert min(dips) < stable - 0.05
        assert recovered > 0.9
