"""``repro trace`` CLI: breakdown output, exports, input analysis."""

import json

import pytest

from repro.cli import main
from repro.sim.trace import Tracer


@pytest.mark.slow
def test_paper_pipeline_prints_breakdown(capsys):
    code = main(
        ["trace", "--pipeline", "paper", "--rate", "2", "--duration", "1.5"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Latency breakdown" in out
    assert "Avg(ms)" in out
    assert "End-to-end" in out
    # The paper's Tables II/III stage set must be represented.
    for stage in ("publish", "broker", "train", "predict"):
        assert stage in out


@pytest.mark.slow
def test_exports_jsonl_and_chrome(tmp_path, capsys):
    jsonl = tmp_path / "trace.jsonl"
    chrome = tmp_path / "chrome.json"
    code = main(
        [
            "trace",
            "--pipeline",
            "paper",
            "--rate",
            "2",
            "--duration",
            "1.5",
            "--jsonl",
            str(jsonl),
            "--chrome",
            str(chrome),
        ]
    )
    assert code == 0
    assert len(Tracer.from_jsonl(jsonl)) > 0
    events = json.loads(chrome.read_text())["traceEvents"]
    assert any(e["ph"] == "X" for e in events)
    assert any(e["ph"] == "M" for e in events)


@pytest.mark.slow
def test_analyzes_existing_dump_via_input(tmp_path, capsys):
    jsonl = tmp_path / "trace.jsonl"
    assert (
        main(
            [
                "trace",
                "--pipeline",
                "paper",
                "--rate",
                "2",
                "--duration",
                "1.5",
                "--jsonl",
                str(jsonl),
            ]
        )
        == 0
    )
    first = capsys.readouterr().out
    assert main(["trace", "--input", str(jsonl)]) == 0
    second = capsys.readouterr().out
    # The offline analysis reconstructs the same breakdown table.
    table = [l for l in first.splitlines() if "|" in l]
    assert table and table == [l for l in second.splitlines() if "|" in l]


def test_spanless_trace_exits_one(tmp_path, capsys):
    tracer = Tracer()
    tracer.emit(0.0, "n1", "some.event", x=1)
    path = tmp_path / "empty.jsonl"
    tracer.to_jsonl(path)
    assert main(["trace", "--input", str(path)]) == 1
    assert "no spans" in capsys.readouterr().out


def test_missing_input_exits_two(capsys):
    assert main(["trace", "--input", "/nonexistent/trace.jsonl"]) == 2
    assert "error" in capsys.readouterr().err
