"""``repro slo`` / ``repro top`` / ``repro trace --summary`` CLIs."""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.cli import main


@pytest.mark.slow
def test_slo_failover_json_reports_burn_and_exits_one(capsys):
    code = main(["slo", "chaos:failover", "--format", "json"])
    assert code == 1  # the page is an SLO300 error finding
    payload = json.loads(capsys.readouterr().out)
    train = payload["report"]["flows"]["train"]
    assert train["paged"] is True
    assert train["overdue"] > 0
    assert 20.0 <= train["first_page_at"] <= 25.0
    assert any(a["state"] == "page" for a in payload["report"]["alerts"])
    assert any(d["rule"] == "SLO300" for d in payload["diagnostics"])


@pytest.mark.slow
def test_slo_failover_expect_burn_gates_zero(capsys):
    code = main(["slo", "chaos:failover", "--expect-burn"])
    assert code == 0
    out = capsys.readouterr().out
    assert "alert timeline" in out
    assert "overdue (never completed)" in out


@pytest.mark.slow
def test_slo_fig5_strict_passes_clean(capsys):
    code = main(["slo", "fig5", "--strict", "--duration", "8"])
    assert code == 0
    out = capsys.readouterr().out
    assert "SLO report" in out
    assert "slo OK" in out


def test_slo_unknown_scenario_errors(capsys):
    code = main(["slo", "nonsense"])
    assert code != 0
    assert "unknown slo scenario" in capsys.readouterr().err


def test_slo_disabled_engine_exits_two(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SLO", "0")
    code = main(["slo", "fig5", "--duration", "2"])
    assert code == 2
    assert "disabled" in capsys.readouterr().out


@pytest.mark.slow
def test_trace_summary_with_recipe_prints_verdicts(capsys):
    code = main(
        [
            "trace",
            "--pipeline",
            "fig5",
            "--duration",
            "8",
            "--summary",
            "--recipe",
            "fig5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "flow" in out and "p95_ms" in out and "verdict" in out


def test_top_polls_and_prints(monkeypatch, capsys):
    bodies = iter(["t=1.000s\nseries:\n  a 1\n", "t=2.000s\nseries:\n  a 2\n"])
    monkeypatch.setattr(cli, "_fetch_text", lambda url, timeout_s=10.0: next(bodies))
    code = main(
        [
            "top",
            "http://127.0.0.1:9999",
            "--iterations",
            "2",
            "--interval",
            "0",
            "--no-clear",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "t=1.000s" in out and "t=2.000s" in out


def test_top_unreachable_exits_one(monkeypatch, capsys):
    def boom(url, timeout_s=10.0):
        raise OSError("connection refused")

    monkeypatch.setattr(cli, "_fetch_text", boom)
    code = main(["top", "http://127.0.0.1:1", "--iterations", "1"])
    assert code == 1
    assert "cannot reach" in capsys.readouterr().err
