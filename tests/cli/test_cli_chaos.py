"""``repro chaos`` CLI: exit codes, determinism, violation reporting."""

from types import SimpleNamespace

import pytest

from repro.cli import main


def test_list_prints_every_scenario(capsys):
    from repro.chaos import SCENARIOS

    assert main(["chaos", "--list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out


def test_unknown_scenario_exits_one(capsys):
    assert main(["chaos", "no-such-scenario"]) == 1
    assert "unknown chaos scenario" in capsys.readouterr().err


@pytest.mark.slow
def test_passing_scenario_exits_zero(capsys):
    assert main(["chaos", "partition_heal", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "scenario partition_heal (seed 3" in out
    assert "PASS" in out


@pytest.mark.slow
def test_same_seed_reports_same_digest(capsys):
    def digest() -> str:
        assert main(["chaos", "sensor_flap", "--seed", "11"]) == 0
        out = capsys.readouterr().out
        (line,) = [l for l in out.splitlines() if "trace digest:" in l]
        return line.split()[-1]

    assert digest() == digest()


@pytest.mark.slow
def test_heal_prints_recovery_report(capsys):
    assert main(["heal", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "recovery report" in out
    assert "detection:" in out
    assert "failover moves: 1" in out
    assert "migrations: 1" in out
    assert "PASS" in out


@pytest.mark.slow
def test_chaos_recover_flag_appends_report(capsys):
    assert main(["chaos", "failover", "--recover"]) == 0
    out = capsys.readouterr().out
    assert "recovery report" in out
    assert "degraded-mode decisions" in out


def _stub_result(ok: bool):
    report = SimpleNamespace(
        ok=ok,
        render=lambda: "invariants: " + ("PASS" if ok else "FAIL\n  FAIL qos1-loss"),
    )
    return SimpleNamespace(
        name="stubbed",
        seed=0,
        duration_s=1.0,
        report=report,
        trace_digest="deadbeef" * 8,
        trace_records=42,
        faults_applied=1,
    )


def test_invariant_violation_exits_one_and_is_reported(capsys, monkeypatch):
    import repro.cli as cli

    monkeypatch.setattr(
        cli, "run_scenario", lambda name, seed, profile=False: _stub_result(False)
    )
    assert main(["chaos", "partition_heal"]) == 1
    out = capsys.readouterr().out
    assert "FAIL qos1-loss" in out


def test_any_failure_fails_the_whole_run(capsys, monkeypatch):
    import repro.cli as cli

    results = iter([_stub_result(True), _stub_result(False), _stub_result(True)])
    monkeypatch.setattr(
        cli, "run_scenario", lambda name, seed, profile=False: next(results)
    )
    monkeypatch.setattr(
        cli, "SCENARIOS", {"a": None, "b": None, "c": None}
    )
    assert main(["chaos"]) == 1
