"""``repro prof`` and ``repro bench`` CLI: formats, exports, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

PROF_FAST = [
    "prof",
    "--scenario",
    "paper",
    "--rate",
    "20",
    "--duration",
    "1.0",
    "--seed",
    "4",
]


def test_prof_tree_prints_nodes_and_kernel(capsys):
    assert main(PROF_FAST) == 0
    out = capsys.readouterr().out
    assert "Profile — paper pipeline at 20 Hz" in out
    assert "module-e" in out
    assert "% util" in out
    assert "kernel:" in out


def test_prof_folded_format_is_parseable(capsys):
    assert main(PROF_FAST + ["--format", "folded"]) == 0
    out = capsys.readouterr().out
    data_lines = [
        line for line in out.splitlines() if ";" in line and line[-1].isdigit()
    ]
    assert data_lines
    for line in data_lines:
        stack, micros = line.rsplit(" ", 1)
        assert len(stack.split(";")) == 3
        int(micros)


def test_prof_json_format(capsys):
    assert main(PROF_FAST + ["--format", "json"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{") :])
    assert "nodes" in payload and "elapsed_s" in payload


def test_prof_exports_folded_and_chrome(tmp_path, capsys):
    folded = tmp_path / "out.folded"
    chrome = tmp_path / "counters.json"
    assert (
        main(PROF_FAST + ["--folded", str(folded), "--chrome", str(chrome)]) == 0
    )
    assert folded.read_text().splitlines()
    counters = json.loads(chrome.read_text())
    assert counters["traceEvents"]
    assert all(event["ph"] == "C" for event in counters["traceEvents"])


def test_prof_rates_sweep_prints_utilization_table(capsys):
    assert (
        main(
            [
                "prof",
                "--scenario",
                "paper",
                "--rates",
                "5,20",
                "--duration",
                "1.0",
                "--seed",
                "4",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "CPU utilization over the measured window" in out
    assert "module-e" in out
    assert "wlan" in out


def test_prof_unknown_scenario_exits_two(capsys):
    assert main(["prof", "--scenario", "bogus"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_bench_list(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig5" in out and "saturation" in out


def test_bench_unknown_name_exits_one(capsys):
    assert main(["bench", "bogus"]) == 1
    assert "unknown benchmark" in capsys.readouterr().err


@pytest.mark.slow
def test_bench_write_compare_and_regression(tmp_path, capsys):
    out_dir = tmp_path / "records"
    assert main(["bench", "saturation", "--out", str(out_dir)]) == 0
    record_path = out_dir / "BENCH_saturation.json"
    assert record_path.exists()
    # Fresh run vs the record it just wrote: byte-exact, gate passes.
    assert (
        main(["bench", "saturation", "--compare", str(out_dir)]) == 0
    )
    assert "OK (sim byte-exact vs baseline)" in capsys.readouterr().out
    # Tamper with a sim metric: the gate must fail and name the leaf.
    data = json.loads(record_path.read_text())
    data["sim"]["rates"]["20hz"]["samples_sensed"] += 1
    record_path.write_text(json.dumps(data))
    assert (
        main(["bench", "saturation", "--compare", str(out_dir)]) == 1
    )
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.out
    assert "samples_sensed" in captured.out
    # Missing baseline also fails.
    assert main(["bench", "fig5", "--compare", str(tmp_path / "empty")]) == 1
