"""Determinism and paper-story tests for the profiler and its exports.

A profile must be a pure function of (scenario, seed): identical runs
serialize byte-identically, and the utilization numbers must reproduce
the paper's §V-C capacity story — the training node saturates between
20 and 40 Hz.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_paper_experiment
from repro.prof import (
    folded_stacks,
    format_profile_tree,
    profile_digest,
    profile_to_dict,
)


def paper_profile(rate_hz: float = 20.0, seed: int = 9):
    return run_paper_experiment(
        rate_hz, duration_s=1.5, seed=seed, profile=True
    ).profiler


def test_same_seed_means_byte_identical_exports():
    first = paper_profile()
    second = paper_profile()
    assert format_profile_tree(first) == format_profile_tree(second)
    assert folded_stacks(first) == folded_stacks(second)
    assert profile_digest(first) == profile_digest(second)
    assert profile_to_dict(first) == profile_to_dict(second)


def test_different_seed_changes_the_digest():
    assert profile_digest(paper_profile(seed=9)) != profile_digest(
        paper_profile(seed=10)
    )


def test_folded_stack_format():
    lines = folded_stacks(paper_profile()).splitlines()
    assert lines == sorted(lines)
    for line in lines:
        stack, micros = line.rsplit(" ", 1)
        assert len(stack.split(";")) == 3  # node;domain;op
        assert int(micros) >= 0


def test_tree_mentions_every_cpu_node():
    profiler = paper_profile()
    tree = format_profile_tree(profiler, title="t")
    for node in profiler.cpu_nodes():
        assert node in tree
    assert "wlan channel airtime" in tree
    assert "kernel:" in tree


def test_profile_dict_is_json_ready():
    import json

    payload = profile_to_dict(paper_profile())
    assert json.loads(json.dumps(payload)) == payload
    assert payload["elapsed_s"] > 0
    assert "module-e" in payload["nodes"]


@pytest.mark.slow
def test_saturation_story_matches_paper():
    """§V-C: "sensing rate is 20 to 40Hz, ... real-time processing was no
    longer possible" — the training node's CPU crosses saturation there."""
    by_rate = {
        rate: run_paper_experiment(
            rate, duration_s=2.5, seed=1, profile=True
        ).cpu_utilization
        for rate in (5.0, 20.0, 40.0)
    }
    # Below the knee: the training node (module-e) has headroom.
    assert by_rate[5.0]["module-e"] < 0.5
    assert by_rate[20.0]["module-e"] < 0.95
    # Beyond the knee: saturated.
    assert by_rate[40.0]["module-e"] >= 0.99
    # Utilization is monotone in offered load and never exceeds 100%.
    for node in by_rate[5.0]:
        assert (
            by_rate[5.0][node] <= by_rate[20.0][node] + 1e-9 <= by_rate[40.0][node] + 2e-9
        )
        assert by_rate[40.0][node] <= 1.0 + 1e-9


@pytest.mark.slow
def test_fig5_profile_reproduces_and_diverges_by_seed():
    from repro.bench.calibration import pi_cost_model
    from repro.bench.scenarios import run_fig5_experiment
    from repro.prof import enable_profiling

    def profile(seed: int) -> str:
        runtime = run_fig5_experiment(
            seed=seed,
            duration_s=5.0,
            observe=False,
            prepare=lambda rt: enable_profiling(rt),
            cost_model=pi_cost_model(),
        )
        return profile_digest(runtime.prof)

    assert profile(55) == profile(55)
    assert profile(55) != profile(56)
