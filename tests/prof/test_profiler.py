"""Unit tests for the sim-time profiler core (``repro.prof``)."""

from __future__ import annotations

import pytest

from repro.prof import (
    PROF_SAMPLE_EVENT,
    BusyIntegrator,
    Profiler,
    enable_profiling,
)
from repro.runtime.costs import CostModel, OpCost
from repro.runtime.sim import SimRuntime
from repro.sim.kernel import CompositeMonitor, SimKernel


def work_model() -> CostModel:
    model = CostModel()
    model.define("crunch", OpCost(base_s=0.010))
    model.define("light", OpCost(base_s=0.002))
    return model


# ----------------------------------------------------------------------
# BusyIntegrator
# ----------------------------------------------------------------------


def test_integrator_totals_and_grants():
    integrator = BusyIntegrator()
    integrator.add(0.0, 1.0)
    integrator.add(2.0, 0.5)
    assert integrator.total == pytest.approx(1.5)
    assert integrator.grants == 2


def test_integrator_ignores_nonpositive_durations():
    integrator = BusyIntegrator()
    integrator.add(1.0, 0.0)
    integrator.add(1.0, -0.5)
    assert integrator.grants == 0
    assert integrator.total == 0.0


def test_integrator_window_overlap_clips_both_ends():
    integrator = BusyIntegrator()
    integrator.add(1.0, 2.0)  # busy on [1, 3]
    assert integrator.busy_between(0.0, 4.0) == pytest.approx(2.0)
    assert integrator.busy_between(1.5, 2.5) == pytest.approx(1.0)
    assert integrator.busy_between(0.0, 1.0) == 0.0
    assert integrator.busy_between(3.0, 9.0) == 0.0
    assert integrator.busy_between(2.0, 2.0) == 0.0
    assert integrator.busy_up_to(2.0) == pytest.approx(1.0)


def test_integrator_sums_overlapping_grants():
    # Two servers busy at once: window overlap counts both.
    integrator = BusyIntegrator()
    integrator.add(0.0, 1.0)
    integrator.add(0.5, 1.0)
    assert integrator.busy_between(0.0, 2.0) == pytest.approx(2.0)
    assert integrator.busy_between(0.5, 1.0) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Hooks through a live simulated node
# ----------------------------------------------------------------------


def run_small_workload(jobs: int = 5) -> SimRuntime:
    runtime = SimRuntime(seed=3, cost_model=work_model())
    profiler = enable_profiling(runtime, interval_s=0.25)
    assert profiler is runtime.prof
    node = runtime.add_node("worker")
    for _ in range(jobs):
        node.execute("crunch", lambda: None)
    node.execute("light", lambda: None)
    runtime.run(until=1.0)
    return runtime


def test_cpu_busy_attributed_per_operation():
    runtime = run_small_workload()
    busy = runtime.prof.busy
    crunch_s, crunch_n = busy[("worker", "cpu", "crunch")]
    light_s, light_n = busy[("worker", "cpu", "light")]
    assert crunch_n == 5
    assert crunch_s == pytest.approx(0.050)
    assert light_n == 1
    assert light_s == pytest.approx(0.002)


def test_cpu_utilization_matches_serialized_service():
    runtime = run_small_workload()
    # 52 ms of serialized work in a 1 s window on one core.
    assert runtime.prof.cpu_utilization("worker") == pytest.approx(0.052)
    assert runtime.prof.cpu_nodes() == ["worker"]


def test_sampler_emits_prof_sample_records():
    runtime = run_small_workload()
    records = runtime.tracer.select(event=PROF_SAMPLE_EVENT)
    assert len(records) == runtime.prof.samples >= 3
    first = records[0]["u"]
    assert "prof.cpu.util{node=worker}" in first
    assert "prof.cpu.queue_peak{node=worker}" in first
    assert "prof.wlan.util" in first
    # Jobs queue behind each other at t=0, so the first window sees a
    # nonzero waiting-queue watermark and full utilization.
    assert first["prof.cpu.queue_peak{node=worker}"] >= 1.0
    assert 0.0 < first["prof.cpu.util{node=worker}"] <= 1.0


def test_kernel_event_counts_accumulate():
    runtime = run_small_workload()
    assert runtime.prof.events_profiled > 0
    assert sum(runtime.prof.event_counts.values()) == runtime.prof.events_profiled


def test_enable_profiling_is_idempotent():
    runtime = SimRuntime(seed=0)
    first = enable_profiling(runtime)
    assert enable_profiling(runtime) is first


def test_enable_profiling_requires_a_sim_kernel():
    class FakeRealRuntime:
        prof = None
        kernel = None

    assert enable_profiling(FakeRealRuntime()) is None  # type: ignore[arg-type]


def test_wlan_airtime_attributed_to_sender():
    from repro.bench.harness import run_paper_experiment

    result = run_paper_experiment(5.0, duration_s=1.0, seed=2, profile=True)
    busy = result.profiler.busy
    wlan_keys = [key for key in busy if key[1] == "wlan"]
    assert wlan_keys, "no airtime charged"
    assert all(key[2] == "airtime" for key in wlan_keys)
    # Aggregate per-station airtime equals the medium's own accounting.
    total = sum(busy[key][0] for key in wlan_keys)
    assert total == pytest.approx(result.profiler._wlan_timeline.total)


# ----------------------------------------------------------------------
# CompositeMonitor
# ----------------------------------------------------------------------


class RecordingMonitor:
    def __init__(self, log: list, tag: str) -> None:
        self.log = log
        self.tag = tag

    def event_scheduled(self, handle, parent) -> None:
        self.log.append((self.tag, "scheduled"))

    def event_begin(self, handle) -> None:
        self.log.append((self.tag, "begin"))

    def event_end(self, handle) -> None:
        self.log.append((self.tag, "end"))


def test_composite_monitor_nests_brackets():
    log: list = []
    kernel = SimKernel()
    kernel.monitor = CompositeMonitor(
        (RecordingMonitor(log, "a"), RecordingMonitor(log, "b"))
    )
    kernel.schedule(0.0, lambda: None)
    kernel.run_until_idle()
    assert log == [
        ("a", "scheduled"),
        ("b", "scheduled"),
        ("a", "begin"),
        ("b", "begin"),
        ("b", "end"),  # reversed on end: brackets nest
        ("a", "end"),
    ]


def test_profiler_chains_behind_existing_monitor():
    log: list = []
    runtime = SimRuntime(seed=0)
    runtime.kernel.monitor = RecordingMonitor(log, "san")
    profiler = enable_profiling(runtime)
    assert isinstance(runtime.kernel.monitor, CompositeMonitor)
    runtime.kernel.schedule(0.0, lambda: None)
    runtime.run(until=0.1)
    assert ("san", "begin") in log  # prior monitor still sees events
    assert profiler.events_profiled > 0
