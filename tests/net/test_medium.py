import pytest

from repro.errors import AddressError, TransportError
from repro.net.address import Address
from repro.net.frame import LINK_HEADER_BYTES, Frame
from repro.net.medium import Medium


class LoopbackMedium(Medium):
    """Delivers synchronously — enough to exercise the base class."""

    def transmit(self, frame: Frame) -> None:
        interface = self._interfaces.get(frame.destination.station)
        if interface is not None:
            interface.deliver(frame)


def test_attach_detach_and_lookup():
    m = LoopbackMedium()
    m.attach("a")
    assert m.stations == ["a"]
    with pytest.raises(AddressError):
        m.attach("a")
    m.detach("a")
    assert m.stations == []
    with pytest.raises(AddressError):
        m.interface("a")


def test_send_and_receive():
    m = LoopbackMedium()
    a = m.attach("a")
    b = m.attach("b")
    got = []
    b.bind("svc", lambda src, data: got.append((str(src), data)))
    a.send("cli", Address("b", "svc"), b"hello")
    assert got == [("a/cli", b"hello")]


def test_unbound_service_drops_silently():
    m = LoopbackMedium()
    a = m.attach("a")
    m.attach("b")
    a.send("cli", Address("b", "nothing"), b"x")  # no exception


def test_double_bind_rejected():
    m = LoopbackMedium()
    a = m.attach("a")
    a.bind("svc", lambda s, d: None)
    with pytest.raises(TransportError):
        a.bind("svc", lambda s, d: None)


def test_unbind_then_rebind():
    m = LoopbackMedium()
    a = m.attach("a")
    a.bind("svc", lambda s, d: None)
    a.unbind("svc")
    a.bind("svc", lambda s, d: None)  # no error


def test_counters():
    m = LoopbackMedium()
    a = m.attach("a")
    b = m.attach("b")
    b.bind("svc", lambda s, d: None)
    a.send("cli", Address("b", "svc"), b"12345")
    assert a.frames_sent == 1
    assert a.bytes_sent == 5 + LINK_HEADER_BYTES
    assert b.frames_received == 1
    assert b.bytes_received == 5 + LINK_HEADER_BYTES


def test_frame_ids_increment():
    m = LoopbackMedium()
    a = m.attach("a")
    b = m.attach("b")
    ids = []
    b.bind("svc", lambda s, d: None)
    orig_transmit = m.transmit
    m.transmit = lambda frame: (ids.append(frame.frame_id), orig_transmit(frame))[-1]
    for _ in range(3):
        a.send("cli", Address("b", "svc"), b"")
    assert ids == [0, 1, 2]


def test_wire_size_includes_header():
    f = Frame(Address("a"), Address("b"), b"abc")
    assert f.wire_size == 3 + LINK_HEADER_BYTES
