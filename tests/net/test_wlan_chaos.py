"""WLAN chaos features: partitions, link degradation, bursty loss."""

import random

import pytest

from repro.net.address import Address
from repro.net.wlan import GilbertElliottConfig, WlanConfig, WlanMedium
from repro.sim.kernel import SimKernel
from repro.util.rng import RngRegistry


def make_wlan(**config):
    kernel = SimKernel()
    defaults = dict(jitter_s=0.0, propagation_delay_s=0.0)
    defaults.update(config)
    return kernel, WlanMedium(kernel, config=WlanConfig(**defaults))


def wire(wlan, *names):
    return [wlan.attach(name) for name in names]


class TestPartition:
    def test_partitioned_frames_never_deliver(self):
        kernel, wlan = make_wlan()
        a, b = wire(wlan, "a", "b")
        got = []
        b.bind("s", lambda src, data: got.append(data))
        wlan.partition(("a",), ("b",))
        a.send("c", Address("b", "s"), b"x")
        kernel.run()
        assert got == []
        assert wlan.frames_partitioned == 1

    def test_partitioned_frames_still_burn_airtime(self):
        # A sender with no route still occupies the channel (its radio
        # does not know the receiver is unreachable).
        kernel, wlan = make_wlan(bitrate_bps=8e3, per_frame_overhead_s=0.0)
        a, b, c = wire(wlan, "a", "b", "c")
        got = []
        c.bind("s", lambda src, data: got.append(kernel.now))
        wlan.partition(("a",), ("b",))
        payload = b"x" * (100 - 64)  # 100 B wire = 0.1 s airtime
        a.send("s", Address("b", "s"), payload)  # blocked, but transmits
        a.send("s", Address("c", "s"), payload)  # queues behind it
        kernel.run()
        assert got == [pytest.approx(0.2)]

    def test_heal_restores_delivery(self):
        kernel, wlan = make_wlan()
        a, b = wire(wlan, "a", "b")
        got = []
        b.bind("s", lambda src, data: got.append(data))
        wlan.partition(("a",), ("b",))
        wlan.heal(("a",), ("b",))
        a.send("c", Address("b", "s"), b"x")
        kernel.run()
        assert got == [b"x"]

    def test_traffic_within_groups_unaffected(self):
        kernel, wlan = make_wlan()
        a, a2, b = wire(wlan, "a", "a2", "b")
        got = []
        a2.bind("s", lambda src, data: got.append(data))
        wlan.partition(("a", "a2"), ("b",))
        a.send("c", Address("a2", "s"), b"x")
        kernel.run()
        assert got == [b"x"]


class TestDegradeLink:
    def test_bitrate_throttle_stretches_airtime(self):
        kernel, wlan = make_wlan(bitrate_bps=8e3, per_frame_overhead_s=0.0)
        a, b = wire(wlan, "a", "b")
        got = []
        b.bind("s", lambda src, data: got.append(kernel.now))
        wlan.degrade_link(bitrate_factor=0.5)
        a.send("c", Address("b", "s"), b"x" * (100 - 64))  # 0.1 s nominal
        kernel.run()
        assert got == [pytest.approx(0.2)]

    def test_station_scoped_degradation(self):
        kernel, wlan = make_wlan(bitrate_bps=8e3, per_frame_overhead_s=0.0)
        a, b, c = wire(wlan, "a", "b", "c")
        times = {}
        c.bind("s", lambda src, data: times.setdefault(str(src), kernel.now))
        wlan.degrade_link(stations={"a"}, bitrate_factor=0.5)
        payload = b"x" * (100 - 64)
        b.send("s", Address("c", "s"), payload)  # unaffected: 0.1 s
        kernel.run()
        a.send("s", Address("c", "s"), payload)  # throttled: 0.2 s
        kernel.run()
        assert times["b/s"] == pytest.approx(0.1)
        assert times["a/s"] == pytest.approx(0.1 + 0.2)

    def test_restore_link_by_handle(self):
        kernel, wlan = make_wlan()
        handle = wlan.degrade_link(bitrate_factor=0.5)
        assert wlan.degradations_active == 1
        assert wlan.restore_link(handle)
        assert wlan.degradations_active == 0
        assert not wlan.restore_link(handle)  # second restore: no-op

    def test_timed_degradation_expires(self):
        kernel, wlan = make_wlan(bitrate_bps=8e3, per_frame_overhead_s=0.0)
        a, b = wire(wlan, "a", "b")
        got = []
        b.bind("s", lambda src, data: got.append(kernel.now))
        wlan.degrade_link(bitrate_factor=0.5, duration_s=1.0)
        kernel.schedule(
            2.0, lambda: a.send("c", Address("b", "s"), b"x" * (100 - 64))
        )
        kernel.run()
        assert got == [pytest.approx(2.1)]  # nominal airtime again


class TestGilbertElliott:
    def test_always_bad_loses_everything(self):
        kernel, wlan = make_wlan()
        a, b = wire(wlan, "a", "b")
        got = []
        b.bind("s", lambda src, data: got.append(data))
        wlan.degrade_link(
            burst=GilbertElliottConfig(p_enter=1.0, p_exit=1e-9, loss_bad=1.0)
        )
        for _ in range(20):
            a.send("c", Address("b", "s"), b"x")
        kernel.run()
        assert got == []
        assert wlan.frames_lost == 20

    def test_never_entering_bad_loses_nothing(self):
        kernel, wlan = make_wlan()
        a, b = wire(wlan, "a", "b")
        got = []
        b.bind("s", lambda src, data: got.append(data))
        wlan.degrade_link(
            burst=GilbertElliottConfig(p_enter=0.0, p_exit=1.0, loss_bad=1.0)
        )
        for _ in range(20):
            a.send("c", Address("b", "s"), b"x")
        kernel.run()
        assert len(got) == 20

    def test_losses_cluster_into_bursts(self):
        # With rare entry and certain in-burst loss, losses arrive as
        # consecutive runs, unlike an i.i.d. channel of the same rate.
        kernel, wlan = make_wlan()
        a, b = wire(wlan, "a", "b")
        received_ids = []
        b.bind("s", lambda src, data: received_ids.append(int(data)))
        wlan.degrade_link(
            burst=GilbertElliottConfig(p_enter=0.05, p_exit=0.3, loss_bad=1.0)
        )
        total = 400
        for i in range(total):
            a.send("c", Address("b", "s"), str(i).encode())
        kernel.run()
        lost = sorted(set(range(total)) - set(received_ids))
        assert lost, "expected some bursty loss"
        runs, previous = [], None
        for frame in lost:
            if previous is not None and frame == previous + 1:
                runs[-1] += 1
            else:
                runs.append(1)
            previous = frame
        # Mean burst length 1/p_exit ~ 3.3 frames: multi-frame runs exist.
        assert max(runs) >= 2


class TestRngSeam:
    def test_same_registry_seed_same_outcome(self):
        def run(seed):
            kernel = SimKernel()
            wlan = WlanMedium(
                kernel,
                config=WlanConfig(loss_rate=0.3, propagation_delay_s=0.0),
                rng=RngRegistry(seed).fork("wlan"),
            )
            a, b = wire(wlan, "a", "b")
            got = []
            b.bind("s", lambda src, data: got.append(data))
            for i in range(50):
                a.send("c", Address("b", "s"), str(i).encode())
            kernel.run()
            return got

        assert run(4) == run(4)
        assert run(4) != run(5)

    def test_legacy_random_instance_still_accepted(self):
        kernel = SimKernel()
        wlan = WlanMedium(
            kernel, config=WlanConfig(loss_rate=0.5), rng=random.Random(0)
        )
        a, b = wire(wlan, "a", "b")
        b.bind("s", lambda src, data: None)
        for _ in range(10):
            a.send("c", Address("b", "s"), b"x")
        kernel.run()
        assert wlan.frames_transmitted == 10
