import pytest

from repro.errors import AddressError
from repro.net.address import Address


def test_construction_and_str():
    a = Address("pi-1", "mqtt")
    assert str(a) == "pi-1/mqtt"
    assert Address("pi-1").service == "default"


def test_parse():
    assert Address.parse("pi-1/mqtt") == Address("pi-1", "mqtt")
    assert Address.parse("pi-1") == Address("pi-1", "default")


def test_parse_rejects_bad_forms():
    for bad in ("", "a/b/c"):
        with pytest.raises(AddressError):
            Address.parse(bad)


def test_invalid_station_and_service():
    with pytest.raises(AddressError):
        Address("", "svc")
    with pytest.raises(AddressError):
        Address("a/b", "svc")
    with pytest.raises(AddressError):
        Address("a", "")
    with pytest.raises(AddressError):
        Address("a", "s/vc")


def test_hashable_and_ordered():
    a, b = Address("a", "x"), Address("b", "x")
    assert a < b
    assert len({a, b, Address("a", "x")}) == 2
