from repro.net.address import Address
from repro.net.inproc import InprocNetwork
from repro.runtime.real import AsyncioRuntime


def test_delivery_preserves_order():
    with AsyncioRuntime() as runtime:
        a = runtime.add_node("a")
        b = runtime.add_node("b")
        got = []
        b.bind("svc", lambda src, data: got.append(data))
        for i in range(5):
            a.send("cli", Address("b", "svc"), bytes([i]))
        runtime.run_for(0.05)
        assert got == [bytes([i]) for i in range(5)]


def test_latency_delays_delivery():
    with AsyncioRuntime(network_latency_s=0.03) as runtime:
        a = runtime.add_node("a")
        b = runtime.add_node("b")
        stamps = []
        b.bind("svc", lambda src, data: stamps.append(runtime.now))
        start = runtime.now
        a.send("cli", Address("b", "svc"), b"x")
        runtime.run_for(0.1)
        assert stamps and stamps[0] - start >= 0.025


def test_unknown_station_dropped():
    with AsyncioRuntime() as runtime:
        a = runtime.add_node("a")
        a.send("cli", Address("ghost", "svc"), b"x")
        runtime.run_for(0.02)  # no exception


def test_frames_counted():
    network = InprocNetwork()
    assert network.frames_transmitted == 0
