import pytest

from repro.errors import ConfigurationError
from repro.net.address import Address
from repro.net.wlan import WlanConfig, WlanMedium
from repro.sim.kernel import SimKernel


def make_wlan(**config) -> tuple[SimKernel, WlanMedium]:
    kernel = SimKernel()
    defaults = dict(jitter_s=0.0, propagation_delay_s=0.0)
    defaults.update(config)
    return kernel, WlanMedium(kernel, config=WlanConfig(**defaults))


def test_airtime_formula():
    config = WlanConfig(bitrate_bps=1e6, per_frame_overhead_s=1e-3)
    assert config.airtime(125) == pytest.approx(1e-3 + 1e-3)  # 125B = 1000 bits


def test_delivery_after_airtime():
    kernel, wlan = make_wlan(bitrate_bps=8e3, per_frame_overhead_s=0.0)
    a = wlan.attach("a")
    b = wlan.attach("b")
    got = []
    b.bind("s", lambda src, data: got.append(kernel.now))
    a.send("c", Address("b", "s"), b"x" * (100 - 64))  # wire 100B = 800 bits = 0.1s
    kernel.run()
    assert got == [pytest.approx(0.1)]


def test_channel_serializes_concurrent_transmissions():
    kernel, wlan = make_wlan(bitrate_bps=8e3, per_frame_overhead_s=0.0)
    a = wlan.attach("a")
    b = wlan.attach("b")
    c = wlan.attach("c")
    got = []
    c.bind("s", lambda src, data: got.append((str(src), kernel.now)))
    payload = b"x" * (100 - 64)
    a.send("c", Address("c", "s"), payload)
    b.send("c", Address("c", "s"), payload)
    kernel.run()
    # Second frame waits for the channel: 0.1 + 0.1.
    assert got == [("a/c", pytest.approx(0.1)), ("b/c", pytest.approx(0.2))]


def test_channel_backlog():
    kernel, wlan = make_wlan(bitrate_bps=8e3, per_frame_overhead_s=0.0)
    a = wlan.attach("a")
    wlan.attach("b")
    payload = b"x" * (100 - 64)
    a.send("c", Address("b", "s"), payload)
    a.send("c", Address("b", "s"), payload)
    # Frames hit the channel when the epilogue flush for t=0 runs.
    kernel.run(until=0.0)
    assert wlan.channel_backlog == pytest.approx(0.2)
    kernel.run()
    assert wlan.channel_backlog == 0.0


def test_loss_rate_drops_frames():
    kernel = SimKernel()
    wlan = WlanMedium(
        kernel,
        config=WlanConfig(loss_rate=1.0, jitter_s=0.0),
    )
    a = wlan.attach("a")
    b = wlan.attach("b")
    got = []
    b.bind("s", lambda src, data: got.append(data))
    a.send("c", Address("b", "s"), b"x")
    kernel.run()
    assert got == []
    assert wlan.frames_lost == 1
    # Airtime is still burnt by lost frames.
    assert wlan.total_airtime > 0


def test_detached_station_frames_vanish():
    kernel, wlan = make_wlan()
    a = wlan.attach("a")
    wlan.attach("b")
    a.send("c", Address("b", "s"), b"x")
    wlan.detach("b")
    kernel.run()  # no exception


def test_utilization_accounts_airtime():
    kernel, wlan = make_wlan(bitrate_bps=8e3, per_frame_overhead_s=0.0)
    a = wlan.attach("a")
    b = wlan.attach("b")
    b.bind("s", lambda src, data: None)
    a.send("c", Address("b", "s"), b"x" * (100 - 64))
    kernel.run(until=1.0)
    assert wlan.utilization() == pytest.approx(0.1)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        WlanConfig(bitrate_bps=0).validate()
    with pytest.raises(ConfigurationError):
        WlanConfig(loss_rate=1.5).validate()
    with pytest.raises(ConfigurationError):
        WlanConfig(per_frame_overhead_s=-1.0).validate()


def test_jitter_is_deterministic_per_seed():
    import random

    def run(seed):
        kernel = SimKernel()
        wlan = WlanMedium(
            kernel,
            config=WlanConfig(jitter_s=1e-3, propagation_delay_s=0.0),
            rng=random.Random(seed),
        )
        a = wlan.attach("a")
        b = wlan.attach("b")
        got = []
        b.bind("s", lambda src, data: got.append(kernel.now))
        a.send("c", Address("b", "s"), b"x")
        kernel.run()
        return got[0]

    assert run(1) == run(1)
    assert run(1) != run(2)


class TestInterference:
    def test_window_drops_frames_then_heals(self):
        import random as _random

        kernel = SimKernel()
        wlan = WlanMedium(
            kernel,
            config=WlanConfig(jitter_s=0.0, propagation_delay_s=0.0),
            rng=_random.Random(0),
        )
        wlan.schedule_interference(start=1.0, duration=1.0, loss_rate=1.0)
        a = wlan.attach("a")
        b = wlan.attach("b")
        got = []
        b.bind("s", lambda src, data: got.append(kernel.now))

        def send():
            a.send("c", Address("b", "s"), b"x")

        for t in (0.5, 1.5, 2.5):  # before, during, after the window
            kernel.schedule_at(t, send)
        kernel.run()
        assert len(got) == 2
        assert wlan.frames_lost == 1

    def test_worst_active_window_wins(self):
        kernel = SimKernel()
        wlan = WlanMedium(kernel, config=WlanConfig(jitter_s=0.0))
        wlan.schedule_interference(0.0, 10.0, 0.2)
        wlan.schedule_interference(5.0, 2.0, 0.9)
        assert wlan._loss_rate_at(1.0) == 0.2
        assert wlan._loss_rate_at(6.0) == 0.9
        assert wlan._loss_rate_at(12.0) == 0.0

    def test_invalid_window_rejected(self):
        kernel = SimKernel()
        wlan = WlanMedium(kernel)
        with pytest.raises(ConfigurationError):
            wlan.schedule_interference(0.0, 0.0, 0.5)
        with pytest.raises(ConfigurationError):
            wlan.schedule_interference(0.0, 1.0, 1.5)

    def test_qos1_flow_survives_interference(self):
        """At-least-once delivery rides out a lossy window end to end."""
        from repro.mqtt.broker import Broker
        from repro.mqtt.client import MqttClient
        from repro.runtime.sim import SimRuntime

        runtime = SimRuntime(seed=3)
        broker = Broker(runtime.add_node("hub"))
        pub = MqttClient(
            runtime.add_node("p"), broker.address, client_id="p",
            retry_interval_s=0.5,
        )
        sub = MqttClient(runtime.add_node("s"), broker.address, client_id="s")
        got = []
        pub.connect()
        sub.connect()
        sub.subscribe("t", lambda _t, payload, _pkt: got.append(payload), qos=1)
        runtime.run(until=1.0)
        runtime.wlan.schedule_interference(start=1.0, duration=2.0, loss_rate=1.0)
        pub.publish("t", "precious", qos=1)
        runtime.run(until=2.5)
        assert got == []  # still jammed
        runtime.run(until=10.0)
        assert "precious" in got  # retransmission delivered after the window
