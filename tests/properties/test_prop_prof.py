"""Property tests for the profiler's resource accounting.

The load-bearing invariant: a node's accounted CPU busy time inside any
window can never exceed ``servers * window`` — utilization is a share,
never more than 100%. Driven two ways: directly against the
:class:`BusyIntegrator` interval algebra, and end-to-end through a live
simulated node fed a random job mix.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prof import BusyIntegrator, enable_profiling
from repro.runtime.costs import CostModel, OpCost
from repro.runtime.sim import SimRuntime

# ----------------------------------------------------------------------
# BusyIntegrator interval algebra
# ----------------------------------------------------------------------

grants = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0),  # start offset increment
        st.floats(min_value=0.0, max_value=10.0),  # duration
    ),
    max_size=40,
)
windows = st.tuples(
    st.floats(min_value=0.0, max_value=100.0),
    st.floats(min_value=0.0, max_value=100.0),
)


@given(grants=grants, window=windows)
def test_window_overlap_is_bounded_and_monotone(grants, window):
    integrator = BusyIntegrator()
    start = 0.0
    for increment, duration in grants:
        start += increment  # nondecreasing starts, as the hook sites guarantee
        integrator.add(start, duration)
    a, b = sorted(window)
    busy = integrator.busy_between(a, b)
    assert 0.0 <= busy <= integrator.total + 1e-9
    # Widening the window can only add busy time.
    assert busy <= integrator.busy_between(a, b + 1.0) + 1e-9
    assert busy <= integrator.busy_between(max(0.0, a - 1.0), b) + 1e-9
    # The full timeline accounts for every grant exactly.
    end = start + max((d for _i, d in grants), default=0.0)
    assert integrator.busy_between(0.0, end + 1.0) <= integrator.total + 1e-9


@given(
    durations=st.lists(
        st.floats(min_value=0.001, max_value=0.5), min_size=1, max_size=30
    ),
    gap=st.floats(min_value=0.0, max_value=0.2),
)
def test_serial_grants_never_exceed_elapsed(durations, gap):
    """Back-to-back single-server grants: busy share of any window <= 1."""
    integrator = BusyIntegrator()
    t = 0.0
    for duration in durations:
        integrator.add(t, duration)
        t += duration + gap
    assert integrator.busy_between(0.0, t) <= t + 1e-9
    mid = t / 2.0
    assert integrator.busy_between(0.0, mid) <= mid + 1e-9
    assert integrator.busy_between(mid, t) <= (t - mid) + 1e-9


# ----------------------------------------------------------------------
# Live simulation: utilization <= 100% whatever the job mix
# ----------------------------------------------------------------------

job_mixes = st.lists(
    st.tuples(
        st.sampled_from(["alpha", "beta", "gamma"]),
        st.floats(min_value=0.0, max_value=0.3),  # submit-time offset
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=30, deadline=None)
@given(jobs=job_mixes, cores=st.integers(min_value=1, max_value=3), seed=st.integers(min_value=0, max_value=999))
def test_node_busy_time_never_exceeds_elapsed(jobs, cores, seed):
    model = CostModel()
    model.define("alpha", OpCost(base_s=0.05))
    model.define("beta", OpCost(base_s=0.011, warmup_extra_s=0.02, warmup_ops=2))
    model.define("gamma", OpCost(base_s=0.002))
    runtime = SimRuntime(seed=seed, cost_model=model)
    profiler = enable_profiling(runtime, interval_s=0.1)
    node = runtime.add_node("n", cpu_cores=cores)
    for op, offset in jobs:
        runtime.kernel.schedule(
            offset, lambda _op=op: node.execute(_op, lambda: None)
        )
    runtime.run(until=2.0)
    elapsed = runtime.now
    assert elapsed > 0.0
    busy = profiler.cpu_busy_between("n", 0.0, elapsed)
    assert busy <= cores * elapsed + 1e-9
    assert 0.0 <= profiler.cpu_utilization("n") <= float(cores) + 1e-9
    # Per-op charges only cover completed work, so the busy tree is also
    # bounded by what the timeline granted.
    charged = sum(
        seconds for (n, domain, _op), (seconds, _c) in profiler.busy.items()
        if n == "n" and domain == "cpu"
    )
    assert charged <= profiler._cpu_timeline["n"].total + 1e-9
