"""Property tests: event-handle pooling is invisible to schedule semantics.

The free list in :class:`repro.sim.events.EventQueue` recycles fired
handles, which is only sound if a recycled handle can never be reached
through a stale reference: cancelling a handle you kept from a *previous*
event must never cancel (or otherwise affect) the event the pooled object
was reincarnated as. The refcount guard in ``release`` is what guarantees
that — these tests drive random schedule/cancel/fire interleavings
against a pure-Python model and require exact agreement.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventQueue


def _fire_one(queue: EventQueue, fired: list[int]) -> bool:
    """Pop-execute-release exactly like the kernel run loop.

    The handle lives only in this frame, so an event whose handle the
    test did *not* keep is eligible for recycling here.
    """
    handle = queue.pop()
    if handle is None:
        return False
    handle.callback(*handle.args)
    queue.release(handle)
    return True


# One operation of the interleaving:
#   ("schedule", time_bump, keep_ref) — push a new event
#   ("cancel", index)                 — cancel through a kept handle
#                                       (possibly long after it fired)
#   ("fire",)                         — kernel step: pop + execute + release
_ops = st.one_of(
    st.tuples(
        st.just("schedule"),
        st.integers(min_value=0, max_value=5),
        st.booleans(),
    ),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
    st.tuples(st.just("fire")),
)


@settings(max_examples=200, deadline=None)
@given(ops=st.lists(_ops, max_size=80))
def test_interleavings_match_unpooled_model(ops):
    """Random schedule/cancel/fire interleavings: the pooled queue fires
    exactly the events a pure model (no pooling, no reuse) says it should,
    in exactly the model's order."""
    queue = EventQueue(pool=True)
    fired: list[int] = []
    # Model rows: [event_id, time, seq, cancelled, fired, kept_handle|None]
    model: list[list] = []
    kept: list[int] = []  # indices of model rows whose handle we retained
    now = 0.0
    next_id = 0

    for op in ops:
        if op[0] == "schedule":
            _, bump, keep = op
            time = now + bump
            event_id = next_id
            next_id += 1
            handle = queue.push(time, fired.append, (event_id,))
            model.append([event_id, time, handle.seq, False, False, None])
            if keep:
                model[-1][5] = handle
                kept.append(len(model) - 1)
            del handle
        elif op[0] == "cancel":
            if not kept:
                continue
            row = model[kept[op[1] % len(kept)]]
            # Cancel through the kept handle — even if the event already
            # fired and its object may sit in (or have cycled through)
            # the pool. The model only honours pre-fire cancellation;
            # the real queue must agree, i.e. a stale cancel must never
            # leak into a recycled event.
            row[5].cancel()
            if not row[4]:
                row[3] = True
        else:  # fire
            live = [r for r in model if not r[3] and not r[4]]
            if not live:
                assert not _fire_one(queue, fired)
                continue
            expected = min(live, key=lambda r: (r[1], r[2]))
            assert _fire_one(queue, fired)
            assert fired[-1] == expected[0]
            expected[4] = True
            now = expected[1]

    # Drain: every remaining live event fires in (time, seq) order.
    remaining = sorted(
        (r for r in model if not r[3] and not r[4]),
        key=lambda r: (r[1], r[2]),
    )
    before = len(fired)
    while _fire_one(queue, fired):
        pass
    assert fired[before:] == [r[0] for r in remaining]
    # Nothing fired twice, nothing cancelled-before-fire fired at all.
    assert len(fired) == len(set(fired))
    cancelled_ids = {r[0] for r in model if r[3]}
    assert not cancelled_ids.intersection(fired)


def test_fired_unheld_handle_is_recycled():
    """The pool actually works: a fired handle nobody holds is parked and
    handed back out, fields fully reset."""
    queue = EventQueue(pool=True)
    fired: list[int] = []
    first = queue.push(1.0, fired.append, (1,))
    first_identity = id(first)
    del first
    assert _fire_one(queue, fired)
    assert queue.pooled == 1
    second = queue.push(2.0, fired.append, (2,))
    assert id(second) == first_identity
    assert queue.pooled == 0
    assert second.time == 2.0
    assert not second.cancelled
    assert _fire_one(queue, fired)
    assert fired == [1, 2]


def test_held_handle_is_never_recycled():
    """A handle the caller retains must not enter the pool — recycling it
    would let a stale ``cancel`` kill an unrelated event."""
    queue = EventQueue(pool=True)
    fired: list[int] = []
    held = queue.push(1.0, fired.append, (1,))
    assert _fire_one(queue, fired)
    assert queue.pooled == 0  # refcount guard saw our reference
    replacement = queue.push(2.0, fired.append, (2,))
    assert replacement is not held
    held.cancel()  # stale cancel: must be a no-op for the queue
    assert _fire_one(queue, fired)
    assert fired == [1, 2]


def test_cancellation_survives_reuse():
    """Cancelling a *recycled* handle cancels the new event only."""
    queue = EventQueue(pool=True)
    fired: list[int] = []
    first = queue.push(1.0, fired.append, (1,))
    del first
    assert _fire_one(queue, fired)
    assert queue.pooled == 1
    reborn = queue.push(2.0, fired.append, (2,))
    reborn.cancel()
    assert not _fire_one(queue, fired)
    assert fired == [1]


def test_popped_cancelled_handles_return_to_pool():
    """Lazily discarded cancelled events are recycled too."""
    queue = EventQueue(pool=True)
    fired: list[int] = []
    doomed = queue.push(1.0, fired.append, (1,))
    doomed.cancel()
    del doomed
    assert queue.peek_time() is None  # discards the cancelled head
    assert queue.pooled == 1


def test_pool_disabled_never_parks():
    queue = EventQueue(pool=False)
    fired: list[int] = []
    handle = queue.push(1.0, fired.append, (1,))
    del handle
    assert _fire_one(queue, fired)
    assert queue.pooled == 0
