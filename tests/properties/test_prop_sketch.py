"""Property tests for the SLO quantile sketches and histogram merge.

Hypothesis pins the two guarantees the online SLO engine leans on:

* **rank-error bound** — for any observation list, every reported
  quantile is within relative error ``alpha`` of the true sample at
  that rank (DDSketch's defining property);
* **mergeability** — splitting a sample set arbitrarily, sketching the
  halves and merging gives *exactly* the sketch of the whole (bucket
  counts are integers, so below the collapse cap nothing is lost), and
  serialization round-trips exactly. The same exactness holds for
  :meth:`HistogramMetric.merge` on its Welford statistics.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import HistogramMetric
from repro.obs.sketch import LatencySketch

latencies = st.lists(
    st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=200,
)


@given(values=latencies, q=st.integers(min_value=0, max_value=100))
@settings(max_examples=150)
def test_quantile_rank_error_bound(values, q):
    alpha = 0.01
    sketch = LatencySketch(alpha=alpha)
    for v in values:
        sketch.add(v)
    ordered = sorted(values)
    rank = int(q * (len(ordered) - 1) / 100)
    true = ordered[rank]
    estimate = sketch.quantile(q)
    if true <= 1e-12:
        assert estimate == 0.0
    else:
        assert abs(estimate - true) <= alpha * true + 1e-9


@given(values=latencies, split=st.integers(min_value=0, max_value=200))
@settings(max_examples=150)
def test_merge_equals_sketch_of_concatenation(values, split):
    split = min(split, len(values))
    left, right, whole = LatencySketch(), LatencySketch(), LatencySketch()
    for v in values[:split]:
        left.add(v)
    for v in values[split:]:
        right.add(v)
    for v in values:
        whole.add(v)
    left.merge(right)
    assert left.buckets == whole.buckets
    assert left.zero_count == whole.zero_count
    assert left.count == whole.count
    assert left.minimum == whole.minimum
    assert left.maximum == whole.maximum
    assert math.isclose(left.total, whole.total, rel_tol=1e-9, abs_tol=1e-9)


@given(values=latencies)
@settings(max_examples=100)
def test_serialization_round_trip_property(values):
    sketch = LatencySketch(alpha=0.02)
    for v in values:
        sketch.add(v)
    clone = LatencySketch.from_dict(sketch.to_dict())
    assert clone.buckets == sketch.buckets
    assert clone.count == sketch.count
    assert clone.zero_count == sketch.zero_count
    for q in (0, 50, 95, 99, 100):
        assert clone.quantile(q) == sketch.quantile(q)


samples = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=0,
    max_size=120,
)


@given(a=samples, b=samples)
@settings(max_examples=150)
def test_histogram_merge_welford_exactness(a, b):
    left, right, whole = (
        HistogramMetric("h"),
        HistogramMetric("h"),
        HistogramMetric("h"),
    )
    for v in a:
        left.observe(v)
        whole.observe(v)
    for v in b:
        right.observe(v)
        whole.observe(v)
    left.merge(right)
    assert left.stats.count == whole.stats.count
    if whole.stats.count:
        assert math.isclose(
            left.stats.mean, whole.stats.mean, rel_tol=1e-9, abs_tol=1e-9
        )
        assert left.stats.minimum == whole.stats.minimum
        assert left.stats.maximum == whole.stats.maximum
    # Below the buffer cap both strides stay 1: samples concatenate exactly.
    assert left._samples == a + b
    assert left._seen == whole._seen


@given(a=samples)
@settings(max_examples=100)
def test_histogram_serialization_round_trip(a):
    histogram = HistogramMetric("lat")
    for v in a:
        histogram.observe(v)
    clone = HistogramMetric.from_dict(histogram.to_dict())
    assert clone.key == histogram.key
    assert clone.stats.count == histogram.stats.count
    assert clone._samples == histogram._samples
    assert clone._stride == histogram._stride
    assert clone._seen == histogram._seen
    if a:
        assert clone.stats.mean == histogram.stats.mean
        assert clone.stats.minimum == histogram.stats.minimum
        assert clone.stats.maximum == histogram.stats.maximum
        assert clone.quantile(95) == histogram.quantile(95)
