"""Property-based tests for core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.ringbuffer import RingBuffer
from repro.util.stats import LatencyRecorder, RunningStats


@given(
    capacity=st.integers(min_value=1, max_value=64),
    items=st.lists(st.integers(), max_size=200),
)
def test_ringbuffer_equals_list_suffix(capacity, items):
    """A ring buffer always holds exactly the last `capacity` items."""
    buf = RingBuffer(capacity)
    for item in items:
        buf.append(item)
    assert buf.to_list() == items[-capacity:]
    assert len(buf) == min(capacity, len(items))


@given(
    capacity=st.integers(min_value=1, max_value=16),
    items=st.lists(st.integers(), min_size=1, max_size=100),
)
def test_ringbuffer_eviction_returns_displaced(capacity, items):
    buf = RingBuffer(capacity)
    evicted = [e for e in (buf.append(i) for i in items) if e is not None]
    expected_evictions = max(0, len(items) - capacity)
    assert len(evicted) == expected_evictions
    assert evicted == items[:expected_evictions]


finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


@given(values=st.lists(finite_floats, min_size=1, max_size=200))
def test_running_stats_matches_batch(values):
    s = RunningStats()
    for v in values:
        s.add(v)
    n = len(values)
    mean = sum(values) / n
    assert s.count == n
    assert abs(s.mean - mean) <= 1e-6 * max(1.0, abs(mean))
    assert s.minimum == min(values)
    assert s.maximum == max(values)
    variance = sum((v - mean) ** 2 for v in values) / n
    assert abs(s.variance - variance) <= 1e-4 * max(1.0, variance)


@given(
    values=st.lists(finite_floats, min_size=1, max_size=100),
    split=st.integers(min_value=0, max_value=100),
)
def test_running_stats_merge_any_split(values, split):
    split = min(split, len(values))
    whole = RunningStats()
    for v in values:
        whole.add(v)
    left, right = RunningStats(), RunningStats()
    for v in values[:split]:
        left.add(v)
    for v in values[split:]:
        right.add(v)
    left.merge(right)
    assert left.count == whole.count
    assert abs(left.mean - whole.mean) <= 1e-6 * max(1.0, abs(whole.mean))
    assert left.minimum == whole.minimum
    assert left.maximum == whole.maximum


@given(values=st.lists(finite_floats, min_size=1, max_size=100))
def test_latency_percentiles_are_monotone_and_bounded(values):
    rec = LatencyRecorder()
    rec.extend(values)
    p25, p50, p95 = rec.percentile(25), rec.percentile(50), rec.percentile(95)
    assert rec.minimum <= p25 <= p50 <= p95 <= rec.maximum
