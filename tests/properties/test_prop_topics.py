"""Property-based tests: the topic trie agrees with the matching predicate."""

from hypothesis import given
from hypothesis import strategies as st

from repro.mqtt.topics import TopicTree, topic_matches

level = st.text(alphabet="abcxyz", min_size=0, max_size=3)
topic_strategy = st.lists(level, min_size=1, max_size=5).map("/".join).filter(bool)


def filter_strategy():
    wild_level = st.one_of(level.filter(bool), st.just("+"))
    base = st.lists(wild_level, min_size=1, max_size=5).map("/".join)
    with_hash = st.tuples(
        st.lists(wild_level, min_size=0, max_size=4).map("/".join),
        st.just("#"),
    ).map(lambda pair: "/".join(p for p in pair if p))
    return st.one_of(base, with_hash).filter(bool)


@given(filters=st.lists(filter_strategy(), max_size=10), topic=topic_strategy)
def test_trie_matches_iff_predicate(filters, topic):
    tree = TopicTree()
    for i, f in enumerate(filters):
        tree.insert(f, (i, f))
    expected = sorted(
        (i, f) for i, f in enumerate(filters) if topic_matches(f, topic)
    )
    assert sorted(tree.match(topic)) == expected


@given(filters=st.lists(filter_strategy(), min_size=1, max_size=10))
def test_insert_remove_leaves_tree_empty(filters):
    tree = TopicTree()
    for i, f in enumerate(filters):
        tree.insert(f, i)
    for i, f in enumerate(filters):
        assert tree.remove(f, i)
    assert len(tree) == 0
    assert list(tree.filters()) == []


@given(
    filters=st.lists(filter_strategy(), min_size=2, max_size=8),
    topic=topic_strategy,
)
def test_removal_only_affects_removed_entry(filters, topic):
    tree = TopicTree()
    for i, f in enumerate(filters):
        tree.insert(f, i)
    tree.remove(filters[0], 0)
    survivors = sorted(
        i for i, f in enumerate(filters) if i != 0 and topic_matches(f, topic)
    )
    assert sorted(tree.match(topic)) == survivors


@given(topic=topic_strategy)
def test_exact_filter_always_matches_itself(topic):
    assert topic_matches(topic, topic)


@given(topic=topic_strategy)
def test_hash_matches_everything(topic):
    assert topic_matches("#", topic)
