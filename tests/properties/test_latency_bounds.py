"""Property tests: latency-bound monotonicity and instability exactness.

The issue's contract for the analyzer, checked over generated inputs:

* the end-to-end bound is monotone non-decreasing in input rate, in
  declared burst, and in per-op cost (chain recipes without align
  windows — an align window's fill wait is ``1/min_rate``, which
  legitimately *shrinks* as rates rise);
* RCP241 fires exactly when some shared resource's utilization
  reaches 1.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recipe import Recipe, TaskSpec
from repro.lint.latency import LatencyContext, analyze_latency, check_deadlines
from repro.runtime.costs import CostModel, OpCost


def build_chain(rate_hz: float, burst: float, stages: int, qos: int = 0) -> Recipe:
    """sensor -> map^stages -> actuator; no windows, so no align holds."""
    tasks = [
        TaskSpec(
            "sense",
            "sensor",
            outputs=["s0"],
            params={"device": "d", "rate_hz": rate_hz, "burst": burst, "qos": qos},
        )
    ]
    for i in range(stages):
        tasks.append(
            TaskSpec(
                f"stage{i}",
                "map",
                inputs=[f"s{i}"],
                outputs=[f"s{i + 1}"],
                params={"qos": qos},
            )
        )
    tasks.append(
        TaskSpec(
            "act", "actuator", inputs=[f"s{stages}"], params={"device": "d"}
        )
    )
    return Recipe("prop-chain", tasks)


def make_model(op_cost_s: float) -> CostModel:
    ops = {
        op: OpCost(base_s=op_cost_s)
        for op in (
            "flow.process",
            "sensor.sample",
            "actuator.apply",
            "mqtt.send",
            "mqtt.recv",
            "mqtt.route",
            "mqtt.forward",
        )
    }
    return CostModel(ops=ops)


def sink_bound(recipe: Recipe, context: LatencyContext) -> float:
    return analyze_latency(recipe, context).flows["act"].bound_s


rates = st.floats(min_value=0.5, max_value=200.0)
bursts = st.floats(min_value=1.0, max_value=16.0)
costs = st.floats(min_value=1e-5, max_value=5e-3)
factors = st.floats(min_value=1.0, max_value=8.0)
stage_counts = st.integers(min_value=1, max_value=4)


@settings(max_examples=60, deadline=None)
@given(rate=rates, burst=bursts, cost=costs, factor=factors, stages=stage_counts)
def test_bound_monotone_in_rate(rate, burst, cost, factor, stages):
    context = LatencyContext(cost_model=make_model(cost))
    low = sink_bound(build_chain(rate, burst, stages), context)
    high = sink_bound(build_chain(rate * factor, burst, stages), context)
    assert high >= low or math.isinf(high)


@settings(max_examples=60, deadline=None)
@given(rate=rates, burst=bursts, cost=costs, factor=factors, stages=stage_counts)
def test_bound_monotone_in_burst(rate, burst, cost, factor, stages):
    context = LatencyContext(cost_model=make_model(cost))
    low = sink_bound(build_chain(rate, burst, stages), context)
    high = sink_bound(build_chain(rate, burst * factor, stages), context)
    assert high >= low


@settings(max_examples=60, deadline=None)
@given(rate=rates, burst=bursts, cost=costs, factor=factors, stages=stage_counts)
def test_bound_monotone_in_op_cost(rate, burst, cost, factor, stages):
    recipe = build_chain(rate, burst, stages)
    low = sink_bound(recipe, LatencyContext(cost_model=make_model(cost)))
    high = sink_bound(
        recipe, LatencyContext(cost_model=make_model(cost).scaled(factor))
    )
    assert high >= low


@settings(max_examples=80, deadline=None)
@given(
    rate=st.floats(min_value=1.0, max_value=2000.0),
    burst=bursts,
    cost=costs,
    stages=stage_counts,
)
def test_rcp241_fires_iff_some_hop_saturates(rate, burst, cost, stages):
    recipe = build_chain(rate, burst, stages)
    context = LatencyContext(cost_model=make_model(cost))
    analysis = analyze_latency(recipe, context)
    saturated = any(
        bound.utilization >= 1.0 for bound in analysis.resources.values()
    )
    rcp241 = {
        diag.rule for diag in check_deadlines(recipe, context, analysis)
    } & {"RCP241"}
    assert bool(rcp241) == saturated
    # And an unstable analysis always poisons the sink's bound.
    if saturated:
        assert math.isinf(analysis.flows["act"].bound_s)
