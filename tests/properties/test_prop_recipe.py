"""Property tests: recipe graph algorithms and assignment invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import (
    LoadAwareStrategy,
    ModuleInfo,
    RoundRobinStrategy,
    TaskAssignment,
    estimate_cost,
)
from repro.core.recipe import Recipe, TaskSpec
from repro.core.splitter import RecipeSplit, shard_of


@st.composite
def dag_recipes(draw):
    """Random layered DAG: tasks in layer k consume streams of layers < k."""
    layer_sizes = draw(st.lists(st.integers(1, 3), min_size=1, max_size=4))
    tasks = []
    produced: list[str] = []
    counter = 0
    for layer, size in enumerate(layer_sizes):
        new_streams = []
        for _ in range(size):
            tid = f"t{counter}"
            counter += 1
            if layer == 0 or not produced:
                inputs = []
            else:
                inputs = draw(
                    st.lists(st.sampled_from(produced), max_size=3, unique=True)
                )
            outputs = [f"s{counter}"]
            new_streams.extend(outputs)
            parallelism = draw(st.integers(1, 3))
            tasks.append(
                TaskSpec(
                    tid,
                    "map",
                    inputs=inputs,
                    outputs=outputs,
                    params={"fn": "identity"},
                    parallelism=parallelism,
                )
            )
        produced.extend(new_streams)
    return Recipe("generated", tasks)


@settings(max_examples=50)
@given(recipe=dag_recipes())
def test_topological_order_respects_dependencies(recipe):
    order = recipe.topological_order
    position = {tid: i for i, tid in enumerate(order)}
    for tid in recipe.tasks:
        for upstream in recipe.upstream_of(tid):
            assert position[upstream] < position[tid]


@settings(max_examples=50)
@given(recipe=dag_recipes())
def test_stages_partition_tasks_and_are_independent(recipe):
    stages = recipe.stages()
    flat = [tid for stage in stages for tid in stage]
    assert sorted(flat) == sorted(recipe.tasks)
    for stage in stages:
        stage_set = set(stage)
        for tid in stage:
            assert recipe.upstream_of(tid).isdisjoint(stage_set)


@settings(max_examples=50)
@given(recipe=dag_recipes())
def test_split_covers_all_tasks_with_exact_shards(recipe):
    subtasks = RecipeSplit().split(recipe)
    by_task: dict[str, int] = {}
    for subtask in subtasks:
        by_task[subtask.task_id] = by_task.get(subtask.task_id, 0) + 1
        assert 0 <= subtask.shard_index < subtask.shard_count
    for tid, task in recipe.tasks.items():
        assert by_task[tid] == task.parallelism


@settings(max_examples=50)
@given(recipe=dag_recipes(), module_count=st.integers(1, 5), strategy_kind=st.sampled_from(["rr", "load"]))
def test_assignment_places_every_subtask_on_a_real_module(
    recipe, module_count, strategy_kind
):
    subtasks = RecipeSplit().split(recipe)
    modules = [ModuleInfo(f"m{i}") for i in range(module_count)]
    strategy = RoundRobinStrategy() if strategy_kind == "rr" else LoadAwareStrategy()
    assignment = TaskAssignment(strategy).assign(subtasks, modules)
    names = {m.name for m in modules}
    assert set(assignment.placements) == {s.subtask_id for s in subtasks}
    assert set(assignment.placements.values()) <= names
    # Projected load equals the sum of estimated costs.
    total = sum(estimate_cost(s) for s in subtasks)
    assert abs(sum(assignment.projected_load.values()) - total) < 1e-9


@given(
    sample_ids=st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=50),
    shard_count=st.integers(1, 8),
)
def test_shard_of_total_and_stable(sample_ids, shard_count):
    for sid in sample_ids:
        shard = shard_of(sid, shard_count)
        assert 0 <= shard < shard_count
        assert shard == shard_of(sid, shard_count)


@settings(max_examples=30)
@given(recipe=dag_recipes())
def test_recipe_json_round_trip(recipe):
    clone = Recipe.from_json(recipe.to_json())
    assert set(clone.tasks) == set(recipe.tasks)
    for tid in recipe.tasks:
        assert clone.tasks[tid].inputs == recipe.tasks[tid].inputs
        assert clone.tasks[tid].parallelism == recipe.tasks[tid].parallelism
    assert clone.stages() == recipe.stages()
