"""Property tests for the observability layer.

Hypothesis drives two kinds of inputs:

* random small topologies + fault plans run through a real simulated
  cluster with tracing on — every emitted span set must be structurally
  sound (reachable parents, no orphans or cycles, hops monotone along
  every parent chain) and each leaf's end-to-end latency must telescope
  exactly into per-stage own-durations plus queueing gaps;
* random trace field values (nested dicts, lists, tuples, unicode,
  floats) pushed through ``Tracer.to_jsonl``/``from_jsonl`` — the
  round trip must be lossless, including tuple-ness.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos.injector import Injector
from repro.chaos.plan import FaultPlan, NodeRestart, Partition, Heal, SensorFlap
from repro.core.middleware import IFoTCluster
from repro.core.recipe import Recipe, TaskSpec
from repro.obs import (
    check_span_integrity,
    decompose_path,
    enable_observability,
    span_index,
    spans_from_tracer,
)
from repro.runtime.sim import SimRuntime
from repro.sensors.devices import FixedPayloadModel
from repro.sim.trace import Tracer

# ----------------------------------------------------------------------
# Live-simulation strategies: topology x fault plan
# ----------------------------------------------------------------------

topologies = st.fixed_dictionaries(
    {
        "sensors": st.integers(min_value=1, max_value=2),
        "computes": st.integers(min_value=1, max_value=2),
        "rate_hz": st.sampled_from([1.0, 2.0]),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)

fault_kinds = st.sampled_from(["none", "partition", "restart", "flap"])


def _build_plan(kind: str, sensors: int) -> FaultPlan | None:
    if kind == "none":
        return None
    if kind == "partition":
        return FaultPlan(
            "prop-partition",
            (
                Partition(at=4.0, group_a=("m-s0",), group_b=("hub",)),
                Heal(at=7.0, group_a=("m-s0",), group_b=("hub",)),
            ),
        )
    if kind == "restart":
        return FaultPlan("prop-restart", (NodeRestart(at=4.0, node="m-c0"),))
    return FaultPlan(
        "prop-flap",
        (SensorFlap(at=4.0, module="m-s0", device="sample", down_s=3.0),),
    )


def _run_observed(topology: dict, fault: str) -> list:
    runtime = SimRuntime(seed=topology["seed"])
    cluster = IFoTCluster(
        runtime,
        broker_node_name="hub",
        heartbeat_s=2.0,
        auto_failover=True,
        client_keepalive_s=2.0,
        auto_reconnect=True,
    )
    enable_observability(runtime)
    for i in range(topology["sensors"]):
        module = cluster.add_module(f"m-s{i}")
        module.attach_sensor("sample", FixedPayloadModel(values=2))
    for i in range(topology["computes"]):
        cluster.add_module(f"m-c{i}", extra_capabilities={"compute"})
    cluster.settle(2.0)

    streams = [f"raw-{i}" for i in range(topology["sensors"])]
    tasks = [
        TaskSpec(
            f"sense-{i}",
            "sensor",
            outputs=[f"raw-{i}"],
            params={"device": "sample", "rate_hz": topology["rate_hz"], "qos": 1},
            pin_to=f"m-s{i}",
            capabilities=["sensor:sample"],
        )
        for i in range(topology["sensors"])
    ]
    tasks.append(
        TaskSpec(
            "dedup",
            "dedup",
            inputs=streams,
            outputs=["clean"],
            params={"qos": 1},
            capabilities=["compute"],
        )
    )
    cluster.submit(Recipe("prop-app", tasks))
    cluster.settle(2.0)
    plan = _build_plan(fault, topology["sensors"])
    if plan is not None:
        Injector(runtime, cluster=cluster).schedule(plan.validate())
    runtime.run(until=12.0)
    return spans_from_tracer(runtime.tracer)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(topology=topologies, fault=fault_kinds)
def test_observed_runs_yield_sound_span_trees(topology, fault):
    spans = _run_observed(topology, fault)
    assert spans, "an observed run must emit spans"
    assert check_span_integrity(spans) == []
    # Hop counts strictly increase along every parent chain.
    index = span_index(spans)
    for span in spans:
        cursor = span
        while cursor.parent_id:
            parent = index[cursor.parent_id]
            assert parent.hop < cursor.hop
            cursor = parent


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(topology=topologies, fault=fault_kinds)
def test_end_to_end_latency_telescopes(topology, fault):
    """leaf e2e = sum(stage own-durations) + sum(queueing gaps), exactly."""
    spans = _run_observed(topology, fault)
    index = span_index(spans)
    children = {s.parent_id for s in spans if s.parent_id}
    leaves = [s for s in spans if s.span_id not in children and s.parent_id]
    assert leaves
    for leaf in leaves:
        stages = decompose_path(leaf, index)
        if stages is None:
            continue
        root = index[_root_id(leaf, index)]
        total = sum(gap + dur for _stage, gap, dur in stages)
        assert total == pytest.approx(leaf.end - root.start, abs=1e-9)
        assert all(gap >= -1e-12 and dur >= 0.0 for _s, gap, dur in stages)


def _root_id(leaf, index):
    cursor = leaf
    while cursor.parent_id:
        cursor = index[cursor.parent_id]
    return cursor.span_id


# ----------------------------------------------------------------------
# Tracer JSONL round trip (nested dicts / lists / tuples must survive)
# ----------------------------------------------------------------------

field_keys = st.text(alphabet="abcdefgh_", min_size=1, max_size=6)
finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    finite,
    st.text(max_size=12),
)
trace_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.tuples(children, children),
        st.dictionaries(field_keys, children, max_size=3),
    ),
    max_leaves=12,
)


@given(fields=st.dictionaries(field_keys, trace_values, max_size=4))
@settings(deadline=None)
def test_tracer_jsonl_round_trip_is_lossless(tmp_path_factory, fields):
    tracer = Tracer()
    tracer.emit(1.25, "node", "prop.event", **fields)
    path = tmp_path_factory.mktemp("rt") / "trace.jsonl"
    tracer.to_jsonl(path)
    loaded = Tracer.from_jsonl(path)
    assert len(loaded) == 1
    record = next(iter(loaded))
    assert record.time == 1.25
    assert record.source == "node"
    assert record.event == "prop.event"
    assert record.fields == fields
