"""Property tests for the schedule sanitizer.

Two invariants of perturbation replay:

* permuting equal-timestamp *commutative* events (independent cells,
  self-describing trace records) never changes the schedule-stable
  digest, for any seed and any payload;
* a known-racy pair (two writers folding non-commutatively into one
  cell) only ever produces one of its two possible serializations — and
  the happens-before pass flags the cell for every one of them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.state import tracked_state
from repro.san.recorder import SimSan
from repro.san.replay import schedule_stable_digest
from repro.sim.kernel import SimKernel
from repro.sim.trace import Tracer


class _ToyRuntime:
    def __init__(self) -> None:
        self.kernel = SimKernel()
        self.san = None


def _commutative_trace(values, perturb_seed):
    """Each value gets its own event, cell, and trace source at t=1."""
    runtime = _ToyRuntime()
    if perturb_seed is not None:
        runtime.kernel.perturb_ties(perturb_seed)
    tracer = Tracer()
    cells = [
        tracked_state(runtime, "toy", f"slot{i}", 0.0)
        for i in range(len(values))
    ]

    def bump(i, value):
        cells[i].value = cells[i].value + value
        tracer.emit(runtime.kernel.now, f"src{i}", "step", value=cells[i].peek())

    for i, value in enumerate(values):
        runtime.kernel.schedule(1.0, bump, i, value)
    runtime.kernel.run()
    return tracer


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=2,
        max_size=6,
    ),
    seed=st.integers(min_value=1, max_value=10_000),
)
def test_commutative_equal_timestamp_events_digest_is_seed_invariant(
    values, seed
):
    base = schedule_stable_digest(_commutative_trace(values, None))
    perturbed = schedule_stable_digest(_commutative_trace(values, seed))
    assert base == perturbed


def _racy_trace(perturb_seed, flipped=False, san=None):
    """Two non-commutative writers on one cell at t=1."""
    runtime = _ToyRuntime()
    if san is not None:
        san.install(runtime)
    if perturb_seed is not None:
        runtime.kernel.perturb_ties(perturb_seed)
    tracer = Tracer()
    cell = tracked_state(runtime, "toy", "accumulator", 1.0)

    def double():
        cell.value = cell.value * 2.0
        tracer.emit(runtime.kernel.now, "toy", "step", op="double", value=cell.peek())

    def add_three():
        cell.value = cell.value + 3.0
        tracer.emit(runtime.kernel.now, "toy", "step", op="add", value=cell.peek())

    order = (add_three, double) if flipped else (double, add_three)
    for callback in order:
        runtime.kernel.schedule(1.0, callback)
    runtime.kernel.run()
    return tracer


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_racy_pair_serializes_one_of_two_ways_and_is_always_flagged(seed):
    digest_ab = schedule_stable_digest(_racy_trace(None))
    digest_ba = schedule_stable_digest(_racy_trace(None, flipped=True))
    assert digest_ab != digest_ba  # the race is observable by construction

    san = SimSan()
    perturbed = schedule_stable_digest(_racy_trace(seed, san=san))
    # Perturbation picks an order; it never invents a third behaviour.
    assert perturbed in (digest_ab, digest_ba)
    # And the HB pass flags the racing cell under every tie-breaking.
    findings = san.analyze()
    assert any(
        f.rule == "SAN001" and f.cell == "toy:accumulator" for f in findings
    )
