"""Property tests: payloads, datums, flow records survive the wire."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.flow import FlowRecord
from repro.ml.features import Datum
from repro.util.serialization import decode_payload, encode_payload

keys = st.text(alphabet="abcdefgh_", min_size=1, max_size=6)
finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)

json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-(2**31), max_value=2**31), finite, st.text(max_size=20)
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(keys, children, max_size=4),
    ),
    max_leaves=20,
)


@given(value=json_values)
def test_payload_round_trip(value):
    assert decode_payload(encode_payload(value)) == value


@given(value=json_values)
def test_encoding_is_deterministic(value):
    assert encode_payload(value) == encode_payload(value)


datum_strategy = st.builds(
    Datum,
    string_values=st.dictionaries(keys, st.text(max_size=10), max_size=5),
    num_values=st.dictionaries(keys, finite, max_size=5),
)


@given(datum=datum_strategy)
def test_datum_round_trip(datum):
    assert Datum.from_payload(datum.to_payload()) == datum


@given(
    datum=datum_strategy,
    sample_id=st.text(min_size=1, max_size=12),
    sensed_at=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    path=st.lists(keys, max_size=4),
)
def test_flow_record_round_trip(datum, sample_id, sensed_at, path):
    record = FlowRecord(
        sample_id=sample_id,
        source="node",
        sensed_at=sensed_at,
        datum=datum,
        path=path,
    )
    clone = FlowRecord.from_payload(record.to_payload())
    assert clone.sample_id == record.sample_id
    assert clone.sensed_at == record.sensed_at
    assert clone.datum == record.datum
    assert clone.path == record.path


@given(records=st.lists(
    st.builds(
        FlowRecord,
        sample_id=st.text(alphabet="abc123", min_size=1, max_size=6),
        source=st.sampled_from(["s1", "s2", "s3"]),
        sensed_at=st.floats(min_value=0, max_value=100, allow_nan=False),
        datum=datum_strategy,
    ),
    min_size=1,
    max_size=6,
))
def test_merge_invariants(records):
    merged = FlowRecord.merge("w", records)
    assert merged.sensed_at == min(r.sensed_at for r in records)
    assert merged.sample_id in {r.sample_id for r in records}
    assert set(merged.merged_ids) == {r.sample_id for r in records}
    # Merged datum keys are the union of member keys.
    expected_keys = set()
    for r in records:
        expected_keys |= set(r.datum.num_values) | set(r.datum.string_values)
    got_keys = set(merged.datum.num_values) | set(merged.datum.string_values)
    assert got_keys == expected_keys
