"""Property tests on the ML substrate's invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.linear import make_learner
from repro.ml.mix import average_diffs
from repro.ml.storage import SparseVector

keys = st.text(alphabet="xyzw", min_size=1, max_size=3)
finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
vec = st.dictionaries(keys, finite, max_size=5)


@given(a=vec, b=vec)
def test_sparse_dot_commutes_with_dense(a, b):
    sparse = SparseVector(a)
    dense = sum(a.get(k, 0.0) * v for k, v in b.items())
    assert math.isclose(sparse.dot(b), dense, rel_tol=1e-9, abs_tol=1e-9)


@given(a=vec, b=vec, scale=finite)
def test_sparse_add_matches_dense(a, b, scale):
    sparse = SparseVector(a)
    sparse.add(b, scale=scale)
    for key in set(a) | set(b):
        expected = a.get(key, 0.0) + scale * b.get(key, 0.0)
        assert math.isclose(sparse[key], expected, rel_tol=1e-9, abs_tol=1e-9)


@given(a=vec)
def test_sparse_never_stores_zeros(a):
    sparse = SparseVector(a)
    sparse.add({k: -v for k, v in a.items()})
    assert all(value != 0.0 for _key, value in sparse)


@given(diffs=st.lists(
    st.dictionaries(st.sampled_from(["l1", "l2"]), vec, max_size=2),
    min_size=1,
    max_size=5,
))
def test_average_diffs_bounded_by_extremes(diffs):
    mixed = average_diffs(diffs)
    for label, features in mixed.items():
        for key, value in features.items():
            contributions = [d.get(label, {}).get(key, 0.0) for d in diffs]
            assert min(contributions) - 1e-9 <= value <= max(contributions) + 1e-9


@given(diff=st.dictionaries(st.sampled_from(["l1", "l2"]), vec, min_size=1, max_size=2))
def test_average_of_identical_diffs_is_identity(diff):
    mixed = average_diffs([diff, diff, diff])
    for label, features in diff.items():
        for key, value in features.items():
            if value != 0.0:
                assert math.isclose(mixed[label][key], value, rel_tol=1e-9)


@settings(max_examples=25)
@given(
    examples=st.lists(
        st.tuples(vec.filter(bool), st.sampled_from(["a", "b"])),
        min_size=1,
        max_size=40,
    ),
    algorithm=st.sampled_from(["perceptron", "pa1", "pa2", "arow", "cw"]),
)
def test_training_never_crashes_and_state_round_trips(examples, algorithm):
    learner = make_learner(algorithm)
    for features, label in examples:
        learner.train(features, label)
    state = learner.to_state()
    clone = make_learner(algorithm)
    clone.load_state(state)
    probe = {"x": 1.0, "y": -1.0}
    assert clone.classify(probe)[0] == learner.classify(probe)[0]


@settings(max_examples=25)
@given(
    examples=st.lists(
        st.tuples(vec.filter(bool), st.sampled_from(["a", "b"])),
        min_size=2,
        max_size=30,
    )
)
def test_mix_of_clones_is_fixed_point(examples):
    """Mixing N identical learners must not change any of them."""
    learners = [make_learner("pa1") for _ in range(3)]
    for learner in learners:
        for features, label in examples:
            learner.train(features, label)
    mixed = average_diffs([learner.collect_diff() for learner in learners])
    reference = {
        label: dict(v.to_dict()) for label, v in learners[0].weights.items()
    }
    learners[0].apply_mixed(mixed)
    for label, expected in reference.items():
        got = learners[0].weights[label].to_dict()
        for key, value in expected.items():
            assert math.isclose(got.get(key, 0.0), value, rel_tol=1e-9, abs_tol=1e-9)
