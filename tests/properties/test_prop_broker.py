"""Stateful property test: the broker against a reference model.

A hypothesis rule-based state machine drives a simulated broker with
connect / subscribe / unsubscribe / publish operations and checks, after
every publish, that each client's callback count advanced by exactly the
number of its local filters matching the topic (if at least one matches,
the broker must have delivered exactly one message; if none match, zero).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.mqtt.broker import Broker
from repro.mqtt.client import MqttClient
from repro.mqtt.topics import topic_matches
from repro.runtime.sim import SimRuntime

CLIENT_NAMES = ["c0", "c1", "c2"]
LEVELS = ["a", "b", "c"]

topics = st.lists(st.sampled_from(LEVELS), min_size=1, max_size=3).map("/".join)
filters = st.lists(
    st.sampled_from(LEVELS + ["+"]), min_size=1, max_size=3
).map("/".join) | topics.map(lambda t: t + "/#")


class BrokerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.runtime = SimRuntime(seed=99)
        self.runtime.tracer.enabled = False
        self.broker = Broker(self.runtime.add_node("hub"))
        self.clients: dict[str, MqttClient] = {}
        self.received: dict[str, int] = {}
        self.model_filters: dict[str, list[str]] = {}
        self.subscriptions: dict[tuple[str, str], object] = {}
        for name in CLIENT_NAMES:
            client = MqttClient(
                self.runtime.add_node(f"node-{name}"),
                self.broker.address,
                client_id=name,
            )
            client.connect()
            self.clients[name] = client
            self.received[name] = 0
            self.model_filters[name] = []
        self._settle()

    def _settle(self):
        self.runtime.run(until=self.runtime.now + 1.0)

    @rule(name=st.sampled_from(CLIENT_NAMES), topic_filter=filters)
    def subscribe(self, name, topic_filter):
        key = (name, topic_filter)
        if key in self.subscriptions:
            return  # one subscription per (client, filter) in the model
        client = self.clients[name]

        def on_message(_topic, _payload, _packet, name=name):
            self.received[name] += 1

        self.subscriptions[key] = client.subscribe(topic_filter, on_message)
        self.model_filters[name].append(topic_filter)
        self._settle()

    @rule(name=st.sampled_from(CLIENT_NAMES), topic_filter=filters)
    def unsubscribe(self, name, topic_filter):
        key = (name, topic_filter)
        subscription = self.subscriptions.pop(key, None)
        if subscription is None:
            return
        self.clients[name].unsubscribe(subscription)
        self.model_filters[name].remove(topic_filter)
        self._settle()

    @rule(publisher=st.sampled_from(CLIENT_NAMES), topic=topics)
    def publish(self, publisher, topic):
        before = dict(self.received)
        self.clients[publisher].publish(topic, {"n": 1})
        self._settle()
        for name in CLIENT_NAMES:
            expected = sum(
                1 for f in self.model_filters[name] if topic_matches(f, topic)
            )
            actual = self.received[name] - before[name]
            assert actual == expected, (
                f"{name}: expected {expected} callbacks for {topic!r} "
                f"with filters {self.model_filters[name]}, got {actual}"
            )

    @invariant()
    def broker_subscription_count_matches_model(self):
        if not hasattr(self, "broker"):
            return
        expected = sum(len(f) for f in self.model_filters.values())
        assert self.broker.subscription_count() == expected


TestBrokerMachine = BrokerMachine.TestCase
TestBrokerMachine.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
