import random

import pytest

from repro.errors import ConfigurationError
from repro.sensors.base import EventSchedule, EventWindow
from repro.sensors.devices import (
    AccelerometerModel,
    AlertActuator,
    CrowdSensorModel,
    DimmerActuator,
    EnvironmentSensorModel,
    FixedPayloadModel,
    HvacActuator,
    SwitchActuator,
)
from repro.sensors.waveforms import diurnal, random_walk, sine_wave, square_wave


class TestEventSchedule:
    def test_active_windows(self):
        events = EventSchedule()
        events.add(10.0, 2.0, "fall")
        events.add(5.0, 1.0, "occupied")
        assert events.is_active(10.5, "fall")
        assert not events.is_active(12.0, "fall")  # end exclusive
        assert not events.is_active(10.5, "occupied")
        assert len(events.active(10.5)) == 1

    def test_sorted_and_filtered_listing(self):
        events = EventSchedule([EventWindow(5.0, 1.0, "b"), EventWindow(1.0, 1.0, "a")])
        assert [e.kind for e in events.all_events()] == ["a", "b"]
        assert len(events.all_events("a")) == 1
        assert len(events) == 2

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            EventWindow(0.0, 0.0, "x")
        with pytest.raises(ConfigurationError):
            EventWindow(-1.0, 1.0, "x")


class TestWaveforms:
    def test_sine_period(self):
        assert sine_wave(0.0, period=1.0) == pytest.approx(0.0)
        assert sine_wave(0.25, period=1.0) == pytest.approx(1.0)

    def test_square_duty(self):
        assert square_wave(0.1, period=1.0, duty=0.5) == 1.0
        assert square_wave(0.6, period=1.0, duty=0.5) == 0.0

    def test_diurnal_bounds(self):
        for t in (0.0, 100.0, 43200.0, 86399.0):
            value = diurnal(t)
            assert 0.0 <= value <= 1.0
        assert diurnal(43200.0) == pytest.approx(1.0)

    def test_random_walk_bounded(self):
        walk = random_walk(start=5.0, step=10.0, low=0.0, high=10.0)
        rng = random.Random(0)
        for _ in range(100):
            assert 0.0 <= walk(rng) <= 10.0

    def test_random_walk_bad_bounds(self):
        with pytest.raises(ValueError):
            random_walk(low=1.0, high=0.0)


class TestSensorModels:
    def test_fixed_payload_fields_and_label(self):
        model = FixedPayloadModel(values=3, label_period_s=2.0)
        rng = random.Random(0)
        sample = model.sample(0.5, rng)
        assert set(sample) == {"v0", "v1", "v2", "label"}
        assert sample["label"] == "hi"
        assert model.sample(1.5, rng)["label"] == "lo"

    def test_fixed_payload_is_small(self):
        from repro.util.serialization import payload_size

        model = FixedPayloadModel(values=3)
        size = payload_size(model.sample(0.0, random.Random(0)))
        assert size < 120  # same order as the paper's 32-byte samples

    def test_accelerometer_baseline_vs_fall(self):
        events = EventSchedule()
        events.add(10.0, 1.5, "fall", intensity=1.0)
        model = AccelerometerModel(events)
        rng = random.Random(1)
        baseline = [model.sample(t / 10.0, rng) for t in range(50)]
        impact = model.sample(10.1, rng)
        still = model.sample(11.0, rng)
        base_mag = max(abs(s["ax"]) + abs(s["ay"]) for s in baseline)
        assert abs(impact["ax"]) + abs(impact["ay"]) + abs(impact["az"]) > base_mag
        assert abs(still["az"]) < 0.5  # lying down: z no longer ~1g

    def test_environment_occupancy_raises_sound(self):
        events = EventSchedule()
        events.add(100.0, 50.0, "occupied")
        model = EnvironmentSensorModel(events)
        rng = random.Random(2)
        quiet = [model.sample(t, rng)["sound_db"] for t in range(0, 50)]
        busy = [model.sample(t, rng)["sound_db"] for t in range(100, 150)]
        assert sum(busy) / len(busy) > sum(quiet) / len(quiet) + 5.0

    def test_environment_diurnal_light(self):
        model = EnvironmentSensorModel(EventSchedule(), day_length_s=100.0)
        rng = random.Random(3)
        midday = model.sample(50.0, rng)["illuminance_lux"]
        midnight = model.sample(0.0, rng)["illuminance_lux"]
        assert midday > midnight + 100.0

    def test_crowd_surge_multiplies_count(self):
        events = EventSchedule()
        events.add(300.0, 60.0, "surge", intensity=1.0)
        model = CrowdSensorModel(events, popularity=1.0, day_length_s=600.0)
        rng = random.Random(4)
        normal = [model.sample(250.0, rng)["people_count"] for _ in range(30)]
        surged = [model.sample(310.0, rng)["people_count"] for _ in range(30)]
        assert sum(surged) > 2 * sum(normal)

    def test_crowd_flow_slows_with_count(self):
        model = CrowdSensorModel(EventSchedule(), popularity=3.0)
        rng = random.Random(5)
        samples = [model.sample(300.0, rng) for _ in range(50)]
        assert all(s["flow_speed_mps"] > 0 for s in samples)


class TestActuators:
    def test_switch(self):
        switch = SwitchActuator()
        state = switch.actuate(0.0, {"on": True})
        assert state == {"on": True}
        switch.actuate(1.0, {"on": True})
        switch.actuate(2.0, {"on": False})
        assert switch.toggle_count == 2
        assert len(switch.command_log) == 3

    def test_switch_requires_on_key(self):
        with pytest.raises(ConfigurationError):
            SwitchActuator().actuate(0.0, {"level": 1})

    def test_dimmer_clamps(self):
        dimmer = DimmerActuator()
        assert dimmer.actuate(0.0, {"level": 1.5})["level"] == 1.0
        assert dimmer.actuate(0.0, {"level": -0.5})["level"] == 0.0

    def test_hvac_modes(self):
        hvac = HvacActuator()
        hvac.actuate(0.0, {"mode": "cool", "setpoint_c": 22.0})
        assert hvac.state == {"mode": "cool", "setpoint_c": 22.0}
        with pytest.raises(ConfigurationError):
            hvac.actuate(1.0, {"mode": "turbo"})

    def test_alert_records(self):
        alert = AlertActuator()
        alert.actuate(5.0, {"message": "fall detected", "severity": "high"})
        assert alert.state == {"alert_count": 1}
        t, message, command = alert.alerts[0]
        assert t == 5.0 and message == "fall detected"
        assert command["severity"] == "high"
