"""Invariant checker: pass and fail cases against hand-built traces."""

from repro.chaos.invariants import Invariants, RecoveryCheck
from repro.sim.trace import Tracer


def check(tracer, recovery=()):
    return Invariants(tracer).check(recovery=recovery)


def forward(tracer, t, fwd_id):
    tracer.emit(t, "broker", "mqtt.broker.forward", fwd_id=fwd_id, topic="t")


def deliver(tracer, t, fwd_id, dup=False):
    tracer.emit(t, "client", "mqtt.client.deliver", fwd_id=fwd_id, dup=dup)


class TestQos1Accounting:
    def test_all_delivered_passes(self):
        tracer = Tracer()
        forward(tracer, 1.0, "f-1")
        deliver(tracer, 1.1, "f-1")
        report = check(tracer)
        assert report.ok
        assert report.metrics["qos1_forwarded"] == 1
        assert report.metrics["qos1_delivered"] == 1

    def test_silent_loss_fails(self):
        tracer = Tracer()
        forward(tracer, 1.0, "f-1")
        report = check(tracer)
        assert not report.ok
        (failure,) = report.failed()
        assert failure.name == "qos1-no-silent-loss"
        assert "f-1" in failure.detail

    def test_give_up_is_accounted(self):
        tracer = Tracer()
        forward(tracer, 1.0, "f-1")
        tracer.emit(3.0, "broker", "mqtt.broker.give_up", fwd_id="f-1")
        report = check(tracer)
        assert report.ok
        assert report.metrics["qos1_given_up"] == 1

    def test_explained_drop_is_accounted(self):
        tracer = Tracer()
        forward(tracer, 1.0, "f-1")
        forward(tracer, 1.2, "f-2")
        deliver(tracer, 1.3, "f-2")
        tracer.emit(
            2.0,
            "broker",
            "mqtt.broker.inflight_dropped",
            client="c",
            reason="expired",
            fwd_ids=["f-1"],
        )
        report = check(tracer)
        assert report.ok
        assert report.metrics["qos1_dropped_explained"] == 1
        assert report.metrics["qos1_explained_loss_rate"] == 0.5

    def test_duplicate_deliveries_counted_not_failed(self):
        tracer = Tracer()
        forward(tracer, 1.0, "f-1")
        deliver(tracer, 1.1, "f-1")
        deliver(tracer, 1.6, "f-1", dup=True)
        report = check(tracer)
        assert report.ok  # dups are the dedup stage's problem, not loss
        assert report.metrics["qos1_duplicate_deliveries"] == 1


class TestMlDedup:
    def test_unique_samples_pass(self):
        tracer = Tracer()
        tracer.emit(1.0, "train.app.t@m", "ml.trained", sample_id="s-1")
        tracer.emit(2.0, "train.app.t@m", "ml.trained", sample_id="s-2")
        report = check(tracer)
        assert report.ok
        assert report.metrics["ml_records"] == 2

    def test_duplicate_sample_fails(self):
        tracer = Tracer()
        tracer.emit(1.0, "train.app.t@m", "ml.trained", sample_id="s-1")
        tracer.emit(2.0, "train.app.t@m", "ml.trained", sample_id="s-1")
        report = check(tracer)
        assert not report.ok
        (failure,) = report.failed()
        assert failure.name == "ml-effectively-once"
        assert "s-1" in failure.detail

    def test_same_sample_on_different_operators_is_fine(self):
        tracer = Tracer()
        tracer.emit(1.0, "train.app.t@m1", "ml.trained", sample_id="s-1")
        tracer.emit(2.0, "predict.app.p@m2", "ml.judged", sample_id="s-1")
        assert check(tracer).ok


class TestRecovery:
    SPEC = RecoveryCheck(
        fault_kind="node_crash", signal_event="mgmt.failover_moved", bound_s=5.0
    )

    def test_signal_within_bound_passes(self):
        tracer = Tracer()
        tracer.emit(10.0, "chaos", "chaos.fault", kind="node_crash", node="m")
        tracer.emit(13.0, "mgmt", "mgmt.failover_moved", subtask="t")
        report = check(tracer, recovery=(self.SPEC,))
        assert report.ok
        assert report.metrics["recovery_s:node_crash"] == 3.0

    def test_signal_beyond_bound_fails(self):
        tracer = Tracer()
        tracer.emit(10.0, "chaos", "chaos.fault", kind="node_crash", node="m")
        tracer.emit(17.0, "mgmt", "mgmt.failover_moved", subtask="t")
        report = check(tracer, recovery=(self.SPEC,))
        assert not report.ok

    def test_missing_signal_fails(self):
        tracer = Tracer()
        tracer.emit(10.0, "chaos", "chaos.fault", kind="node_crash", node="m")
        report = check(tracer, recovery=(self.SPEC,))
        assert not report.ok
        assert "no signal" in report.failed()[0].detail

    def test_fault_never_injected_fails(self):
        report = check(Tracer(), recovery=(self.SPEC,))
        assert not report.ok
        assert "never injected" in report.failed()[0].detail

    def test_measure_from_restored(self):
        spec = RecoveryCheck(
            fault_kind="partition",
            signal_event="mqtt.client.resubscribed",
            bound_s=2.0,
            measure_from="restored",
        )
        tracer = Tracer()
        tracer.emit(10.0, "chaos", "chaos.fault", kind="partition")
        tracer.emit(16.0, "chaos", "chaos.restored", kind="partition")
        tracer.emit(17.0, "mqtt.client.c", "mqtt.client.resubscribed", count=2)
        assert check(tracer, recovery=(spec,)).ok

    def test_source_filter(self):
        spec = RecoveryCheck(
            fault_kind="partition",
            signal_event="mqtt.client.resubscribed",
            bound_s=2.0,
            source_contains="module-a",
        )
        tracer = Tracer()
        tracer.emit(10.0, "chaos", "chaos.fault", kind="partition")
        tracer.emit(11.0, "mqtt.client.module-b.mqtt-1", "mqtt.client.resubscribed")
        report = check(tracer, recovery=(spec,))
        assert not report.ok  # only the wrong client resubscribed


class TestReport:
    def test_render_shows_verdicts(self):
        tracer = Tracer()
        forward(tracer, 1.0, "f-1")
        rendered = check(tracer).render()
        assert "invariants: FAIL" in rendered
        assert "qos1-no-silent-loss" in rendered
        deliver(tracer, 1.1, "f-1")
        assert "invariants: PASS" in check(tracer).render()
