"""Scenario harness: invariants hold, and plan + seed => identical traces."""

import pytest

from repro.chaos import (
    BrokerRestart,
    FaultPlan,
    Heal,
    Injector,
    Invariants,
    NodeRestart,
    Partition,
    build_chaos_cluster,
    build_chaos_recipe,
    get_scenario,
    run_scenario,
    trace_digest,
)
from repro.chaos.scenarios import SCENARIOS
from repro.errors import ConfigurationError


def run_combo(seed: int):
    """Partition + node restart + broker restart in one plan (the
    acceptance-criterion combination)."""
    runtime, cluster = build_chaos_cluster(seed)
    app = cluster.submit(build_chaos_recipe())
    cluster.settle(2.0)
    assert app.assignment is not None
    victim = app.assignment.module_for("train")
    plan = FaultPlan(
        "combo",
        (
            Partition(at=8.0, group_a=("module-a",), group_b=("broker-node",)),
            Heal(at=12.0, group_a=("module-a",), group_b=("broker-node",)),
            NodeRestart(at=14.0, node=victim),
            BrokerRestart(at=18.0),
        ),
    )
    Injector(runtime, cluster=cluster).schedule(plan)
    runtime.run(until=32.0)
    return runtime, cluster


def render_trace(runtime):
    return [
        f"{r.time!r}|{r.source}|{r.event}|{sorted(r.fields.items())!r}"
        for r in runtime.tracer
    ]


def test_combo_plan_is_deterministic():
    """The tentpole acceptance check: running the same plan twice with the
    same seed yields byte-identical trace sequences."""
    first, _ = run_combo(seed=3)
    second, _ = run_combo(seed=3)
    assert render_trace(first) == render_trace(second)
    assert trace_digest(first.tracer) == trace_digest(second.tracer)


def test_combo_plan_differs_across_seeds():
    a, _ = run_combo(seed=1)
    b, _ = run_combo(seed=2)
    assert trace_digest(a.tracer) != trace_digest(b.tracer)


def test_combo_plan_satisfies_delivery_invariants():
    runtime, cluster = run_combo(seed=0)
    report = Invariants(runtime.tracer, cluster).check()
    assert report.ok, report.render()
    assert report.metrics["qos1_forwarded"] > 0


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_invariants_hold(name):
    result = run_scenario(name, seed=0)
    assert result.report.ok, result.report.render()
    assert result.faults_applied >= 1


def test_run_scenario_is_deterministic():
    a = run_scenario("partition_heal", seed=5)
    b = run_scenario("partition_heal", seed=5)
    assert a.trace_digest == b.trace_digest
    assert a.trace_records == b.trace_records


def test_unknown_scenario_rejected():
    with pytest.raises(ConfigurationError, match="unknown chaos scenario"):
        get_scenario("meteor-strike")
