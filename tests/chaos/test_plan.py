"""FaultPlan: validation, ordering, horizon, serialization round-trip."""

import pytest

from repro.chaos.plan import (
    BrokerRestart,
    FaultPlan,
    Heal,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    NodeRestart,
    Partition,
    SensorFlap,
)
from repro.errors import ConfigurationError
from repro.net.wlan import GilbertElliottConfig


def full_plan() -> FaultPlan:
    return FaultPlan(
        "everything",
        (
            NodeCrash(at=1.0, node="a"),
            NodeRecover(at=2.0, node="a"),
            NodeRestart(at=3.0, node="b"),
            BrokerRestart(at=4.0),
            Partition(at=5.0, group_a=("a",), group_b=("hub",)),
            Heal(at=6.0, group_a=("a",), group_b=("hub",)),
            LinkDegrade(
                at=7.0,
                duration_s=5.0,
                stations=("a", "b"),
                bitrate_factor=0.5,
                burst=GilbertElliottConfig(p_enter=0.1, p_exit=0.5),
            ),
            SensorFlap(at=8.0, module="a", device="accel", down_s=2.0),
        ),
    )


class TestValidation:
    def test_full_plan_validates(self):
        full_plan().validate()

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan("p", (NodeCrash(at=-1.0, node="a"),)).validate()

    def test_nameless_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan("", (BrokerRestart(at=1.0),)).validate()

    @pytest.mark.parametrize(
        "event",
        [
            NodeCrash(at=0.0),
            NodeRecover(at=0.0),
            NodeRestart(at=0.0),
            Partition(at=0.0, group_a=("a",), group_b=()),
            Partition(at=0.0, group_a=("a", "b"), group_b=("b",)),
            LinkDegrade(at=0.0, duration_s=0.0),
            LinkDegrade(at=0.0, duration_s=1.0, bitrate_factor=0.0),
            LinkDegrade(at=0.0, duration_s=1.0, bitrate_factor=1.5),
            SensorFlap(at=0.0, module="a", device="", down_s=1.0),
            SensorFlap(at=0.0, module="a", device="d", down_s=0.0),
        ],
    )
    def test_bad_events_rejected(self, event):
        with pytest.raises(ConfigurationError):
            event.validate()

    def test_bad_burst_rejected(self):
        event = LinkDegrade(
            at=0.0,
            duration_s=1.0,
            burst=GilbertElliottConfig(p_enter=2.0, p_exit=0.5),
        )
        with pytest.raises(ConfigurationError):
            event.validate()


class TestDiagnose:
    def test_valid_plan_has_no_diagnostics(self):
        assert full_plan().diagnose() == []

    def test_diagnose_reports_every_problem(self):
        """Unlike validate(), diagnose() is exhaustive, not fail-fast."""
        plan = FaultPlan(
            "",
            (
                NodeCrash(at=-1.0),  # bad time AND missing node
                SensorFlap(at=0.0, module="a", device="", down_s=0.0),
            ),
        )
        diags = plan.diagnose()
        rules = sorted(d.rule for d in diags)
        assert rules == ["CHS100", "CHS101", "CHS101", "CHS101", "CHS101"]
        assert all(str(d.severity) == "error" for d in diags)

    def test_diagnose_locates_the_event(self):
        plan = FaultPlan("p", (NodeCrash(at=1.0),))
        (diag,) = plan.diagnose()
        assert diag.where == "p:events[0] node_crash"
        assert "node name" in diag.message

    def test_diagnose_matches_validate(self):
        """A plan validates exactly when it diagnoses clean."""
        good = full_plan()
        assert good.diagnose() == []
        good.validate()
        bad = FaultPlan("p", (NodeCrash(at=1.0),))
        assert bad.diagnose()
        with pytest.raises(ConfigurationError):
            bad.validate()


class TestOrdering:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            "p",
            (BrokerRestart(at=9.0), NodeCrash(at=1.0, node="a")),
        )
        assert [e.at for e in plan] == [1.0, 9.0]

    def test_same_time_keeps_authored_order(self):
        partition = Partition(at=5.0, group_a=("a",), group_b=("b",))
        heal = Heal(at=5.0, group_a=("a",), group_b=("b",))
        plan = FaultPlan("p", (partition, heal))
        assert plan.events == (partition, heal)

    def test_len_and_iter(self):
        plan = full_plan()
        assert len(plan) == 8
        assert [e.kind for e in plan][:2] == ["node_crash", "node_recover"]


class TestHorizon:
    def test_horizon_includes_timed_effects(self):
        # LinkDegrade at t=7 lasting 5 s dominates the last event at t=8.
        assert full_plan().horizon == pytest.approx(12.0)

    def test_horizon_of_instant_events(self):
        plan = FaultPlan("p", (BrokerRestart(at=4.0),))
        assert plan.horizon == pytest.approx(4.0)


class TestSerialization:
    def test_round_trip_preserves_plan(self):
        plan = full_plan()
        restored = FaultPlan.from_dict(plan.to_dict())
        assert restored == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultPlan.from_dict(
                {"name": "p", "events": [{"kind": "meteor", "at": 1.0}]}
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fields"):
            FaultPlan.from_dict(
                {
                    "name": "p",
                    "events": [{"kind": "node_crash", "at": 1.0, "color": "red"}],
                }
            )

    def test_round_trip_validates(self):
        payload = {
            "name": "p",
            "events": [{"kind": "node_crash", "at": -2.0, "node": "a"}],
        }
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict(payload)

    def test_describe_drops_nones_and_sorts_sets(self):
        fields = Heal(at=1.0).describe()
        assert fields == {}
        fields = LinkDegrade(at=1.0, duration_s=2.0, stations=("b", "a")).describe()
        assert fields["stations"] == ["b", "a"] or fields["stations"] == ("b", "a")
