"""Edge cases of the self-healing control plane.

Each test drives one of the awkward interleavings the pause -> drain ->
transfer -> resume protocol must survive: stateful operators moved (or
killed) mid-window, the broker dying while a migration is draining, the
migration target dying mid-transfer, and dead-incarnation heartbeats
arriving after the verdict.
"""

from __future__ import annotations

import pytest

from repro.chaos import Invariants, build_chaos_cluster, build_chaos_recipe
from repro.core.flow import FlowRecord, topic_for_stream
from repro.core.recipe import Recipe, TaskSpec
from repro.core.splitter import SubTask
from repro.ml.features import Datum
from repro.mqtt.client import MqttClient

APP = "edge-app"
APP_CHAOS = "chaos-app"


def windowed_recipe(count: int = 8) -> Recipe:
    """Sensor -> count window: the window's partial batch is the state
    that must survive a live migration."""
    return Recipe(
        APP,
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 2.0, "qos": 1},
                pin_to="module-a",
                capabilities=["sensor:sample"],
            ),
            TaskSpec(
                "window",
                "window",
                inputs=["raw"],
                outputs=["batch"],
                params={"mode": "count", "count": count, "qos": 1},
                capabilities=["compute"],
            ),
        ],
    )


def batch_probe(runtime, cluster, application: str = APP):
    """Collect every merged batch record the window emits."""
    probe = MqttClient(
        runtime.add_node("probe"), cluster.broker.address, client_id="probe"
    )
    probe.connect()
    batches: list[FlowRecord] = []
    probe.subscribe(
        topic_for_stream(application, "batch"),
        lambda t, p, pkt: batches.append(FlowRecord.from_payload(p)),
        qos=1,
    )
    return batches


def contributing_ids(batches: list[FlowRecord]) -> list[str]:
    ids: list[str] = []
    for record in batches:
        ids.extend(record.merged_ids or [record.sample_id])
    return ids


class TestStatefulMigration:
    def test_mid_window_migration_loses_and_duplicates_nothing(self):
        runtime, cluster = build_chaos_cluster(seed=3)
        batches = batch_probe(runtime, cluster)
        app = cluster.submit(windowed_recipe(count=8))
        cluster.settle(2.0)
        source = app.assignment.module_for("window")
        target = next(
            name
            for name in ("module-c", "module-d")
            if name != source
        )
        # Let the window partially fill (count=8 at 2 Hz -> 4 s/batch),
        # then move it mid-batch.
        cluster.settle(1.6)
        operator = cluster.module(source).operators[f"{APP}/window"]
        assert operator._batch, "precondition: migration must be mid-window"
        staged = len(operator._batch)
        migration = cluster.management.migrate_subtask(APP, "window", target)
        assert migration is not None
        cluster.settle(12.0)
        # The partial batch travelled with the operator...
        assert any(
            r.event == "migrate.done"
            for r in runtime.tracer.select(event="migrate.done")
        )
        assert app.assignment.placements["window"] == target
        assert f"{APP}/window" not in cluster.module(source).operators
        successor = cluster.module(target).operators[f"{APP}/window"]
        assert successor.windows_emitted >= 1
        # ...so every sensed sample lands in exactly one emitted batch:
        # no loss at the seam, no double-count of the staged records.
        ids = contributing_ids(batches)
        assert len(ids) == len(set(ids))
        assert len(ids) >= staged + 8
        report = Invariants(runtime.tracer, cluster).check()
        assert report.ok, [c.detail for c in report.failed()]

    def test_host_crash_mid_window_recovers_without_duplicates(self):
        runtime, cluster = build_chaos_cluster(seed=4)
        batches = batch_probe(runtime, cluster)
        app = cluster.submit(windowed_recipe(count=8))
        cluster.settle(3.5)
        victim = app.assignment.module_for("window")
        operator = cluster.module(victim).operators[f"{APP}/window"]
        assert operator._batch, "precondition: crash must hit mid-window"
        before = len(batches)
        cluster.module(victim).node.fail()
        cluster.settle(20.0)
        # Failover re-placed the window on the surviving compute module
        # and batches keep coming. The partial batch died with the node
        # (amnesia crash, unlike a migration) — but nothing is ever
        # emitted twice.
        moved = list(runtime.tracer.select(event="mgmt.failover_moved"))
        assert any(m["subtask"] == "window" for m in moved)
        assert app.assignment.placements["window"] != victim
        assert len(batches) > before
        ids = contributing_ids(batches)
        assert len(ids) == len(set(ids))
        report = Invariants(runtime.tracer, cluster).check()
        assert report.ok, [c.detail for c in report.failed()]


class TestMigrationFailures:
    def test_broker_restart_during_drain_converges(self):
        """The broker dies while the source is draining: the state
        message is in limbo. Whether the transfer completes after the
        reconnect or times out and aborts, exactly one live instance
        must survive and the stream must keep flowing."""
        runtime, cluster = build_chaos_cluster(seed=5)
        app = cluster.submit(build_chaos_recipe())
        cluster.settle(3.0)
        source = app.assignment.module_for("train")
        target = next(n for n in ("module-c", "module-d") if n != source)
        migration = cluster.management.migrate_subtask(APP_CHAOS, "train", target)
        assert migration is not None
        cluster.settle(0.1)  # mid-drain (drain_s = 0.25)
        cluster.restart_broker()
        cluster.settle(20.0)
        outcomes = [
            r.event
            for r in runtime.tracer
            if r.event in ("migrate.done", "migrate.aborted")
            and r.fields.get("migration") == migration
        ]
        assert outcomes, "migration must resolve one way or the other"
        placed_on = app.assignment.placements["train"]
        instances = [
            name
            for name, module in cluster.modules.items()
            if f"{APP_CHAOS}/train" in module.operators
        ]
        assert instances == [placed_on]
        trained = list(runtime.tracer.select(event="ml.trained"))
        assert trained and trained[-1].time > runtime.now - 5.0
        report = Invariants(runtime.tracer, cluster).check()
        assert report.ok, [c.detail for c in report.failed()]

    def test_target_dies_mid_transfer_repicks_a_survivor(self):
        """Double failure: the module adopting the sub-task dies before
        it can acknowledge. The abort path must re-place the sub-task on
        surviving capacity instead of stranding it."""
        runtime, cluster = build_chaos_cluster(seed=6)
        app = cluster.submit(build_chaos_recipe())
        cluster.settle(3.0)
        source = app.assignment.module_for("train")
        target = next(n for n in ("module-c", "module-d") if n != source)
        migration = cluster.management.migrate_subtask(APP_CHAOS, "train", target)
        assert migration is not None
        cluster.settle(0.1)  # pause delivered, drain in progress
        cluster.module(target).node.fail()
        cluster.settle(20.0)
        aborted = [
            r
            for r in runtime.tracer.select(event="migrate.aborted")
            if r.fields.get("migration") == migration
        ]
        assert aborted, "losing the target must abort the migration"
        placed_on = app.assignment.placements["train"]
        assert placed_on != target
        assert cluster.module(placed_on).node.alive
        assert f"{APP_CHAOS}/train" in cluster.module(placed_on).operators
        trained = list(runtime.tracer.select(event="ml.trained"))
        assert trained and trained[-1].time > runtime.now - 5.0
        report = Invariants(runtime.tracer, cluster).check()
        assert report.ok, [c.detail for c in report.failed()]


class TestIncarnationHygiene:
    def test_restart_after_confirm_is_a_fresh_incarnation(self):
        """A crash is confirmed, then the module reboots: the detector
        must track the successor incarnation from scratch instead of
        resurrecting (or re-condemning) the dead one, and the crash must
        produce exactly one failover."""
        runtime, cluster = build_chaos_cluster(seed=7)
        app = cluster.submit(build_chaos_recipe())
        cluster.settle(3.0)
        victim = app.assignment.module_for("train")
        old_incarnation = cluster.module(victim).node.incarnation
        cluster.module(victim).node.fail()
        cluster.settle(10.0)
        moved = [
            r
            for r in runtime.tracer.select(event="mgmt.failover_moved")
            if r.fields.get("from_module") == victim
        ]
        assert len(moved) == 1
        detector = cluster.management.detector
        assert detector is not None
        assert victim not in detector.peers  # tombstone -> forget
        cluster.restart_module(victim)
        cluster.settle(6.0)
        peer = detector.peers[victim]
        assert peer.incarnation == old_incarnation + 1
        assert peer.state == "alive"
        # Still exactly one failover for the one crash: the rejoin and
        # fail-back never re-trigger it.
        moved_after = [
            r
            for r in runtime.tracer.select(event="mgmt.failover_moved")
            if r.fields.get("from_module") == victim
        ]
        assert len(moved_after) == 1
        report = Invariants(runtime.tracer, cluster).check()
        assert report.ok, [c.detail for c in report.failed()]


class TestGracefulDegradation:
    def rate_recipe(self, name: str, priority: int) -> Recipe:
        return Recipe(
            name,
            [
                TaskSpec(
                    "sense",
                    "sensor",
                    outputs=["raw"],
                    params={"device": "sample", "rate_hz": 40, "qos": 1},
                    pin_to="module-a",
                    capabilities=["sensor:sample"],
                ),
                TaskSpec(
                    "train",
                    "train",
                    inputs=["raw"],
                    params={"model": "classifier", "label_key": "label", "qos": 1},
                    capabilities=["compute"],
                ),
            ],
            priority=priority,
        )

    def test_insufficient_capacity_sheds_lowest_priority_app(self):
        """Losing a compute module leaves demand (2 x 1.22 util) above
        the surviving capacity (2.0): the low-priority app is shed, the
        high-priority one keeps running, and the degraded-mode status is
        published retained."""
        from repro.core.middleware import IFoTCluster
        from repro.runtime.sim import SimRuntime
        from repro.sensors.devices import FixedPayloadModel

        runtime = SimRuntime(seed=9)
        cluster = IFoTCluster(
            runtime,
            heartbeat_s=2.0,
            auto_failover=True,
            client_keepalive_s=2.0,
            auto_reconnect=True,
            broker_params={
                "sweep_interval_s": 2.0,
                "retry_interval_s": 0.5,
                "max_retries": 8,
            },
        )
        sensor_host = cluster.add_module("module-a")
        sensor_host.attach_sensor("sample", FixedPayloadModel(values=3))
        cluster.add_module("module-c", extra_capabilities={"compute"})
        cluster.add_module("module-d", extra_capabilities={"compute"})
        cluster.settle(3.0)
        cluster.submit(self.rate_recipe("batch-app", priority=0))
        alarm = cluster.submit(self.rate_recipe("alarm-app", priority=5))
        cluster.settle(3.0)

        status: list[dict] = []
        cluster.management.module.client.subscribe(
            "ifot/ctl/status/degraded", lambda t, p, pkt: status.append(p)
        )
        victim = alarm.assignment.module_for("train")
        cluster.module(victim).node.fail()
        cluster.settle(12.0)

        mgmt = cluster.management
        assert mgmt.load_sheds_performed == 1
        assert mgmt.degraded_applications == ["batch-app"]
        shed = list(runtime.tracer.select(event="mgmt.load_shed"))
        assert [r["application"] for r in shed] == ["batch-app"]
        # The shed app is gone; the high-priority one was failed over and
        # keeps training on the surviving compute module.
        assert "batch-app" not in mgmt._led
        survivor = alarm.assignment.module_for("train")
        assert survivor not in (victim,)
        assert "alarm-app/train" in cluster.module(survivor).operators
        trained = list(runtime.tracer.select(event="ml.trained"))
        assert trained and trained[-1].source.endswith(f"@{survivor}")
        # Degraded-mode status is published retained.
        assert status and status[-1]["applications"] == ["batch-app"]


class TestHandoffDedup:
    """Operator-level exactly-once across overlapping live + replay."""

    def make_pair(self):
        runtime, cluster = build_chaos_cluster(seed=8)
        subtask = SubTask(
            subtask_id="dedup",
            task_id="dedup",
            operator="dedup",
            inputs=["raw"],
            outputs=["clean"],
            params={},
        )
        source = cluster.module("module-c").deploy(APP, subtask)
        cluster.settle(0.5)
        return runtime, cluster, subtask, source

    def record(self, runtime, n: int) -> FlowRecord:
        return FlowRecord(
            sample_id=f"s-{n}",
            source="probe",
            sensed_at=runtime.now,
            datum=Datum.from_mapping({"v": float(n)}),
        )

    def test_paused_operator_buffers_instead_of_processing(self):
        runtime, cluster, subtask, source = self.make_pair()
        source.pause()
        for n in range(3):
            source._dispatch("raw", self.record(runtime, n))
        assert source.records_in == 0
        assert source.records_buffered == 3
        assert len(source.take_handoff_buffer()) == 3
        assert source.take_handoff_buffer() == []  # drained exactly once

    def test_absorb_handoff_skips_live_seen_samples(self):
        runtime, cluster, subtask, source = self.make_pair()
        source.pause()
        buffered = []
        for n in range(4):
            rec = self.record(runtime, n)
            source._dispatch("raw", rec)
            buffered.append(("raw", rec))
        target = cluster.module("module-d").deploy(APP, subtask)
        target.begin_handoff_tracking()
        # Overlap window: samples 2 and 3 also arrive via the target's
        # own live subscription before the tail is replayed.
        target._dispatch("raw", self.record(runtime, 2))
        target._dispatch("raw", self.record(runtime, 3))
        cluster.settle(0.2)
        target.absorb_handoff(buffered, final=True)
        cluster.settle(0.2)
        assert target.handoff_skipped == 2
        assert target.records_in == 4  # 2 live + 2 replayed, none twice
        # final=True ended tracking: later records process normally.
        target._dispatch("raw", self.record(runtime, 9))
        assert target.records_in == 5

    def test_absorb_without_tracking_replays_everything(self):
        runtime, cluster, subtask, source = self.make_pair()
        source.pause()
        buffered = []
        for n in range(2):
            rec = self.record(runtime, n)
            source._dispatch("raw", rec)
            buffered.append(("raw", rec))
        target = cluster.module("module-d").deploy(APP, subtask)
        target.absorb_handoff(buffered)
        cluster.settle(0.2)
        assert target.handoff_skipped == 0
        assert target.records_in == 2
