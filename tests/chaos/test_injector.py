"""Injector behaviour: faults land at their planned times, traced."""

import pytest

from repro.chaos.injector import Injector
from repro.chaos.plan import (
    FaultPlan,
    Heal,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    Partition,
    SensorFlap,
)
from repro.errors import ConfigurationError
from repro.runtime.sim import SimRuntime


@pytest.fixture
def runtime():
    return SimRuntime(seed=5)


def fault_marks(runtime, event="chaos.fault"):
    return [(r.time, r.fields.get("kind")) for r in runtime.tracer.select(event)]


def test_crash_and_recover_at_planned_times(runtime):
    node = runtime.add_node("n")
    plan = FaultPlan(
        "blip",
        (NodeCrash(at=2.0, node="n"), NodeRecover(at=4.0, node="n")),
    )
    injector = Injector(runtime)
    injector.schedule(plan)
    runtime.run(until=3.0)
    assert not node.alive
    runtime.run(until=5.0)
    assert node.alive
    assert injector.faults_applied == 2
    assert fault_marks(runtime) == [(2.0, "node_crash"), (4.0, "node_recover")]
    assert fault_marks(runtime, "chaos.restored") == [(4.0, "node_crash")]


def test_partition_and_heal_drive_the_medium(runtime):
    runtime.add_node("a")
    runtime.add_node("b")
    plan = FaultPlan(
        "cut",
        (
            Partition(at=1.0, group_a=("a",), group_b=("b",)),
            Heal(at=3.0, group_a=("a",), group_b=("b",)),
        ),
    )
    Injector(runtime).schedule(plan)
    runtime.run(until=2.0)
    assert runtime.wlan.is_blocked("a", "b")
    runtime.run(until=4.0)
    assert not runtime.wlan.is_blocked("a", "b")
    assert fault_marks(runtime, "chaos.restored") == [(3.0, "partition")]


def test_link_degrade_expires_with_restored_mark(runtime):
    plan = FaultPlan(
        "slow", (LinkDegrade(at=1.0, duration_s=2.0, bitrate_factor=0.5),)
    )
    Injector(runtime).schedule(plan)
    runtime.run(until=2.0)
    assert runtime.wlan.degradations_active == 1
    runtime.run(until=4.0)
    assert runtime.wlan.degradations_active == 0
    assert fault_marks(runtime, "chaos.restored") == [(3.0, "link_degrade")]


def test_unknown_node_rejected(runtime):
    Injector(runtime).schedule(
        FaultPlan("p", (NodeCrash(at=1.0, node="ghost"),))
    )
    with pytest.raises(ConfigurationError, match="unknown node"):
        runtime.run(until=2.0)


def test_past_events_rejected(runtime):
    runtime.add_node("n")
    runtime.run(until=5.0)
    with pytest.raises(ConfigurationError, match="in the past"):
        Injector(runtime).schedule(FaultPlan("p", (NodeCrash(at=1.0, node="n"),)))


def test_sensor_flap_needs_a_cluster(runtime):
    Injector(runtime).schedule(
        FaultPlan(
            "p", (SensorFlap(at=1.0, module="m", device="d", down_s=1.0),)
        )
    )
    with pytest.raises(ConfigurationError, match="IFoTCluster"):
        runtime.run(until=2.0)
