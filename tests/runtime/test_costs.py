import pytest

from repro.errors import ConfigurationError
from repro.runtime.costs import NULL_COST_MODEL, CostModel, OpCost


def test_unknown_op_costs_zero():
    assert CostModel().cost("anything") == 0.0
    assert NULL_COST_MODEL.cost("ml.train", nbytes=1000) == 0.0


def test_base_and_per_byte():
    model = CostModel()
    model.define("op", OpCost(base_s=0.01, per_byte_s=0.001))
    assert model.cost("op") == pytest.approx(0.01)
    assert model.cost("op", nbytes=5) == pytest.approx(0.015)


def test_warmup_applies_to_first_invocations():
    cost = OpCost(base_s=0.01, warmup_extra_s=0.1, warmup_ops=2)
    assert cost.cost(0, 0) == pytest.approx(0.11)
    assert cost.cost(0, 1) == pytest.approx(0.11)
    assert cost.cost(0, 2) == pytest.approx(0.01)


def test_scale_multiplies():
    model = CostModel()
    model.define("op", OpCost(base_s=0.01))
    scaled = model.scaled(3.0)
    assert scaled.cost("op") == pytest.approx(0.03)
    assert model.cost("op") == pytest.approx(0.01)  # original untouched


def test_negative_params_rejected():
    with pytest.raises(ConfigurationError):
        OpCost(base_s=-1.0)
    with pytest.raises(ConfigurationError):
        OpCost(per_byte_s=-1.0)
    with pytest.raises(ConfigurationError):
        OpCost(warmup_extra_s=-0.1)
