import pytest

from repro.runtime.real import AsyncioRuntime
from repro.runtime.sim import SimRuntime


class TestSimRuntime:
    def test_clock_and_timers(self):
        rt = SimRuntime()
        fired = []
        rt.call_later(1.5, lambda: fired.append(rt.now))
        rt.run(until=10.0)
        assert fired == [1.5]
        assert rt.now == 10.0

    def test_timer_cancel(self):
        rt = SimRuntime()
        fired = []
        handle = rt.call_later(1.0, fired.append, "x")
        handle.cancel()
        rt.run(until=2.0)
        assert fired == []

    def test_call_soon_ordering(self):
        rt = SimRuntime()
        order = []
        rt.call_soon(order.append, 1)
        rt.call_soon(order.append, 2)
        rt.run_until_idle()
        assert order == [1, 2]

    def test_node_lookup(self):
        rt = SimRuntime()
        node = rt.add_node("x")
        assert rt.node("x") is node
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            rt.node("ghost")

    def test_same_seed_same_trajectory(self):
        def run(seed):
            rt = SimRuntime(seed=seed)
            values = []
            stream = rt.rng.stream("s")
            rt.call_later(1.0, lambda: values.append(stream.random()))
            rt.run_until_idle()
            return values

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestAsyncioRuntime:
    def test_now_advances_with_wall_clock(self):
        with AsyncioRuntime() as rt:
            before = rt.now
            rt.run_for(0.02)
            assert rt.now - before >= 0.015

    def test_call_later_fires(self):
        with AsyncioRuntime() as rt:
            fired = []
            rt.call_later(0.01, fired.append, "x")
            rt.run_for(0.05)
            assert fired == ["x"]

    def test_call_later_cancel(self):
        with AsyncioRuntime() as rt:
            fired = []
            handle = rt.call_later(0.01, fired.append, "x")
            handle.cancel()
            rt.run_for(0.03)
            assert fired == []

    def test_duplicate_node_rejected(self):
        from repro.errors import ConfigurationError

        with AsyncioRuntime() as rt:
            rt.add_node("a")
            with pytest.raises(ConfigurationError):
                rt.add_node("a")

    def test_trace_uses_runtime_clock(self):
        with AsyncioRuntime() as rt:
            rt.trace("src", "ev")
            record = rt.tracer.select("ev")[0]
            assert record.time >= 0.0
