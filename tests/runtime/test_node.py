import pytest

from repro.net.address import Address
from repro.runtime.costs import CostModel, OpCost
from repro.runtime.sim import SimRuntime


@pytest.fixture
def runtime():
    return SimRuntime(seed=1)


def test_execute_charges_cost_and_serializes(runtime):
    node = runtime.add_node("n")
    node.cost_model = CostModel({"work": OpCost(base_s=0.5)})
    done = []
    for i in range(2):
        node.execute("work", lambda i=i: done.append((i, runtime.now)))
    runtime.run_until_idle()
    assert done == [(0, 0.5), (1, 1.0)]


def test_execute_warmup_counts_per_node(runtime):
    node = runtime.add_node("n")
    node.cost_model = CostModel(
        {"op": OpCost(base_s=0.1, warmup_extra_s=1.0, warmup_ops=1)}
    )
    done = []
    node.execute("op", lambda: done.append(runtime.now))
    node.execute("op", lambda: done.append(runtime.now))
    runtime.run_until_idle()
    assert done[0] == pytest.approx(1.1)
    assert done[1] == pytest.approx(1.2)
    assert node.op_count("op") == 2


def test_failed_node_drops_compute_and_messages(runtime):
    a = runtime.add_node("a")
    b = runtime.add_node("b")
    got = []
    b.bind("svc", lambda src, data: got.append(data))
    a.fail()
    a.execute("op", got.append, "never")
    a.send("cli", Address("b", "svc"), b"never")
    runtime.run_until_idle()
    assert got == []


def test_failed_node_drops_inbound(runtime):
    a = runtime.add_node("a")
    b = runtime.add_node("b")
    got = []
    b.bind("svc", lambda src, data: got.append(data))
    b.fail()
    a.send("cli", Address("b", "svc"), b"x")
    runtime.run_until_idle()
    assert got == []


def test_recover_restores_operation(runtime):
    a = runtime.add_node("a")
    b = runtime.add_node("b")
    got = []
    b.bind("svc", lambda src, data: got.append(data))
    b.fail()
    b.recover()
    a.send("cli", Address("b", "svc"), b"x")
    runtime.run_until_idle()
    assert got == [b"x"]


def test_in_flight_work_dropped_on_failure(runtime):
    """Work queued before a crash must not complete after it."""
    node = runtime.add_node("n")
    node.cost_model = CostModel({"op": OpCost(base_s=1.0)})
    done = []
    node.execute("op", done.append, 1)
    runtime.call_later(0.5, node.fail)
    runtime.run_until_idle()
    assert done == []


def test_address_helper(runtime):
    node = runtime.add_node("n")
    assert node.address("svc") == Address("n", "svc")
    assert node.address() == Address("n", "default")


def test_duplicate_node_rejected(runtime):
    runtime.add_node("dup")
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        runtime.add_node("dup")
