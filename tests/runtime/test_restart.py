"""Node.restart(): amnesia semantics, vs Node.recover(): blip semantics."""

from repro.runtime.component import Component
from repro.runtime.sim import SimRuntime


class Beeper(Component):
    """Periodic component recording its own activity and teardown."""

    def __init__(self, node, name, log):
        super().__init__(node, name)
        self.log = log
        self.every(1.0, lambda: self.log.append((node.runtime.now, name)))

    def on_stop(self):
        self.log.append(("stopped", self.name))


def test_restart_bumps_incarnation_and_stays_alive():
    runtime = SimRuntime(seed=0)
    node = runtime.add_node("n")
    assert node.incarnation == 0
    node.restart()
    assert node.alive
    assert node.incarnation == 1
    marks = runtime.tracer.select("node.restart")
    assert [r["incarnation"] for r in marks] == [1]


def test_restart_stops_components_in_reverse_order():
    runtime = SimRuntime(seed=0)
    node = runtime.add_node("n")
    log = []
    Beeper(node, "base", log)
    Beeper(node, "dependent", log)
    assert [c.name for c in node.components] == ["base", "dependent"]
    node.restart()
    # Dependents stop before what they were built on (LIFO).
    assert log == [("stopped", "dependent"), ("stopped", "base")]
    assert node.components == []


def test_restart_silences_old_incarnation_timers():
    runtime = SimRuntime(seed=0)
    node = runtime.add_node("n")
    log = []
    Beeper(node, "b", log)
    runtime.run(until=2.5)
    assert [entry for entry in log if entry[1] == "b" and entry[0] != "stopped"]
    ticks_before = len(log)
    node.restart()
    runtime.run(until=10.0)
    ticks = [e for e in log if isinstance(e[0], float) and e[0] > 2.5]
    assert ticks == []  # no timer armed before the restart ever fires after
    assert len(log) == ticks_before + 1  # only the stop record was added


def test_restart_discards_queued_cpu_work():
    runtime = SimRuntime(seed=0)
    node = runtime.add_node("n")
    ran = []
    node.execute("op", lambda: ran.append("old"))
    node.restart()
    runtime.run(until=1.0)
    assert ran == []  # stale incarnation's closure never executed
    node.execute("op", lambda: ran.append("new"))
    runtime.run(until=2.0)
    assert ran == ["new"]


def test_restart_resets_op_counts():
    runtime = SimRuntime(seed=0)
    node = runtime.add_node("n")
    node.execute("op", lambda: None)
    runtime.run(until=0.5)
    assert node.op_count("op") == 1
    node.restart()
    assert node.op_count("op") == 0


def test_restart_hooks_fire_after_boot():
    runtime = SimRuntime(seed=0)
    node = runtime.add_node("n")
    seen = []
    node.restart_hooks.append(lambda n: seen.append((n.alive, n.incarnation)))
    node.restart()
    node.restart()
    assert seen == [(True, 1), (True, 2)]


def test_recover_keeps_components_and_timers():
    """The contrast case: a blip keeps state, timers and incarnation."""
    runtime = SimRuntime(seed=0)
    node = runtime.add_node("n")
    log = []
    beeper = Beeper(node, "b", log)
    runtime.run(until=1.5)
    node.fail()
    runtime.run(until=3.5)  # ticks during the outage are suppressed
    suppressed = [e for e in log if isinstance(e[0], float) and 1.5 < e[0] <= 3.5]
    node.recover()
    runtime.run(until=5.5)
    resumed = [e for e in log if isinstance(e[0], float) and e[0] > 3.5]
    assert suppressed == []
    assert resumed  # the same timer resumed without re-registration
    assert node.incarnation == 0
    assert node.components == [beeper]
