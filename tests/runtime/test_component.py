import pytest

from repro.runtime.component import Component, PeriodicTimer
from repro.runtime.sim import SimRuntime


@pytest.fixture
def runtime():
    return SimRuntime(seed=1)


def test_periodic_timer_is_drift_free(runtime):
    node = runtime.add_node("n")
    comp = Component(node, "c")
    ticks = []
    comp.every(0.1, lambda: ticks.append(round(runtime.now, 10)))
    runtime.run(until=1.0)
    assert len(ticks) == 10
    assert ticks[0] == pytest.approx(0.1)
    assert ticks[-1] == pytest.approx(1.0)


def test_periodic_timer_start_delay(runtime):
    node = runtime.add_node("n")
    comp = Component(node, "c")
    ticks = []
    comp.every(1.0, lambda: ticks.append(runtime.now), start_delay=0.5)
    runtime.run(until=4.0)
    assert ticks == [pytest.approx(1.5), pytest.approx(2.5), pytest.approx(3.5)]


def test_periodic_timer_cancel(runtime):
    node = runtime.add_node("n")
    comp = Component(node, "c")
    ticks = []
    timer = comp.every(0.1, lambda: ticks.append(1))
    runtime.run(until=0.35)
    timer.cancel()
    runtime.run(until=1.0)
    assert len(ticks) == 3
    assert timer.fire_count == 3


def test_periodic_timer_rejects_bad_interval(runtime):
    node = runtime.add_node("n")
    with pytest.raises(ValueError):
        PeriodicTimer(runtime, 0.0, lambda: None)


def test_after_one_shot(runtime):
    node = runtime.add_node("n")
    comp = Component(node, "c")
    fired = []
    comp.after(0.5, fired.append, "x")
    runtime.run_until_idle()
    assert fired == ["x"]


def test_stop_cancels_timers(runtime):
    node = runtime.add_node("n")
    comp = Component(node, "c")
    fired = []
    comp.after(0.5, fired.append, "once")
    comp.every(0.1, lambda: fired.append("tick"))
    comp.stop()
    runtime.run(until=2.0)
    assert fired == []
    assert comp.stopped


def test_stop_is_idempotent_and_calls_hook(runtime):
    node = runtime.add_node("n")
    hooks = []

    class Sub(Component):
        def on_stop(self):
            hooks.append(1)

    comp = Sub(node, "c")
    comp.stop()
    comp.stop()
    assert hooks == [1]


def test_callbacks_guarded_after_node_failure(runtime):
    node = runtime.add_node("n")
    comp = Component(node, "c")
    fired = []
    comp.every(0.1, lambda: fired.append(runtime.now))
    runtime.call_later(0.25, node.fail)
    runtime.run(until=1.0)
    assert len(fired) == 2  # 0.1 and 0.2 only


def test_trace_helper(runtime):
    node = runtime.add_node("n")
    comp = Component(node, "me")
    comp.trace("custom.event", detail=42)
    records = runtime.tracer.select("custom.event")
    assert records and records[0].source == "me" and records[0]["detail"] == 42
