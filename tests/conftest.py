"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.runtime.sim import SimRuntime


@pytest.fixture
def runtime() -> SimRuntime:
    """A fresh simulated runtime with a fixed seed."""
    return SimRuntime(seed=42)


@pytest.fixture
def kernel(runtime: SimRuntime):
    return runtime.kernel
