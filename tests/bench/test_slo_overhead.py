"""SLO-on overhead smoke: the engine must ride the hot path cheaply.

The engine is tap-driven and sketch-backed (fixed memory, O(1) per
span), so an SLO-on run should cost at most a small multiple of an
observe-only run. The band is deliberately generous — this is a smoke
test against pathological regressions (e.g. an accidental O(n) scan per
span), not a micro-benchmark; wall-clock on shared CI is noisy.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.scenarios import run_fig5_experiment

DURATION_S = 8.0

#: SLO-on may cost at most this multiple of observe-only (plus a fixed
#: floor so sub-100ms baselines don't amplify scheduler noise).
MAX_RATIO = 4.0
FLOOR_S = 0.25


def _timed(slo: bool) -> float:
    start = time.perf_counter()
    run_fig5_experiment(seed=55, duration_s=DURATION_S, observe=True, slo=slo)
    return time.perf_counter() - start


@pytest.mark.slow
def test_slo_overhead_within_band():
    _timed(slo=False)  # warm imports/caches out of the measurement
    base = _timed(slo=False)
    with_slo = _timed(slo=True)
    budget = MAX_RATIO * max(base, FLOOR_S)
    assert with_slo <= budget, (
        f"SLO-on run took {with_slo:.3f}s vs observe-only {base:.3f}s "
        f"(budget {budget:.3f}s) — the engine is too heavy for the hot path"
    )


@pytest.mark.slow
def test_slo_state_stays_bounded():
    """Run-length-independent memory: pending/root bookkeeping is purged."""
    runtime = run_fig5_experiment(
        seed=55, duration_s=30.0, observe=True, slo=True
    )
    engine = runtime.slo
    assert engine is not None
    assert len(engine._pending) == 0 or len(engine._pending) < 100
    # Root starts are purged past the horizon, not accumulated all run.
    horizon_traces = len(engine._roots)
    assert horizon_traces < 2000
    for window in engine.windows.values():
        assert len(window) <= window.slices + 1
