"""Reporting helpers: tables and file exports."""

import csv
import json
import math

from repro.bench.harness import ExperimentResult
from repro.bench.reporting import (
    format_comparison_table,
    format_result_table,
    write_results_csv,
    write_results_json,
)


def fake_result(rate, train_samples, predict_samples):
    result = ExperimentResult(rate_hz=rate, duration_s=2.5)
    result.training.extend(train_samples)
    result.predicting.extend(predict_samples)
    result.samples_sensed = 3 * len(train_samples)
    result.wlan_utilization = 0.1
    return result


def test_result_table_layout():
    results = [fake_result(5, [50.0, 60.0], [40.0])]
    text = format_result_table(results, "training")
    assert "Rate(Hz)" in text
    assert "55.000" in text  # avg
    assert "60.000" in text  # max


def test_comparison_table_ratios():
    results = [fake_result(5, [118.0], [50.0])]
    paper = {5: {"avg": 59.0, "max": 59.0}}
    text = format_comparison_table(results, paper, "training", "T")
    assert "2.00" in text  # 118/59


def test_comparison_skips_rates_missing_from_paper():
    results = [fake_result(7, [1.0], [1.0])]
    text = format_comparison_table(results, {5: {"avg": 1, "max": 1}}, "training", "T")
    assert "7" not in text.splitlines()[-1]


def test_csv_export(tmp_path):
    results = [fake_result(5, [50.0, 60.0], [40.0]), fake_result(10, [70.0], [45.0])]
    path = write_results_csv(results, tmp_path / "out.csv")
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 2
    assert float(rows[0]["train_avg_ms"]) == 55.0
    assert int(rows[1]["rate_hz"].rstrip(".0") or 10) or True
    assert float(rows[1]["predict_avg_ms"]) == 45.0


def test_json_export(tmp_path):
    results = [fake_result(5, [50.0], [40.0])]
    path = write_results_json(results, tmp_path / "out.json")
    data = json.loads(path.read_text())
    assert data[0]["rate_hz"] == 5
    assert math.isclose(data[0]["training"]["avg"], 50.0)
