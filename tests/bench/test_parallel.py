"""The parallel multi-seed runner: determinism and hard failure semantics.

The merged result of ``run_parallel`` must be a pure function of the
(task, spec, seeds) request: byte-identical whether it ran serially or
on any number of worker processes, in the caller's seed order. And a
worker that raises or dies is a hard error — a merged result never
silently omits a seed.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.bench.parallel import (
    PARALLEL_TASKS,
    ParallelRunError,
    merge_digest,
    run_parallel,
)
from repro.errors import ConfigurationError

SEEDS = [3, 0, 7]  # deliberately unsorted: merge order follows the caller


def test_serial_and_parallel_chaos_runs_are_byte_identical():
    serial = run_parallel("chaos", "sensor_flap", SEEDS, workers=1)
    two = run_parallel("chaos", "sensor_flap", SEEDS, workers=2)
    eight = run_parallel("chaos", "sensor_flap", SEEDS, workers=8)
    assert two == serial
    assert eight == serial
    assert merge_digest(two) == merge_digest(serial)
    assert merge_digest(eight) == merge_digest(serial)
    # Order is the caller's, keyed by seed — not completion order.
    assert [row["seed"] for row in serial] == SEEDS
    assert all(row["invariants_ok"] for row in serial)


def test_serial_and_parallel_fig5_runs_are_byte_identical():
    seeds = [55, 56]
    serial = run_parallel("fig5", "2.0", seeds, workers=1)
    parallel = run_parallel("fig5", "2.0", seeds, workers=2)
    assert parallel == serial
    assert [row["seed"] for row in serial] == seeds
    assert all(row["profile_digest"] for row in serial)
    # Different seeds are genuinely different runs.
    assert serial[0]["profile_digest"] != serial[1]["profile_digest"]


def test_worker_exception_is_a_hard_error():
    """A failing seed fails the whole run, naming the seed."""
    with pytest.raises(ParallelRunError, match="seed"):
        run_parallel("chaos", "no-such-scenario", [0, 1], workers=2)


def _exit_task(spec: str, seed: int) -> dict:
    if seed == 1:
        os._exit(13)  # simulate a worker process dying mid-task
    return {"seed": seed}


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="test-registered task reaches workers only via fork",
)
def test_worker_death_is_a_hard_error(monkeypatch):
    monkeypatch.setitem(PARALLEL_TASKS, "exit", _exit_task)
    with pytest.raises(ParallelRunError):
        run_parallel("exit", "", [0, 1], workers=2)


def test_unknown_task_rejected():
    with pytest.raises(ConfigurationError, match="unknown parallel task"):
        run_parallel("nope", "", [0])


def test_duplicate_seeds_rejected():
    with pytest.raises(ConfigurationError, match="duplicate seeds"):
        run_parallel("chaos", "sensor_flap", [0, 0])
