"""The continuous-benchmark record format and regression gate."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.continuous import (
    BENCH_RUNNERS,
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    compare_bench,
    environment_fingerprint,
    load_bench,
    run_bench,
    write_bench,
)
from repro.errors import ConfigurationError


def make_record(**sim) -> BenchRecord:
    record = BenchRecord(name="t")
    record.sim = dict(sim) or {"x": 1, "nested": {"a": 2.5}}
    record.wall = {"elapsed_s": 1.0, "events_per_s": 1000.0}
    return record


def test_record_roundtrips_through_json(tmp_path):
    record = make_record()
    path = write_bench(record, tmp_path)
    assert path.name == "BENCH_t.json"
    loaded = load_bench(tmp_path, "t")
    assert loaded.to_dict() == record.to_dict()
    # On-disk form is stable: sorted keys, trailing newline.
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text)["schema_version"] == BENCH_SCHEMA_VERSION


def test_identical_records_pass_the_gate():
    comparison = compare_bench(make_record(), make_record())
    assert comparison.ok
    assert not comparison.failures


def test_sim_drift_fails_with_leaf_paths():
    current = make_record()
    current.sim["nested"] = {"a": 2.6}
    comparison = compare_bench(current, make_record())
    assert not comparison.ok
    assert any("nested.a" in failure for failure in comparison.failures)


def test_missing_and_new_sim_keys_are_reported():
    baseline = make_record()
    current = make_record()
    del current.sim["x"]
    current.sim["y"] = 9
    comparison = compare_bench(current, baseline)
    assert not comparison.ok
    joined = "\n".join(comparison.failures)
    assert "x: missing" in joined
    assert "y: new key" in joined


def test_newer_baseline_schema_refuses_to_compare():
    baseline = make_record()
    baseline.schema_version = BENCH_SCHEMA_VERSION + 1
    comparison = compare_bench(make_record(), baseline)
    assert not comparison.ok
    assert "newer than this checkout" in comparison.failures[0]


def test_stale_baseline_schema_fails_loudly_same_environment():
    """An old-schema baseline made on *this* machine is a hard failure
    telling the operator to regenerate — never a skip."""
    baseline = make_record()
    baseline.schema_version = BENCH_SCHEMA_VERSION - 1
    comparison = compare_bench(make_record(), baseline)
    assert not comparison.ok
    assert "stale baseline (same environment)" in comparison.failures[0]
    assert "regenerate" in comparison.failures[0]


def test_stale_baseline_schema_fails_loudly_cross_environment():
    baseline = make_record()
    baseline.schema_version = BENCH_SCHEMA_VERSION - 1
    baseline.env = dict(baseline.env, machine="riscv128")
    comparison = compare_bench(make_record(), baseline)
    assert not comparison.ok
    assert "stale baseline (different environment)" in comparison.failures[0]


def test_require_fresh_baseline_detects_stale_committed_record(tmp_path, monkeypatch):
    """The pytest-bench hook refuses to run alongside a stale committed
    baseline whose fingerprint matches this machine."""
    import importlib.util
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", repo_root / "benchmarks" / "conftest.py"
    )
    bench_conftest = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench_conftest)

    stale = make_record()
    stale.schema_version = BENCH_SCHEMA_VERSION - 1
    write_bench(stale, tmp_path / "baselines")
    monkeypatch.setattr(bench_conftest, "__file__", str(tmp_path / "conftest.py"))
    with pytest.raises(RuntimeError, match="stale baseline"):
        bench_conftest.require_fresh_baseline("t")
    # Missing baseline: nothing to be stale about.
    bench_conftest.require_fresh_baseline("absent")
    # Fresh schema: fine.
    write_bench(make_record(), tmp_path / "baselines")
    bench_conftest.require_fresh_baseline("t")


def test_wall_regression_gates_only_same_environment():
    baseline = make_record()
    slow = make_record()
    slow.wall["events_per_s"] = 100.0  # 10x slower
    # Same fingerprint: gated.
    gated = compare_bench(slow, baseline, wall_tolerance=0.35)
    assert not gated.ok
    assert any("events_per_s" in failure for failure in gated.failures)
    # Different machine: reported as a note, never gated.
    other = make_record()
    other.wall["events_per_s"] = 100.0
    other.env = dict(other.env, machine="riscv128")
    ungated = compare_bench(other, baseline, wall_tolerance=0.35)
    assert ungated.ok
    assert any("not gated" in note for note in ungated.notes)


def test_wall_improvement_never_fails():
    fast = make_record()
    fast.wall["events_per_s"] = 99999.0
    assert compare_bench(fast, make_record()).ok


def test_environment_fingerprint_shape():
    env = environment_fingerprint()
    assert set(env) == {"python", "implementation", "machine", "system"}
    assert all(isinstance(v, str) and v for v in env.values())


def test_unknown_benchmark_raises():
    with pytest.raises(ConfigurationError, match="unknown benchmark"):
        run_bench("nope")


@pytest.mark.slow
def test_saturation_bench_is_deterministic_and_tells_the_story():
    assert set(BENCH_RUNNERS) >= {"fig5", "saturation"}
    first = run_bench("saturation")
    second = run_bench("saturation")
    assert first.sim == second.sim  # sim half is a pure function of the seed
    rates = first.sim["rates"]
    assert rates["20hz"]["cpu_utilization"]["module-e"] < 0.95
    assert rates["40hz"]["cpu_utilization"]["module-e"] >= 0.99
    comparison = compare_bench(second, first)
    assert comparison.ok, comparison.failures


@pytest.mark.slow
def test_committed_baseline_matches_current_code():
    """The CI gate in miniature: HEAD must reproduce the committed records."""
    from pathlib import Path

    baseline_dir = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"
    for name in ("failover", "fig5", "saturation"):
        baseline = load_bench(baseline_dir, name)
        comparison = compare_bench(run_bench(name), baseline)
        assert comparison.ok, (name, comparison.failures)


# ---------------------------------------------------------------------------
# Schema v3: per-flow latency summaries
# ---------------------------------------------------------------------------

_FLOW_KEYS = {"count", "p50_ms", "p95_ms", "p99_ms", "max_ms"}
_BASELINES = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"


def test_committed_baselines_are_v3_with_flows():
    for name in ("fig5", "failover"):
        record = load_bench(_BASELINES, name)
        assert record.schema_version == BENCH_SCHEMA_VERSION
        assert record.sim["flows"], name
        for stage, summary in record.sim["flows"].items():
            assert set(summary) == _FLOW_KEYS, (name, stage)
            assert summary["count"] >= 1
            assert (
                summary["p50_ms"]
                <= summary["p95_ms"]
                <= summary["p99_ms"]
                <= summary["max_ms"]
            )
    saturation = load_bench(_BASELINES, "saturation")
    assert saturation.schema_version == BENCH_SCHEMA_VERSION
    for rate, row in saturation.sim["rates"].items():
        assert set(row["flows"]) == {"train", "predict"}, rate
        for summary in row["flows"].values():
            assert set(summary) == _FLOW_KEYS


def test_committed_baselines_contain_recipe_sink_flows():
    """The soundness gate needs the sink stages to be present."""
    assert "alert-messaging" in load_bench(_BASELINES, "fig5").sim["flows"]
    assert "train" in load_bench(_BASELINES, "failover").sim["flows"]


def test_flows_from_bench_reads_v3_records():
    from repro.lint.latency import flows_from_bench

    record = load_bench(_BASELINES, "fig5")
    flows = flows_from_bench(record)
    assert flows == record.sim["flows"]
    # The raw dict form works too (CLI --validate path).
    assert flows_from_bench(record.to_dict()) == record.sim["flows"]


def test_flow_drift_fails_the_gate():
    baseline = make_record(flows={"act": {"count": 3, "max_ms": 1.0}})
    current = make_record(flows={"act": {"count": 3, "max_ms": 2.0}})
    comparison = compare_bench(current, baseline)
    assert not comparison.ok
    assert any("flows.act.max_ms" in failure for failure in comparison.failures)
