import pytest

from repro.errors import ProtocolError
from repro.mqtt.packets import Packet, PacketType


def test_round_trip_all_constructors():
    packets = [
        Packet.connect("c1", clean_session=False, keepalive_s=10.0),
        Packet.connack(session_present=True),
        Packet.publish("t/x", {"v": 1}, qos=1, packet_id=7, headers={"ts": 0.5}),
        Packet.puback(7),
        Packet.subscribe(1, [("a/#", 1), ("b", 0)]),
        Packet.suback(1, [1, 0]),
        Packet.unsubscribe(2, ["a/#"]),
        Packet.unsuback(2),
        Packet.pingreq(),
        Packet.pingresp(),
        Packet.disconnect(),
    ]
    for packet in packets:
        decoded = Packet.decode(packet.encode())
        assert decoded.type == packet.type
        assert decoded.fields == packet.fields


def test_qos1_requires_packet_id():
    with pytest.raises(ProtocolError):
        Packet.publish("t", 1, qos=1)


def test_qos2_unsupported():
    with pytest.raises(ProtocolError):
        Packet.publish("t", 1, qos=2)


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError):
        Packet.decode(b'{"no_type": 1}')
    with pytest.raises(ProtocolError):
        Packet.decode(b'{"_t": "bogus"}')
    with pytest.raises(ProtocolError):
        Packet.decode(b"[1,2,3]")


def test_missing_field_raises_protocol_error():
    packet = Packet(PacketType.PUBLISH, {})
    with pytest.raises(ProtocolError, match="topic"):
        packet["topic"]


def test_get_with_default():
    packet = Packet.pingreq()
    assert packet.get("anything", 42) == 42


def test_publish_defaults():
    packet = Packet.publish("t", "payload")
    assert packet["qos"] == 0
    assert packet["retain"] is False
    assert packet["dup"] is False
    assert packet["headers"] == {}
