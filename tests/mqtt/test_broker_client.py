"""Broker + client behaviour over the simulated network."""

import pytest

from repro.errors import NotConnectedError
from repro.mqtt.broker import Broker
from repro.mqtt.client import MqttClient
from repro.runtime.sim import SimRuntime


@pytest.fixture
def runtime():
    return SimRuntime(seed=11)


@pytest.fixture
def broker(runtime):
    return Broker(runtime.add_node("hub"))


def make_client(runtime, broker, name, **kwargs):
    client = MqttClient(
        runtime.add_node(name), broker.address, client_id=name, **kwargs
    )
    client.connect()
    return client


def settle(runtime, duration=1.0):
    runtime.run(until=runtime.now + duration)


class TestConnection:
    def test_connect_creates_session(self, runtime, broker):
        make_client(runtime, broker, "c1")
        settle(runtime)
        assert broker.session_count() == 1
        assert broker.stats.connects == 1

    def test_operations_before_connack_are_buffered(self, runtime, broker):
        client = MqttClient(runtime.add_node("n"), broker.address, client_id="c")
        got = []
        client.connect()
        client.subscribe("t", lambda t, p, pkt: got.append(p))
        client.publish("t", "early")  # legal: buffered while connecting
        settle(runtime)
        assert client.connected

    def test_publish_without_connect_raises(self, runtime, broker):
        client = MqttClient(runtime.add_node("n"), broker.address, client_id="c")
        with pytest.raises(NotConnectedError):
            client.publish("t", 1)

    def test_disconnect_removes_clean_session(self, runtime, broker):
        client = make_client(runtime, broker, "c1")
        settle(runtime)
        client.disconnect()
        settle(runtime)
        assert broker.session_count() == 0

    def test_connected_callback(self, runtime, broker):
        called = []
        client = MqttClient(runtime.add_node("n"), broker.address, client_id="c")
        client.connect(on_connected=lambda: called.append(runtime.now))
        settle(runtime)
        assert len(called) == 1


class TestPubSub:
    def test_basic_routing(self, runtime, broker):
        pub = make_client(runtime, broker, "pub")
        sub = make_client(runtime, broker, "sub")
        got = []
        sub.subscribe("sensor/+/temp", lambda t, p, pkt: got.append((t, p)))
        settle(runtime)
        pub.publish("sensor/r1/temp", 21.5)
        pub.publish("sensor/r1/humidity", 40)
        settle(runtime)
        assert got == [("sensor/r1/temp", 21.5)]

    def test_fanout_to_multiple_subscribers(self, runtime, broker):
        pub = make_client(runtime, broker, "pub")
        got_a, got_b = [], []
        sub_a = make_client(runtime, broker, "sa")
        sub_b = make_client(runtime, broker, "sb")
        sub_a.subscribe("t", lambda t, p, pkt: got_a.append(p))
        sub_b.subscribe("t", lambda t, p, pkt: got_b.append(p))
        settle(runtime)
        pub.publish("t", "x")
        settle(runtime)
        assert got_a == ["x"] and got_b == ["x"]

    def test_no_echo_to_publisher_without_subscription(self, runtime, broker):
        pub = make_client(runtime, broker, "pub")
        got = []
        settle(runtime)
        pub.publish("t", "x")
        settle(runtime)
        assert got == []
        assert pub.messages_received == 0

    def test_unsubscribe_stops_delivery(self, runtime, broker):
        pub = make_client(runtime, broker, "pub")
        sub = make_client(runtime, broker, "sub")
        got = []
        subscription = sub.subscribe("t", lambda t, p, pkt: got.append(p))
        settle(runtime)
        pub.publish("t", 1)
        settle(runtime)
        sub.unsubscribe(subscription)
        settle(runtime)
        pub.publish("t", 2)
        settle(runtime)
        assert got == [1]

    def test_overlapping_filters_deliver_once_per_subscription(self, runtime, broker):
        pub = make_client(runtime, broker, "pub")
        sub = make_client(runtime, broker, "sub")
        got = []
        sub.subscribe("a/#", lambda t, p, pkt: got.append("hash"))
        sub.subscribe("a/+", lambda t, p, pkt: got.append("plus"))
        settle(runtime)
        pub.publish("a/b", 1)
        settle(runtime)
        # The broker forwards once per matching client subscription entry;
        # the client dispatches to each matching local callback.
        assert sorted(got).count("hash") >= 1 and sorted(got).count("plus") >= 1

    def test_headers_travel(self, runtime, broker):
        pub = make_client(runtime, broker, "pub")
        sub = make_client(runtime, broker, "sub")
        seen = []
        sub.subscribe("t", lambda t, p, pkt: seen.append(pkt.get("headers")))
        settle(runtime)
        pub.publish("t", 1, headers={"ts": 1.25})
        settle(runtime)
        assert seen == [{"ts": 1.25}]


class TestQoS1:
    def test_puback_stops_retransmission(self, runtime, broker):
        pub = make_client(runtime, broker, "pub", retry_interval_s=1.0)
        settle(runtime)
        pub.publish("t", "x", qos=1)
        settle(runtime, 5.0)
        assert broker.stats.publishes_in == 1  # no dup arrived

    def test_lost_packets_are_retransmitted(self, runtime, broker):
        # 100% loss initially: the PUBLISH never reaches the broker until
        # we heal the channel.
        pub = make_client(runtime, broker, "pub", retry_interval_s=0.5)
        sub = make_client(runtime, broker, "sub")
        got = []
        sub.subscribe("t", lambda t, p, pkt: got.append(p), qos=1)
        settle(runtime)
        runtime.wlan.config = type(runtime.wlan.config)(loss_rate=1.0)
        pub.publish("t", "x", qos=1)
        settle(runtime, 1.2)
        assert got == []
        runtime.wlan.config = type(runtime.wlan.config)(loss_rate=0.0)
        settle(runtime, 3.0)
        assert "x" in got  # retransmission delivered it

    def test_retry_gives_up_after_max(self, runtime, broker):
        pub = make_client(runtime, broker, "pub", retry_interval_s=0.2, max_retries=2)
        settle(runtime)
        runtime.wlan.config = type(runtime.wlan.config)(loss_rate=1.0)
        pub.publish("t", "x", qos=1)
        settle(runtime, 5.0)
        assert pub._inflight == {}

    def test_qos_downgrade_to_subscriber(self, runtime, broker):
        """QoS 1 publish to a QoS 0 subscription is delivered at QoS 0."""
        pub = make_client(runtime, broker, "pub")
        sub = make_client(runtime, broker, "sub")
        qos_seen = []
        sub.subscribe("t", lambda t, p, pkt: qos_seen.append(pkt["qos"]), qos=0)
        settle(runtime)
        pub.publish("t", 1, qos=1)
        settle(runtime)
        assert qos_seen == [0]


class TestRetained:
    def test_retained_delivered_to_late_subscriber(self, runtime, broker):
        pub = make_client(runtime, broker, "pub")
        settle(runtime)
        pub.publish("config/mode", "eco", retain=True)
        settle(runtime)
        late = make_client(runtime, broker, "late")
        got = []
        late.subscribe("config/#", lambda t, p, pkt: got.append((t, p)))
        settle(runtime)
        assert got == [("config/mode", "eco")]

    def test_retained_cleared_by_null_payload(self, runtime, broker):
        pub = make_client(runtime, broker, "pub")
        settle(runtime)
        pub.publish("config/mode", "eco", retain=True)
        settle(runtime)
        pub.publish("config/mode", None, retain=True)
        settle(runtime)
        assert broker.retained_topics() == []

    def test_retained_overwrite(self, runtime, broker):
        pub = make_client(runtime, broker, "pub")
        settle(runtime)
        pub.publish("k", 1, retain=True)
        pub.publish("k", 2, retain=True)
        settle(runtime)
        late = make_client(runtime, broker, "late")
        got = []
        late.subscribe("k", lambda t, p, pkt: got.append(p))
        settle(runtime)
        assert got == [2]


class TestKeepAlive:
    def test_session_expires_without_pings(self, runtime, broker):
        client = make_client(runtime, broker, "c", keepalive_s=2.0)
        settle(runtime)
        assert broker.session_count() == 1
        # Kill the client node so pings stop.
        client.node.fail()
        settle(runtime, 15.0)
        assert broker.session_count() == 0
        assert broker.stats.sessions_expired == 1

    def test_pings_keep_session_alive(self, runtime, broker):
        make_client(runtime, broker, "c", keepalive_s=2.0)
        settle(runtime, 20.0)
        assert broker.session_count() == 1

    def test_persistent_session_survives_expiry(self, runtime, broker):
        client = make_client(
            runtime, broker, "c", clean_session=False, keepalive_s=2.0
        )
        client.subscribe("t", lambda t, p, pkt: None)
        settle(runtime)
        client.node.fail()
        settle(runtime, 15.0)
        # Session retained (disconnected) with its subscriptions.
        assert broker.session_count() == 1
        assert broker.subscription_count() == 1


class TestTakeover:
    def test_reconnect_with_same_id_takes_over(self, runtime, broker):
        first = make_client(runtime, broker, "same")
        settle(runtime)
        second = MqttClient(
            runtime.add_node("other-node"), broker.address, client_id="same"
        )
        second.connect()
        settle(runtime)
        assert broker.session_count() == 1
        assert broker.stats.connects == 2
