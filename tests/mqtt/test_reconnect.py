"""Auto-reconnect: session-loss detection and subscription replay."""

import pytest

from repro.mqtt.broker import Broker
from repro.mqtt.client import MqttClient
from repro.runtime.sim import SimRuntime


@pytest.fixture
def runtime():
    return SimRuntime(seed=29)


def settle(runtime, duration=1.0):
    runtime.run(until=runtime.now + duration)


def make_client(runtime, broker, name, **kwargs):
    kwargs.setdefault("keepalive_s", 2.0)
    client = MqttClient(
        runtime.add_node(name), broker.address, client_id=name, **kwargs
    )
    client.connect()
    return client


def test_broker_restart_recovers_subscriptions(runtime):
    """A broker restart loses every session; auto-reconnecting clients
    re-establish theirs and replay subscriptions, so flows resume."""
    broker_node = runtime.add_node("hub")
    broker = Broker(broker_node)
    pub = make_client(runtime, broker, "pub", auto_reconnect=True)
    sub = make_client(runtime, broker, "sub", auto_reconnect=True)
    got = []
    sub.subscribe("t", lambda _t, p, _pkt: got.append(p))
    settle(runtime)
    pub.publish("t", "before")
    settle(runtime)
    assert got == ["before"]

    # Restart: the old broker component dies with all session state.
    broker.stop()
    restarted = Broker(broker_node)
    assert restarted.session_count() == 0

    # Clients notice the silence, reconnect, and replay subscriptions.
    settle(runtime, 15.0)
    assert pub.connected and sub.connected
    assert sub.reconnects >= 1
    assert restarted.session_count() == 2
    pub.publish("t", "after")
    settle(runtime)
    assert got == ["before", "after"]


def test_reconnect_traced_and_counted(runtime):
    broker_node = runtime.add_node("hub")
    broker = Broker(broker_node)
    client = make_client(runtime, broker, "c", auto_reconnect=True)
    settle(runtime)
    broker.stop()
    Broker(broker_node)
    settle(runtime, 15.0)
    assert client.reconnects == 1
    assert runtime.tracer.count("mqtt.client.session_lost") == 1


def test_no_reconnect_without_optin(runtime):
    broker_node = runtime.add_node("hub")
    broker = Broker(broker_node)
    client = make_client(runtime, broker, "c")  # auto_reconnect off
    settle(runtime)
    broker.stop()
    Broker(broker_node)
    settle(runtime, 15.0)
    assert client.reconnects == 0
    assert not client.connected or client.messages_received == 0


def test_first_connect_does_not_replay(runtime):
    """Replay fires only on reconnects; a fresh session subscribing
    normally must not double-subscribe."""
    broker = Broker(runtime.add_node("hub"))
    client = make_client(runtime, broker, "c", auto_reconnect=True)
    client.subscribe("a", lambda *_: None)
    settle(runtime, 5.0)
    assert runtime.tracer.count("mqtt.client.resubscribed") == 0
    assert broker.subscription_count() == 1


def test_watchdog_retries_until_broker_appears(runtime):
    """A client started before any broker exists connects once one does."""
    broker_node = runtime.add_node("hub")  # no broker bound yet
    client = MqttClient(
        runtime.add_node("c"),
        broker_node.address("mqtt"),
        client_id="c",
        keepalive_s=2.0,
        auto_reconnect=True,
    )
    client.connect()
    settle(runtime, 10.0)
    assert not client.connected
    broker = Broker(broker_node)
    settle(runtime, 10.0)
    assert client.connected
    assert broker.session_count() == 1
