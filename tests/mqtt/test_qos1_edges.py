"""QoS 1 edge cases: give-up, dup-flagged redelivery, sweep races.

Every case asserts the end-to-end accounting contract: a forwarded
QoS 1 message is delivered, given up (traced), or dropped with an
explained reason — never silently lost.
"""

import pytest

from repro.mqtt.broker import Broker
from repro.mqtt.client import MqttClient
from repro.runtime.sim import SimRuntime


@pytest.fixture
def runtime():
    return SimRuntime(seed=17)


def settle(runtime, duration=1.0):
    runtime.run(until=runtime.now + duration)


def make_client(runtime, broker, name, **kwargs):
    client = MqttClient(
        runtime.add_node(name), broker.address, client_id=name, **kwargs
    )
    client.connect()
    return client


def fwd_ids(runtime, event):
    return [
        r.fields.get("fwd_id")
        for r in runtime.tracer.select(event)
        if r.fields.get("fwd_id") is not None
    ]


def test_broker_gives_up_after_max_retransmissions(runtime):
    """A subscriber that dies mid-delivery exhausts the broker's
    retransmission budget; the drop is traced, not silent."""
    broker = Broker(
        runtime.add_node("hub"), retry_interval_s=0.5, max_retries=2
    )
    pub = make_client(runtime, broker, "pub")
    sub = make_client(runtime, broker, "sub", keepalive_s=60.0)
    sub.subscribe("t", lambda *_: None, qos=1)
    settle(runtime)

    sub.node.fail()
    pub.publish("t", "doomed", qos=1)
    settle(runtime, 5.0)

    assert broker.stats.drops_give_up == 1
    forwarded = fwd_ids(runtime, "mqtt.broker.forward")
    assert len(forwarded) == 1
    assert fwd_ids(runtime, "mqtt.broker.give_up") == forwarded
    assert fwd_ids(runtime, "mqtt.client.deliver") == []


def test_slow_subscriber_gets_dup_flagged_redelivery(runtime):
    """A subscriber that blips through the first delivery attempt sees the
    retransmission with the MQTT DUP flag set."""
    broker = Broker(
        runtime.add_node("hub"), retry_interval_s=0.5, max_retries=5
    )
    pub = make_client(runtime, broker, "pub")
    sub = make_client(runtime, broker, "sub", keepalive_s=60.0)
    got = []
    sub.subscribe(
        "t", lambda _t, p, pkt: got.append((p, bool(pkt.get("dup")))), qos=1
    )
    settle(runtime)

    sub.node.fail()  # first delivery attempt dies on the dead radio
    pub.publish("t", "retry-me", qos=1)
    settle(runtime, 0.2)
    sub.node.recover()  # back before the broker's retry timer fires
    settle(runtime, 3.0)

    assert got == [("retry-me", True)]
    deliveries = runtime.tracer.select("mqtt.client.deliver")
    assert [r["dup"] for r in deliveries] == [True]
    # Exactly one forward, delivered on retry: nothing outstanding.
    assert broker.inflight_fwd_ids() == []


def test_reconnect_races_session_sweep(runtime):
    """A persistent-session subscriber that goes silent long enough for
    the sweep to park its in-flight messages gets them, dup-flagged,
    when it reconnects."""
    broker = Broker(
        runtime.add_node("hub"),
        retry_interval_s=2.0,
        max_retries=8,
        sweep_interval_s=1.0,
    )
    pub = make_client(runtime, broker, "pub")
    sub = make_client(
        runtime,
        broker,
        "sub",
        clean_session=False,
        keepalive_s=2.0,
        auto_reconnect=True,
    )
    got = []
    sub.subscribe("t", lambda _t, p, _pkt: got.append(p), qos=1)
    settle(runtime)

    sub.node.fail()
    pub.publish("t", "parked", qos=1)
    # Long enough for the sweep to expire the dead connection and pause
    # the in-flight delivery (persistent session: messages are kept).
    settle(runtime, 6.0)
    assert got == []
    assert len(broker.inflight_fwd_ids()) == 1

    sub.node.recover()
    settle(runtime, 12.0)  # watchdog notices, backs off, reconnects

    assert sub.connected
    assert got == ["parked"]
    assert broker.inflight_fwd_ids() == []
    forwarded = set(fwd_ids(runtime, "mqtt.broker.forward"))
    delivered = set(fwd_ids(runtime, "mqtt.client.deliver"))
    assert forwarded == delivered


def test_clean_session_teardown_drops_are_explained(runtime):
    """A clean-session subscriber that dies loses its in-flight messages,
    but the drop carries a reason and the fwd_ids in the trace."""
    broker = Broker(
        runtime.add_node("hub"),
        retry_interval_s=5.0,  # slower than the sweep: no give-up first
        max_retries=8,
        sweep_interval_s=1.0,
    )
    pub = make_client(runtime, broker, "pub")
    sub = make_client(runtime, broker, "sub", clean_session=True, keepalive_s=2.0)
    sub.subscribe("t", lambda *_: None, qos=1)
    settle(runtime)

    sub.node.fail()
    pub.publish("t", "lost-with-reason", qos=1)
    settle(runtime, 8.0)

    forwarded = fwd_ids(runtime, "mqtt.broker.forward")
    dropped = [
        (r["reason"], list(r["fwd_ids"]))
        for r in runtime.tracer.select("mqtt.broker.inflight_dropped")
    ]
    assert dropped == [("expired", forwarded)]
    assert broker.session_count() == 1  # only the publisher survives
