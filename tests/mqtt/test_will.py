"""Last-will testament behaviour (MQTT 3.1.1 §3.1.2.5 subset)."""

import pytest

from repro.mqtt.broker import Broker
from repro.mqtt.client import MqttClient
from repro.runtime.sim import SimRuntime


@pytest.fixture
def runtime():
    return SimRuntime(seed=13)


@pytest.fixture
def broker(runtime):
    return Broker(runtime.add_node("hub"))


def connect_client(runtime, broker, name, **kwargs):
    client = MqttClient(
        runtime.add_node(name), broker.address, client_id=name, **kwargs
    )
    client.connect()
    return client


def settle(runtime, duration=1.0):
    runtime.run(until=runtime.now + duration)


def test_will_published_on_session_expiry(runtime, broker):
    watcher = connect_client(runtime, broker, "watcher")
    got = []
    watcher.subscribe("status/+", lambda t, p, pkt: got.append((t, p)))
    doomed = connect_client(
        runtime,
        broker,
        "doomed",
        keepalive_s=2.0,
        will={"topic": "status/doomed", "payload": "offline"},
    )
    settle(runtime)
    assert got == []
    doomed.node.fail()  # crash: no DISCONNECT, pings stop
    settle(runtime, 15.0)
    assert got == [("status/doomed", "offline")]
    assert broker.stats.wills_published == 1


def test_clean_disconnect_suppresses_will(runtime, broker):
    watcher = connect_client(runtime, broker, "watcher")
    got = []
    watcher.subscribe("status/+", lambda t, p, pkt: got.append(p))
    polite = connect_client(
        runtime,
        broker,
        "polite",
        keepalive_s=2.0,
        will={"topic": "status/polite", "payload": "offline"},
    )
    settle(runtime)
    polite.disconnect()
    settle(runtime, 15.0)
    assert got == []
    assert broker.stats.wills_published == 0


def test_retained_will_tombstones(runtime, broker):
    """A retained will with null payload clears retained state on crash —
    the pattern the module agents use for crash-leave."""
    announcer = connect_client(
        runtime,
        broker,
        "announcer",
        keepalive_s=2.0,
        will={"topic": "reg/announcer", "payload": None, "retain": True},
    )
    announcer.publish("reg/announcer", {"alive": True}, retain=True)
    settle(runtime)
    assert "reg/announcer" in broker.retained_topics()
    announcer.node.fail()
    settle(runtime, 15.0)
    assert "reg/announcer" not in broker.retained_topics()


def test_will_round_trips_through_connect_packet():
    from repro.mqtt.packets import Packet

    packet = Packet.connect("c", will={"topic": "t", "payload": 1, "qos": 1})
    decoded = Packet.decode(packet.encode())
    assert decoded["will"] == {"topic": "t", "payload": 1, "qos": 1}
    assert Packet.decode(Packet.connect("c").encode()).get("will") is None


def test_module_agent_crash_clears_registry_fast(runtime):
    """Integration: a crashed module disappears from peers' directories at
    keep-alive granularity via its will, well before the directory TTL."""
    from repro.core.middleware import IFoTCluster

    cluster = IFoTCluster(runtime, heartbeat_s=2.0)
    module = cluster.add_module("pi-1")
    # Fast expiry for the test: shorten keepalive and refresh the session.
    module.client.keepalive_s = 2.0
    module.client.refresh_session()
    cluster.settle(1.0)
    directory = cluster.management.directory
    assert any(m.name == "pi-1" for m in directory.modules())
    module.node.fail()
    # Directory TTL is 30 s; the will fires within ~2 * keepalive + sweep.
    cluster.settle(10.0)
    assert not any(m.name == "pi-1" for m in directory.modules())
