import pytest

from repro.errors import TopicError
from repro.mqtt.topics import TopicTree, topic_matches, validate_filter, validate_topic


class TestValidation:
    def test_valid_topics(self):
        for topic in ("a", "a/b/c", "a//b", "sensor/room 1/temp"):
            assert validate_topic(topic) == topic

    def test_topic_rejects_wildcards(self):
        for bad in ("a/+/b", "#", "a/#", "a+b"):
            with pytest.raises(TopicError):
                validate_topic(bad)

    def test_topic_rejects_empty_and_nul(self):
        with pytest.raises(TopicError):
            validate_topic("")
        with pytest.raises(TopicError):
            validate_topic("a\x00b")

    def test_valid_filters(self):
        for f in ("a", "+", "#", "a/+/c", "a/#", "+/+/#"):
            assert validate_filter(f) == f

    def test_filter_hash_must_be_last(self):
        with pytest.raises(TopicError):
            validate_filter("a/#/b")

    def test_filter_wildcard_must_be_whole_level(self):
        for bad in ("a+", "a/b+", "a#", "x/#y"):
            with pytest.raises(TopicError):
                validate_filter(bad)


class TestMatching:
    @pytest.mark.parametrize(
        "topic_filter,topic,expected",
        [
            ("a/b", "a/b", True),
            ("a/b", "a/c", False),
            ("a/+", "a/b", True),
            ("a/+", "a", False),
            ("a/+", "a/b/c", False),
            ("+/b", "a/b", True),
            ("#", "a/b/c", True),
            ("a/#", "a", True),
            ("a/#", "a/b/c", True),
            ("a/#", "b/a", False),
            ("a/+/c", "a/x/c", True),
            ("a/+/c", "a/x/d", False),
            ("a//b", "a//b", True),
            ("a/+/b", "a//b", True),
        ],
    )
    def test_matrix(self, topic_filter, topic, expected):
        assert topic_matches(topic_filter, topic) is expected


class TestTopicTree:
    def test_insert_and_match(self):
        tree = TopicTree()
        tree.insert("a/+", 1)
        tree.insert("a/b", 2)
        tree.insert("#", 3)
        assert sorted(tree.match("a/b")) == [1, 2, 3]
        assert sorted(tree.match("x")) == [3]

    def test_duplicates_kept(self):
        tree = TopicTree()
        tree.insert("a", "v")
        tree.insert("a", "v")
        assert tree.match("a") == ["v", "v"]
        assert len(tree) == 2

    def test_remove(self):
        tree = TopicTree()
        tree.insert("a/b", 1)
        tree.insert("a/b", 2)
        assert tree.remove("a/b", 1) is True
        assert tree.match("a/b") == [2]
        assert tree.remove("a/b", 99) is False
        assert tree.remove("ghost", 1) is False

    def test_remove_prunes_branches(self):
        tree = TopicTree()
        tree.insert("a/b/c/d", 1)
        tree.remove("a/b/c/d", 1)
        assert len(tree) == 0
        assert list(tree.filters()) == []

    def test_filters_listing(self):
        tree = TopicTree()
        tree.insert("a/#", 1)
        tree.insert("b/+/c", 2)
        assert sorted(tree.filters()) == ["a/#", "b/+/c"]

    def test_match_agrees_with_topic_matches(self):
        filters = ["a/b", "a/+", "a/#", "+/b", "#", "x/+/z"]
        tree = TopicTree()
        for f in filters:
            tree.insert(f, f)
        for topic in ("a/b", "a/c", "x/y/z", "q", "a/b/c"):
            expected = sorted(f for f in filters if topic_matches(f, topic))
            assert sorted(tree.match(topic)) == expected

    def test_hash_matches_parent_level(self):
        tree = TopicTree()
        tree.insert("sport/#", 1)
        assert tree.match("sport") == [1]
