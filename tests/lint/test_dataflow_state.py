"""State-declaration soundness (SAN020/SAN021): injected violations,
the acceptance pair, coverage propagation, and suppression routing."""

import textwrap

from repro.lint import analyze_state_soundness, lint_source


def analyze(tmp_path, source: str, name: str = "fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return analyze_state_soundness([str(path)])


#: The acceptance pair's broken half: a periodic component counting ticks
#: in a plain attribute — no tracked_state cell anywhere, so the dynamic
#: sanitizer can never see a race on it.
TOY_UNDECLARED = """\
from repro.runtime.component import Component


class ToyCounter(Component):
    def __init__(self, node):
        super().__init__(node, "toy")
        self.ticks = 0
        self.every(1.0, self._tick)

    def _tick(self):
        self.ticks += 1
"""

#: The fixed half: same component, state declared and noted.
TOY_TRACKED = """\
from repro.runtime.component import Component
from repro.runtime.state import tracked_state


class ToyCounter(Component):
    def __init__(self, node):
        super().__init__(node, "toy")
        self._cell = tracked_state(node.runtime, "toy", "ticks")
        self.ticks = 0
        self.every(1.0, self._tick)

    def _tick(self):
        self._cell.note_write()
        self.ticks += 1
"""


class TestAcceptancePair:
    def test_undeclared_toy_is_caught_with_exact_anchor(self, tmp_path):
        run = analyze(tmp_path, TOY_UNDECLARED)
        assert [d.rule for d in run.diagnostics] == ["SAN020"]
        diag = run.diagnostics[0]
        # Anchored to `self.ticks += 1` inside _tick, not the __init__ one.
        assert diag.line == 11
        assert "ToyCounter._tick" in diag.message
        assert "self.ticks" in diag.message

    def test_tracked_toy_passes(self, tmp_path):
        run = analyze(tmp_path, TOY_TRACKED)
        assert run.diagnostics == []

    def test_init_mutations_are_exempt(self, tmp_path):
        # Both halves assign self.ticks in __init__; neither flags it.
        for source in (TOY_UNDECLARED, TOY_TRACKED):
            run = analyze(tmp_path, source)
            assert all(d.line != 8 for d in run.diagnostics)


class TestPartialTracking:
    def test_uncovered_mutation_in_cell_owning_class_is_san021(self, tmp_path):
        run = analyze(
            tmp_path,
            """\
            from repro.runtime.component import Component
            from repro.runtime.state import tracked_state


            class Partial(Component):
                def __init__(self, node):
                    super().__init__(node, "p")
                    self._cell = tracked_state(node.runtime, "p", "a")
                    self.every(1.0, self._tick)

                def _tick(self):
                    self.untracked = 1
            """,
        )
        assert [(d.rule, d.line) for d in run.diagnostics] == [("SAN021", 12)]

    def test_coverage_flows_through_called_helpers(self, tmp_path):
        # The handler notes the cell, then delegates the mutation to a
        # helper: the helper is covered via the instance-scoped edge.
        run = analyze(
            tmp_path,
            """\
            from repro.runtime.component import Component
            from repro.runtime.state import tracked_state


            class Delegating(Component):
                def __init__(self, node):
                    super().__init__(node, "d")
                    self._cell = tracked_state(node.runtime, "d", "a")
                    self.every(1.0, self._tick)

                def _tick(self):
                    self._cell.note_write()
                    self._bump()

                def _bump(self):
                    self.count = 1
            """,
        )
        assert run.diagnostics == []

    def test_super_call_covers_the_override(self, tmp_path):
        run = analyze(
            tmp_path,
            """\
            from repro.runtime.component import Component
            from repro.runtime.state import tracked_state


            class Base(Component):
                def __init__(self, node):
                    super().__init__(node, "b")
                    self._cell = tracked_state(node.runtime, "b", "s")
                    self.every(1.0, self.work)

                def work(self):
                    self._cell.note_write()


            class Child(Base):
                def work(self):
                    super().work()
                    self.extra = 1
            """,
        )
        assert run.diagnostics == []

    def test_property_backed_cell_is_not_flagged(self, tmp_path):
        # The runtime Node pattern: `self.alive = x` runs a property
        # setter that writes the cell — a mutation of the property name
        # is a call, not untracked state.
        run = analyze(
            tmp_path,
            """\
            from repro.runtime.component import Component
            from repro.runtime.state import tracked_state


            class Gadget(Component):
                def __init__(self, node):
                    super().__init__(node, "g")
                    self._alive = tracked_state(node.runtime, "g", "alive")
                    self.every(1.0, self.fail)

                @property
                def alive(self):
                    return self._alive.value

                @alive.setter
                def alive(self, up):
                    self._alive.value = up

                def fail(self):
                    self.alive = False
            """,
        )
        assert run.diagnostics == []


class TestScoping:
    def test_non_component_helper_classes_are_not_flagged(self, tmp_path):
        # A cell-less value class mutated from a schedule-reachable
        # method belongs to the component driving it.
        run = analyze(
            tmp_path,
            """\
            class RunningStats:
                def add(self, x):
                    self.total = getattr(self, "total", 0.0) + x
            """,
        )
        assert run.diagnostics == []

    def test_unreachable_methods_are_not_flagged(self, tmp_path):
        run = analyze(
            tmp_path,
            """\
            from repro.runtime.component import Component


            class Idle(Component):
                def helper_nobody_calls(self):
                    self.x = 1
            """,
        )
        # Not registered with any scheduling call and not a lifecycle
        # root: nothing schedule-reachable mutates state.
        assert run.diagnostics == []

    def test_lifecycle_roots_are_reachable(self, tmp_path):
        run = analyze(
            tmp_path,
            """\
            from repro.runtime.component import Component


            class Sink(Component):
                def on_record(self, stream, record):
                    self.seen = 1
            """,
        )
        assert [d.rule for d in run.diagnostics] == ["SAN020"]


class TestSuppressionRouting:
    def test_san_ok_suppresses_san020(self, tmp_path):
        source = TOY_UNDECLARED.replace(
            "        self.ticks += 1",
            "        self.ticks += 1  # repro: san-ok[SAN020] commutative",
        )
        run = analyze(tmp_path, source)
        assert run.diagnostics == []
        assert run.suppressed == 1

    def test_lint_ok_does_not_suppress_san_rules(self, tmp_path):
        source = TOY_UNDECLARED.replace(
            "        self.ticks += 1",
            "        self.ticks += 1  # repro: lint-ok[SAN020]",
        )
        run = analyze(tmp_path, source)
        assert [d.rule for d in run.diagnostics] == ["SAN020"]
        assert run.suppressed == 0

    def test_san_ok_does_not_suppress_engine_rules(self):
        run = lint_source(
            "import time\n"
            "x = time.time()  # repro: san-ok[DET001]\n"
        )
        assert [d.rule for d in run.diagnostics] == ["DET001"]
        assert run.suppressed == 0

    def test_wrong_rule_id_in_san_ok_does_not_apply(self, tmp_path):
        source = TOY_UNDECLARED.replace(
            "        self.ticks += 1",
            "        self.ticks += 1  # repro: san-ok[SAN021]",
        )
        run = analyze(tmp_path, source)
        assert [d.rule for d in run.diagnostics] == ["SAN020"]


class TestSelfAnalysis:
    def test_repository_is_state_sound(self):
        from pathlib import Path

        from repro.lint.report import render_text

        package = Path(__file__).resolve().parents[2] / "src" / "repro"
        run = analyze_state_soundness([str(package)])
        assert run.ok(strict=True), render_text(
            run.diagnostics, strict=True, label="san"
        )
