"""The unified rule catalog cannot drift from the code.

Regression for the catalog-drift bug: ``repro lint --catalog``, the
README rule table and SARIF rule metadata previously assembled their
rule lists independently and disagreed. All three now render from
:func:`repro.lint.catalog.unified_catalog`; these tests assert that
every rule id *emitted anywhere in the source* appears in the registry
and in each rendering, RCP24x included.
"""

import json
import re
from pathlib import Path

from repro.lint.catalog import (
    README_CATALOG_BEGIN,
    README_CATALOG_END,
    catalog_descriptions,
    render_catalog_markdown,
    render_catalog_text,
    unified_catalog,
)
from repro.lint.report import render_sarif
from repro.util.validate import Diagnostic, Severity

REPO = Path(__file__).resolve().parents[2]

#: Rule ids mentioned in waiver syntax/docs but intentionally uncatalogued.
_RULE_ID = re.compile(r"\"((?:DET|FLG|RCP|SAN|SLO)\d{3})\"")


def emitted_rule_ids() -> set[str]:
    """Every rule-id string literal in the source tree."""
    found: set[str] = set()
    for path in (REPO / "src" / "repro").rglob("*.py"):
        found.update(_RULE_ID.findall(path.read_text()))
    return found


def test_every_emitted_rule_is_registered():
    registered = {entry.rule_id for entry in unified_catalog()}
    missing = emitted_rule_ids() - registered
    assert not missing, f"rules emitted but not in the catalog: {sorted(missing)}"


def test_catalog_is_id_ordered_and_unique():
    ids = [entry.rule_id for entry in unified_catalog()]
    assert ids == sorted(ids)
    assert len(ids) == len(set(ids))


def test_latency_rules_present():
    ids = {entry.rule_id for entry in unified_catalog()}
    assert {"RCP240", "RCP241", "RCP242", "RCP243", "RCP244"} <= ids


def test_slo_rules_present():
    ids = {entry.rule_id for entry in unified_catalog()}
    assert {"SLO300", "SLO301", "SLO302", "SLO310", "SLO320"} <= ids


def test_text_rendering_lists_every_rule():
    text = render_catalog_text()
    for entry in unified_catalog():
        assert entry.rule_id in text


def test_readme_table_matches_registry():
    readme = (REPO / "README.md").read_text()
    assert README_CATALOG_BEGIN in readme and README_CATALOG_END in readme
    start = readme.index(README_CATALOG_BEGIN) + len(README_CATALOG_BEGIN)
    end = readme.index(README_CATALOG_END)
    committed = readme[start:end].strip()
    assert committed == render_catalog_markdown(), (
        "README rule table drifted from the registry — regenerate the "
        "block between the rule-catalog markers with "
        "repro.lint.catalog.render_catalog_markdown()"
    )


def test_sarif_metadata_comes_from_registry():
    descriptions = catalog_descriptions()
    diagnostics = [
        Diagnostic(
            rule=entry.rule_id,
            severity=entry.severity,
            message="x",
            where="test",
        )
        for entry in unified_catalog()
    ]
    sarif = json.loads(render_sarif(diagnostics))
    rules = {
        rule["id"]: rule["shortDescription"]["text"]
        for rule in sarif["runs"][0]["tool"]["driver"]["rules"]
    }
    for entry in unified_catalog():
        assert rules[entry.rule_id] == descriptions[entry.rule_id]
        # The description must be real metadata, not the id fallback.
        assert rules[entry.rule_id] != entry.rule_id


def test_severities_are_severity_instances():
    for entry in unified_catalog():
        assert isinstance(entry.severity, Severity)
