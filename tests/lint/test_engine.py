"""Engine behavior: suppressions, file walking, injected violations."""

import json
import textwrap

import pytest

from repro.lint import lint_paths, lint_source, render_json, render_text


class TestSuppression:
    def test_line_suppression_with_rule(self):
        run = lint_source(
            "import time\n"
            "x = time.time()  # repro: lint-ok[DET001]\n"
        )
        assert run.diagnostics == []
        assert run.suppressed == 1

    def test_line_suppression_wrong_rule_does_not_apply(self):
        run = lint_source(
            "import time\n"
            "x = time.time()  # repro: lint-ok[DET003]\n"
        )
        assert [d.rule for d in run.diagnostics] == ["DET001"]
        assert run.suppressed == 0

    def test_bare_suppression_covers_all_rules(self):
        run = lint_source(
            "import time, random\n"
            "x = time.time() + random.random()  # repro: lint-ok\n"
        )
        assert run.diagnostics == []
        assert run.suppressed == 2

    def test_file_wide_suppression(self):
        run = lint_source(
            "# repro: lint-ok-file[DET001]\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.monotonic()\n"
        )
        assert run.diagnostics == []
        assert run.suppressed == 2

    def test_marker_inside_string_is_inert(self):
        run = lint_source(
            'import time\n'
            'marker = "# repro: lint-ok-file[DET001]"\n'
            'x = time.time()\n'
        )
        assert [d.rule for d in run.diagnostics] == ["DET001"]

    def test_multiple_rules_in_one_marker(self):
        run = lint_source(
            "import time, random\n"
            "x = time.time() + random.random()"
            "  # repro: lint-ok[DET001, DET002]\n"
        )
        assert run.diagnostics == []
        assert run.suppressed == 2


class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        run = lint_source("def broken(:\n")
        assert [d.rule for d in run.diagnostics] == ["LINT000"]
        assert not run.ok()

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(KeyError, match="DET999"):
            lint_source("x = 1\n", rule_ids=["DET999"])

    def test_rule_filter(self):
        source = "import time, random\nx = time.time()\ny = random.random()\n"
        run = lint_source(source, rule_ids=["DET002"])
        assert [d.rule for d in run.diagnostics] == ["DET002"]

    def test_injected_violations_located(self, tmp_path):
        """The acceptance fixture: seed two violations, find both."""
        clean = tmp_path / "clean.py"
        clean.write_text("VALUES = [1, 2, 3]\n", encoding="utf-8")
        seeded = tmp_path / "seeded.py"
        seeded.write_text(
            textwrap.dedent(
                """
                import time


                def stamp(record):
                    record["at"] = time.time()
                    return record


                def fanout(streams):
                    targets = set(streams)
                    for name in targets:
                        yield name
                """
            ),
            encoding="utf-8",
        )
        run = lint_paths([tmp_path])
        assert run.files_checked == 2
        by_rule = {d.rule: d for d in run.diagnostics}
        assert set(by_rule) == {"DET001", "DET003"}
        wall = by_rule["DET001"]
        assert wall.file == str(seeded)
        assert wall.line == 6
        seti = by_rule["DET003"]
        assert seti.file == str(seeded)
        assert seti.line == 12
        assert not run.ok()

    def test_diagnostics_sorted_by_location(self, tmp_path):
        (tmp_path / "b.py").write_text("import time\nx = time.time()\n")
        (tmp_path / "a.py").write_text("import time\nx = time.time()\n")
        run = lint_paths([tmp_path])
        files = [d.file for d in run.diagnostics]
        assert files == sorted(files)


class TestReport:
    def test_text_report_mentions_verdict_and_counts(self):
        run = lint_source("import time\nx = time.time()\n", "mod.py")
        text = render_text(
            run.diagnostics, suppressed=run.suppressed, files_checked=1
        )
        assert "lint FAIL" in text
        assert "mod.py:2" in text
        assert "1 error" in text

    def test_json_report_round_trips(self):
        run = lint_source("import time\nx = time.time()\n", "mod.py")
        payload = json.loads(render_json(run.diagnostics, files_checked=1))
        assert payload["ok"] is False
        assert payload["counts"]["error"] == 1
        (diag,) = payload["diagnostics"]
        assert diag["rule"] == "DET001"
        assert diag["file"] == "mod.py"
        assert diag["line"] == 2

    def test_strict_promotes_warnings(self):
        run = lint_source("f = open('out.txt', 'w')\n")
        assert run.ok(strict=False)
        assert not run.ok(strict=True)


def test_self_lint_is_green():
    """The repo's own sources pass the strict gate (the CI contract)."""
    from pathlib import Path

    package = Path(__file__).resolve().parents[2] / "src" / "repro"
    run = lint_paths([package])
    assert run.ok(strict=True), render_text(run.diagnostics, strict=True)
