"""The pre-deployment static gate in Management (Fig. 6 step 2)."""

import pytest

from repro.core.recipe import Recipe, TaskSpec
from repro.errors import StaticCheckError
from repro.sensors.devices import FixedPayloadModel

from tests.core.conftest import ClusterHarness, harness  # noqa: F401


def rate_recipe(rate_hz):
    return Recipe(
        "hot",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": rate_hz},
                capabilities=["sensor:sample"],
            ),
            TaskSpec(
                "learn",
                "train",
                inputs=["raw"],
                params={"model": "m", "label_key": "label"},
            ),
        ],
    )


def cyclic_recipe_dict():
    return {
        "recipe": "loop",
        "tasks": [
            {"id": "a", "operator": "map", "inputs": ["c-out"], "outputs": ["a-out"]},
            {"id": "b", "operator": "map", "inputs": ["a-out"], "outputs": ["b-out"]},
            {"id": "c", "operator": "map", "inputs": ["b-out"], "outputs": ["c-out"]},
        ],
    }


def test_cyclic_recipe_dict_rejected_before_any_deploy(harness):  # noqa: F811
    module = harness.add_module("pi-1")
    harness.settle()
    management = harness.cluster.management
    with pytest.raises(StaticCheckError) as excinfo:
        management.submit_recipe(cyclic_recipe_dict())
    assert any(d.rule == "RCP104" for d in excinfo.value.diagnostics)
    harness.settle(2.0)
    # Rejected statically: no deploy command ever reached the module.
    assert module.agent.deploys_handled == 0
    assert module.operators == {}


def test_dangling_recipe_dict_rejected(harness):  # noqa: F811
    harness.settle()
    broken = {
        "recipe": "ghost",
        "tasks": [
            {"id": "m", "operator": "map", "inputs": ["nowhere"], "outputs": ["out"]}
        ],
    }
    with pytest.raises(StaticCheckError) as excinfo:
        harness.cluster.management.submit_recipe(broken)
    rules = {d.rule for d in excinfo.value.diagnostics}
    assert "RCP103" in rules


def test_rate_infeasible_allowed_by_default(harness):  # noqa: F811
    """The paper measures saturation; the default gate must not forbid it."""
    module = harness.add_module("pi-1")
    module.attach_sensor("sample", FixedPayloadModel())
    harness.settle()
    assignment = harness.cluster.management.submit_recipe(rate_recipe(40))
    assert assignment is not None
    # The finding is still on the record, as a trace event.
    findings = [
        e
        for e in harness.runtime.tracer.select(event="agent.static_check")
        if "RCP110" in str(e.fields)
    ]
    assert findings


def test_rate_infeasible_rejected_in_strict_mode(harness):  # noqa: F811
    module = harness.add_module("pi-1")
    module.attach_sensor("sample", FixedPayloadModel())
    harness.settle()
    agent = harness.cluster.management.agent
    agent.static_check = "strict"
    with pytest.raises(StaticCheckError) as excinfo:
        harness.cluster.management.submit_recipe(rate_recipe(40))
    assert any(d.rule == "RCP110" for d in excinfo.value.diagnostics)
    harness.settle(2.0)
    assert module.agent.deploys_handled == 0
    # A feasible rate passes the same strict gate.
    assert harness.cluster.management.submit_recipe(rate_recipe(5)) is not None


def test_gate_can_be_turned_off(harness):  # noqa: F811
    harness.settle()
    agent = harness.cluster.management.agent
    agent.static_check = "off"
    # Even a structurally broken dict goes through to Recipe.from_dict,
    # which raises its own (non-diagnostic) error — the gate stays out
    # of the way.
    from repro.errors import RecipeError

    with pytest.raises(RecipeError):
        harness.cluster.management.submit_recipe(cyclic_recipe_dict())


def test_remote_submit_of_broken_recipe_does_not_crash_leader(harness):  # noqa: F811
    """A bad recipe shipped to a module leader is trace-rejected."""
    module = harness.add_module("pi-1")
    module.attach_sensor("sample", FixedPayloadModel())
    harness.settle()
    bad = {
        "recipe": "ghost",
        "tasks": [
            {"id": "m", "operator": "map", "inputs": ["nowhere"], "outputs": ["out"]}
        ],
    }
    harness.cluster.management.module.client.publish(
        "ifot/ctl/module/pi-1/submit", {"recipe": bad, "strategy": "load_aware"}, qos=1
    )
    harness.settle(2.0)
    rejected = harness.runtime.tracer.select(event="agent.recipe_rejected")
    assert rejected
    assert module.agent.recipes_led == 0
    # The leader is still alive and can lead a good recipe afterwards.
    harness.cluster.management.submit_recipe(rate_recipe(5), via_module="pi-1")
    harness.settle(2.0)
    assert module.agent.recipes_led == 1


def test_invalid_static_check_mode_rejected(harness):  # noqa: F811
    from repro.core.management import ModuleAgent
    from repro.errors import DeploymentError

    module = harness.add_module("pi-x")
    with pytest.raises(DeploymentError):
        ModuleAgent(module, static_check="sometimes")
