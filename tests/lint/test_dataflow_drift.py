"""Cost-model drift gate (RCP230/RCP231): the committed fig5 baseline
against the calibrated model, plus synthetic records against a model we
fully control."""

import json
from pathlib import Path

from repro.bench.continuous import BenchRecord
from repro.lint import check_cost_drift
from repro.lint.dataflow import DRIFT_MIN_COUNT, DRIFT_TOLERANCE
from repro.runtime.costs import CostModel, OpCost

BASELINE = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "baselines"
    / "BENCH_fig5.json"
)


def synthetic_record(op="x", busy_s=1.0, count=100):
    return BenchRecord(
        name="synthetic", sim={"op_busy": {op: {"busy_s": busy_s, "count": count}}}
    )


def exact_model(op="x", mean_s=0.01):
    model = CostModel()
    model.define(op, OpCost(base_s=mean_s))
    return model


class TestCommittedBaseline:
    def test_fig5_baseline_passes_default_model(self):
        record = BenchRecord.from_dict(json.loads(BASELINE.read_text()))
        assert check_cost_drift(record) == []

    def test_fig5_baseline_fails_perturbed_model(self):
        # The acceptance check: a >=tolerance recalibration without
        # regenerating baselines must trip the gate.
        from repro.lint.rates import default_cost_model

        record = BenchRecord.from_dict(json.loads(BASELINE.read_text()))
        diags = check_cost_drift(record, default_cost_model().scaled(1.5))
        assert diags and all(d.rule == "RCP230" for d in diags)


class TestSyntheticRecords:
    def test_matching_observation_passes(self):
        record = synthetic_record(busy_s=1.0, count=100)
        assert check_cost_drift(record, exact_model(mean_s=0.01)) == []

    def test_drift_beyond_tolerance_is_rcp230(self):
        record = synthetic_record(busy_s=1.0, count=100)  # observed 10 ms
        diags = check_cost_drift(record, exact_model(mean_s=0.005))
        assert [d.rule for d in diags] == ["RCP230"]
        assert diags[0].where == "bench synthetic: op x"

    def test_drift_within_tolerance_passes(self):
        just_inside = 0.01 * (1 + DRIFT_TOLERANCE * 0.9)
        record = synthetic_record(busy_s=just_inside * 100, count=100)
        assert check_cost_drift(record, exact_model(mean_s=0.01)) == []

    def test_unmodeled_op_is_rcp231(self):
        record = synthetic_record(op="mystery.op", busy_s=1.0, count=100)
        diags = check_cost_drift(record, exact_model(op="x"))
        assert [d.rule for d in diags] == ["RCP231"]
        assert "mystery.op" in diags[0].message

    def test_missing_op_busy_is_rcp231(self):
        # v1 baselines (no op_busy) degrade to a regenerate-me warning,
        # not a crash and not a silent pass.
        record = BenchRecord(name="old", schema_version=1, sim={"events": 5})
        diags = check_cost_drift(record)
        assert [d.rule for d in diags] == ["RCP231"]
        assert "regenerate" in diags[0].message

    def test_low_count_ops_are_skipped(self):
        # Too few invocations to average away jitter: wildly-off busy
        # below min_count must not fire.
        record = synthetic_record(busy_s=999.0, count=DRIFT_MIN_COUNT - 1)
        assert check_cost_drift(record, exact_model(mean_s=0.01)) == []

    def test_warmup_surcharge_is_amortized(self):
        # 10 warm-up invocations at +9 ms over a 100-call run add 0.9 ms
        # to the predicted mean; an observation matching that total passes
        # while the steady-state mean alone would be 19% off.
        model = CostModel()
        model.define("x", OpCost(base_s=0.005, warmup_extra_s=0.009, warmup_ops=10))
        observed_total = 0.005 * 100 + 0.009 * 10
        record = synthetic_record(busy_s=observed_total, count=100)
        assert check_cost_drift(record, model) == []
