"""The ``repro lint`` subcommand."""

import json

from repro.cli import main


def test_catalog_lists_rules(capsys):
    assert main(["lint", "--catalog"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "DET003", "DET004", "DET005"):
        assert rule_id in out


def test_no_target_is_usage_error(capsys):
    assert main(["lint"]) == 2
    assert "nothing to lint" in capsys.readouterr().err


def test_clean_file_exits_zero(tmp_path, capsys):
    path = tmp_path / "clean.py"
    path.write_text("VALUES = [1, 2, 3]\n", encoding="utf-8")
    assert main(["lint", str(path)]) == 0
    assert "lint OK" in capsys.readouterr().out


def test_violation_exits_one_and_reports_location(tmp_path, capsys):
    path = tmp_path / "dirty.py"
    path.write_text("import time\nx = time.time()\n", encoding="utf-8")
    assert main(["lint", str(path)]) == 1
    out = capsys.readouterr().out
    assert f"{path}:2" in out
    assert "DET001" in out


def test_warning_blocks_only_in_strict(tmp_path):
    path = tmp_path / "writer.py"
    path.write_text("f = open('out.txt', 'w')\n", encoding="utf-8")
    assert main(["lint", str(path)]) == 0
    assert main(["lint", str(path), "--strict"]) == 1


def test_json_format(tmp_path, capsys):
    path = tmp_path / "dirty.py"
    path.write_text("import random\nx = random.random()\n", encoding="utf-8")
    assert main(["lint", str(path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["diagnostics"][0]["rule"] == "DET002"


def test_rules_filter(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text("import time\nx = time.time()\n", encoding="utf-8")
    assert main(["lint", str(path), "--rules", "DET003"]) == 0


def test_recipe_fig5_passes(capsys):
    assert main(["lint", "--recipe", "fig5"]) == 0
    assert "lint OK" in capsys.readouterr().out


def test_recipe_file_with_findings(tmp_path, capsys):
    recipe = tmp_path / "bad.json"
    recipe.write_text(
        json.dumps(
            {
                "recipe": "bad",
                "tasks": [
                    {
                        "id": "sense",
                        "operator": "sensor",
                        "outputs": ["raw", "extra"],
                        "params": {"device": "d", "rate_hz": 5},
                    },
                    {
                        "id": "learn",
                        "operator": "train",
                        "inputs": ["raw"],
                        "params": {"model": "m", "label_key": "y"},
                    },
                ],
            }
        ),
        encoding="utf-8",
    )
    # 'extra' is an orphan stream: a warning, so plain run passes ...
    assert main(["lint", "--recipe", str(recipe)]) == 0
    out = capsys.readouterr().out
    assert "RCP105" in out
    # ... and strict fails.
    assert main(["lint", "--recipe", str(recipe), "--strict"]) == 1


def test_missing_recipe_file_is_io_error(capsys):
    assert main(["lint", "--recipe", "no/such/file.recipe"]) == 2
