"""The ``repro lint`` subcommand."""

import json

from repro.cli import main


def test_catalog_lists_rules(capsys):
    assert main(["lint", "--catalog"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "DET003", "DET004", "DET005"):
        assert rule_id in out


def test_no_target_is_usage_error(capsys):
    assert main(["lint"]) == 2
    assert "nothing to lint" in capsys.readouterr().err


def test_clean_file_exits_zero(tmp_path, capsys):
    path = tmp_path / "clean.py"
    path.write_text("VALUES = [1, 2, 3]\n", encoding="utf-8")
    assert main(["lint", str(path)]) == 0
    assert "lint OK" in capsys.readouterr().out


def test_violation_exits_one_and_reports_location(tmp_path, capsys):
    path = tmp_path / "dirty.py"
    path.write_text("import time\nx = time.time()\n", encoding="utf-8")
    assert main(["lint", str(path)]) == 1
    out = capsys.readouterr().out
    assert f"{path}:2" in out
    assert "DET001" in out


def test_warning_blocks_only_in_strict(tmp_path):
    path = tmp_path / "writer.py"
    path.write_text("f = open('out.txt', 'w')\n", encoding="utf-8")
    assert main(["lint", str(path)]) == 0
    assert main(["lint", str(path), "--strict"]) == 1


def test_json_format(tmp_path, capsys):
    path = tmp_path / "dirty.py"
    path.write_text("import random\nx = random.random()\n", encoding="utf-8")
    assert main(["lint", str(path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["diagnostics"][0]["rule"] == "DET002"


def test_rules_filter(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text("import time\nx = time.time()\n", encoding="utf-8")
    assert main(["lint", str(path), "--rules", "DET003"]) == 0


def test_recipe_fig5_passes(capsys):
    assert main(["lint", "--recipe", "fig5"]) == 0
    assert "lint OK" in capsys.readouterr().out


def test_recipe_file_with_findings(tmp_path, capsys):
    recipe = tmp_path / "bad.json"
    recipe.write_text(
        json.dumps(
            {
                "recipe": "bad",
                "tasks": [
                    {
                        "id": "sense",
                        "operator": "sensor",
                        "outputs": ["raw", "extra"],
                        "params": {"device": "d", "rate_hz": 5},
                    },
                    {
                        "id": "learn",
                        "operator": "train",
                        "inputs": ["raw"],
                        "params": {"model": "m", "label_key": "y"},
                    },
                ],
            }
        ),
        encoding="utf-8",
    )
    # 'extra' is an orphan stream: a warning, so plain run passes ...
    assert main(["lint", "--recipe", str(recipe)]) == 0
    out = capsys.readouterr().out
    assert "RCP105" in out
    # ... and strict fails.
    assert main(["lint", "--recipe", str(recipe), "--strict"]) == 1


def test_missing_recipe_file_is_io_error(capsys):
    assert main(["lint", "--recipe", "no/such/file.recipe"]) == 2


def test_catalog_lists_dataflow_rules(capsys):
    assert main(["lint", "--catalog"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("FLG001", "SAN020", "SAN021", "RCP200", "RCP210", "RCP230"):
        assert rule_id in out


def test_dataflow_flag_runs_state_soundness(tmp_path, capsys):
    path = tmp_path / "toy.py"
    path.write_text(
        "from repro.runtime.component import Component\n"
        "\n"
        "class Toy(Component):\n"
        "    def on_record(self, stream, record):\n"
        "        self.seen = 1\n",
        encoding="utf-8",
    )
    # The determinism engine alone accepts the file ...
    assert main(["lint", str(path)]) == 0
    capsys.readouterr()
    # ... the dataflow pass does not.
    assert main(["lint", str(path), "--dataflow"]) == 1
    assert "SAN020" in capsys.readouterr().out


def test_recipe_shortcuts_pass_payload_checks(capsys):
    for shortcut in ("fig5", "paper", "failover"):
        assert main(["lint", "--recipe", shortcut, "--strict"]) == 0, shortcut
        capsys.readouterr()


def test_calibrate_committed_baseline_passes(capsys):
    baseline = "benchmarks/baselines/BENCH_fig5.json"
    assert main(["lint", "--calibrate", baseline, "--strict"]) == 0
    assert "lint OK" in capsys.readouterr().out


def test_calibrate_stale_baseline_fails(tmp_path, capsys):
    # A baseline recorded under a 2x-cheaper model: every op drifts +100%.
    baseline = json.loads(
        __import__("pathlib").Path("benchmarks/baselines/BENCH_fig5.json").read_text()
    )
    for entry in baseline["sim"]["op_busy"].values():
        entry["busy_s"] *= 2.0
    stale = tmp_path / "BENCH_stale.json"
    stale.write_text(json.dumps(baseline), encoding="utf-8")
    assert main(["lint", "--calibrate", str(stale)]) == 1
    assert "RCP230" in capsys.readouterr().out


def test_sarif_format(tmp_path, capsys):
    path = tmp_path / "dirty.py"
    path.write_text("import time\nx = time.time()\n", encoding="utf-8")
    assert main(["lint", str(path), "--format", "sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    result = run["results"][0]
    assert result["ruleId"] == "DET001"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["region"]["startLine"] == 2


def test_sarif_where_only_findings_use_logical_locations(capsys):
    from repro.lint import render_sarif
    from repro.util.validate import Diagnostic, Severity

    diag = Diagnostic(
        rule="RCP230",
        severity=Severity.ERROR,
        message="drift",
        where="bench fig5: op mqtt.send",
    )
    log = json.loads(render_sarif([diag]))
    location = log["runs"][0]["results"][0]["locations"][0]
    assert location["logicalLocations"][0]["fullyQualifiedName"] == (
        "bench fig5: op mqtt.send"
    )


def test_deadline_requires_recipe(capsys):
    assert main(["lint", "--deadline"]) == 2
    assert "--recipe" in capsys.readouterr().err


def test_deadline_passes_builtins_strict(capsys):
    for name in ("fig5", "paper", "failover"):
        assert main(["lint", "--recipe", name, "--deadline", "--strict"]) == 0, name
        assert "lint OK" in capsys.readouterr().out


def test_deadline_reports_rcp240_for_hot_recipe(tmp_path, capsys):
    recipe = tmp_path / "hot.recipe"
    recipe.write_text(
        "recipe hot\n\n"
        "task sense : sensor\n"
        "    out raw\n"
        "    device = d\n"
        "    rate_hz = 50\n\n"
        "task act : actuator\n"
        "    in raw\n"
        "    deadline_ms = 1\n"
        "    device = d\n",
        encoding="utf-8",
    )
    assert main(["lint", "--recipe", str(recipe), "--deadline"]) == 1
    out = capsys.readouterr().out
    assert "RCP240" in out


def test_validate_builtin_baselines_clean(capsys):
    for name in ("fig5", "failover"):
        baseline = f"benchmarks/baselines/BENCH_{name}.json"
        assert (
            main(
                [
                    "lint",
                    "--recipe",
                    name,
                    "--deadline",
                    "--validate",
                    baseline,
                ]
            )
            == 0
        ), name
        capsys.readouterr()


def test_validate_reads_trace_jsonl(tmp_path, capsys):
    """--validate accepts an obs.span JSONL dump; an impossible observed
    max on the sink trips the soundness gate."""
    recipe = tmp_path / "chain.recipe"
    recipe.write_text(
        "recipe chain\n\n"
        "task sense : sensor\n"
        "    out raw\n"
        "    device = d\n"
        "    rate_hz = 5\n\n"
        "task act : actuator\n"
        "    in raw\n"
        "    device = d\n",
        encoding="utf-8",
    )
    trace = tmp_path / "trace.jsonl"
    spans = [
        {
            "t": 0.001,
            "src": "n1",
            "ev": "obs.span",
            "f": {
                "trace": "t1",
                "span": "a",
                "name": "sense",
                "task": "sense",
                "hop": 0,
                "start": 0.0,
            },
        },
        {
            "t": 500.001,
            "src": "n1",
            "ev": "obs.span",
            "f": {
                "trace": "t1",
                "span": "b",
                "parent": "a",
                "name": "act",
                "task": "act",
                "hop": 1,
                "start": 500.0,
            },
        },
    ]
    trace.write_text(
        "\n".join(json.dumps(span) for span in spans) + "\n", encoding="utf-8"
    )
    assert (
        main(
            [
                "lint",
                "--recipe",
                str(recipe),
                "--deadline",
                "--validate",
                str(trace),
            ]
        )
        == 1
    )
    assert "RCP243" in capsys.readouterr().out
