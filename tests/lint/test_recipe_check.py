"""Recipe static checker matrix: structure, QoS, ports, rates."""

import pytest

from repro.core.recipe import Recipe, TaskSpec
from repro.lint import check_rate_feasibility, check_recipe, check_recipe_dict


def task(task_id, operator, **kw):
    return {"id": task_id, "operator": operator, **kw}


def recipe_dict(*tasks, name="app"):
    return {"recipe": name, "tasks": list(tasks)}


def rules_of(diagnostics):
    return sorted({d.rule for d in diagnostics})


def sensor_train(rate_hz=5, parallelism=1):
    return Recipe(
        "app",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": rate_hz},
            ),
            TaskSpec(
                "train",
                "train",
                inputs=["raw"],
                params={"model": "m", "label_key": "label"},
                parallelism=parallelism,
            ),
        ],
    )


class TestStructure:
    def test_valid_recipe_clean(self):
        assert check_recipe(sensor_train()) == []

    def test_missing_tasks_key(self):
        diags = check_recipe_dict({"recipe": "x"})
        assert rules_of(diags) == ["RCP100"]

    def test_malformed_task_entry(self):
        diags = check_recipe_dict(recipe_dict({"operator": "map"}))
        assert "RCP100" in rules_of(diags)

    def test_duplicate_task_id(self):
        diags = check_recipe_dict(
            recipe_dict(
                task("a", "sensor", outputs=["raw"]),
                task("a", "map", inputs=["raw"]),
            )
        )
        assert "RCP101" in rules_of(diags)

    def test_multi_producer_stream(self):
        diags = check_recipe_dict(
            recipe_dict(
                task("s1", "sensor", outputs=["raw"]),
                task("s2", "sensor", outputs=["raw"]),
                task("m", "map", inputs=["raw"]),
            )
        )
        assert "RCP102" in rules_of(diags)

    def test_dangling_input(self):
        diags = check_recipe_dict(
            recipe_dict(task("m", "map", inputs=["ghost"], outputs=["out"]))
        )
        assert "RCP103" in rules_of(diags)

    def test_external_reference_ok(self):
        diags = check_recipe_dict(
            recipe_dict(task("m", "map", inputs=["other-app:raw"]))
        )
        assert "RCP103" not in rules_of(diags)

    def test_malformed_external_reference(self):
        diags = check_recipe_dict(recipe_dict(task("m", "map", inputs=[":raw"])))
        assert "RCP103" in rules_of(diags)

    def test_cycle_detected(self):
        diags = check_recipe_dict(
            recipe_dict(
                task("a", "map", inputs=["c-out"], outputs=["a-out"]),
                task("b", "map", inputs=["a-out"], outputs=["b-out"]),
                task("c", "map", inputs=["b-out"], outputs=["c-out"]),
            )
        )
        cycle = [d for d in diags if d.rule == "RCP104"]
        assert len(cycle) == 1
        assert str(cycle[0].severity) == "error"
        for tid in ("a", "b", "c"):
            assert tid in cycle[0].message

    def test_orphan_stream_warns(self):
        diags = check_recipe_dict(
            recipe_dict(task("s", "sensor", outputs=["raw", "unused"]))
        )
        orphans = [d for d in diags if d.rule == "RCP105"]
        assert len(orphans) == 2  # nothing consumes either stream
        assert all(str(d.severity) == "warning" for d in orphans)

    def test_unknown_operator(self):
        diags = check_recipe_dict(
            recipe_dict(task("x", "quantum-sort", inputs=["other:in"]))
        )
        assert "RCP106" in rules_of(diags)


class TestQosAndPorts:
    def test_qos_mismatch_warns(self):
        diags = check_recipe_dict(
            recipe_dict(
                task("s", "sensor", outputs=["raw"], params={"qos": 0}),
                task("m", "map", inputs=["raw"], params={"qos": 1}),
            )
        )
        mismatch = [d for d in diags if d.rule == "RCP107"]
        assert len(mismatch) == 1
        assert "QoS 1" in mismatch[0].message

    def test_matching_qos_clean(self):
        diags = check_recipe_dict(
            recipe_dict(
                task("s", "sensor", outputs=["raw"], params={"qos": 1}),
                task("m", "map", inputs=["raw"], params={"qos": 1}),
            )
        )
        assert "RCP107" not in rules_of(diags)

    def test_sensor_with_inputs_is_error(self):
        diags = check_recipe_dict(
            recipe_dict(
                task("s1", "sensor", outputs=["raw"]),
                task("s2", "sensor", inputs=["raw"], outputs=["cooked"]),
            )
        )
        assert "RCP108" in rules_of(diags)

    def test_processor_without_inputs_is_error(self):
        diags = check_recipe_dict(recipe_dict(task("m", "map", outputs=["out"])))
        assert "RCP108" in rules_of(diags)

    def test_mix_without_inputs_is_fine(self):
        # mix coordinates over control topics; it has no stream inputs.
        diags = check_recipe_dict(
            recipe_dict(task("mixer", "mix", params={"model": "m"}))
        )
        assert "RCP108" not in rules_of(diags)

    def test_sharded_stateful_operator_warns(self):
        diags = check_recipe(sensor_train(parallelism=3))
        assert rules_of(diags) == ["RCP109"]


class TestRateFeasibility:
    def test_feasible_rate_clean(self):
        assert check_rate_feasibility(sensor_train(rate_hz=5)) == []

    def test_infeasible_rate_flagged(self):
        # 40 Hz x 28 ms training = 1.12 CPU-s/s on a unit module.
        diags = check_rate_feasibility(sensor_train(rate_hz=40))
        overload = [d for d in diags if d.rule == "RCP110"]
        assert len(overload) == 1
        assert "train" in overload[0].where

    def test_sharding_restores_feasibility(self):
        diags = check_rate_feasibility(sensor_train(rate_hz=40, parallelism=2))
        assert "RCP110" not in rules_of(diags)

    def test_near_capacity_warns(self):
        # 30 Hz x 28 ms = 0.84: above the 0.8 soft threshold, below 1.0.
        diags = check_rate_feasibility(sensor_train(rate_hz=30))
        assert rules_of(diags) == ["RCP111"]

    def test_throttle_caps_downstream_rate(self):
        recipe = Recipe(
            "app",
            [
                TaskSpec(
                    "sense",
                    "sensor",
                    outputs=["raw"],
                    params={"device": "d", "rate_hz": 100},
                ),
                TaskSpec(
                    "calm",
                    "throttle",
                    inputs=["raw"],
                    outputs=["slow"],
                    params={"interval_s": 0.5},
                ),
                TaskSpec(
                    "learn",
                    "train",
                    inputs=["slow"],
                    params={"model": "m", "label_key": "y"},
                ),
            ],
        )
        diags = check_rate_feasibility(recipe)
        # The 100 Hz feed is throttled to 2 Hz before training.
        assert not [d for d in diags if "learn" in d.where]


class TestShippedRecipes:
    def test_fig5_recipe_statically_clean(self):
        from repro.bench.scenarios import FIG5_RECIPE_PATH
        from repro.core.dsl import parse_recipe

        recipe = parse_recipe(FIG5_RECIPE_PATH.read_text(encoding="utf-8"))
        assert check_recipe(recipe) == []
        assert check_rate_feasibility(recipe) == []

    def test_paper_recipe_feasible_at_5hz(self):
        from repro.bench.scenarios import build_paper_recipe

        recipe = build_paper_recipe(rate_hz=5.0)
        assert check_recipe(recipe) == []
        assert check_rate_feasibility(recipe) == []

    def test_paper_recipe_saturates_at_40hz(self):
        from repro.bench.scenarios import build_paper_recipe

        recipe = build_paper_recipe(rate_hz=40.0)
        diags = check_rate_feasibility(recipe)
        assert "RCP110" in rules_of(diags)
