"""The static latency-bound analyzer (RCP240-RCP244).

Unit coverage for the network-calculus abstract interpretation plus the
acceptance anchors the issue demands: the shipped Fig. 5 recipe passes
``--deadline --strict`` at paper rates, doubling every sensing rate
trips the instability rule, the committed BENCH baselines validate
clean, and a deliberately miscalibrated service model is demonstrably
caught by the soundness gate.
"""

import json
import math
from pathlib import Path

import pytest

from repro.bench.calibration import pi_cost_model, pi_wlan_config
from repro.bench.scenarios import FIG5_RECIPE_PATH, build_paper_recipe
from repro.chaos.scenarios import MODULE_RECOVERY_BOUND_S, build_chaos_recipe
from repro.core.dsl import parse_recipe
from repro.core.recipe import Recipe, TaskSpec
from repro.core.splitter import RecipeSplit
from repro.lint.latency import (
    LATENCY_RULES,
    LatencyContext,
    analyze_latency,
    check_bound_soundness,
    check_deadlines,
    flows_from_bench,
)
from repro.net.wlan import WlanConfig
from repro.runtime.costs import CostModel, OpCost

BASELINES = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"


def chain_recipe(
    rate_hz: float = 5.0,
    burst: float = 1.0,
    deadline_ms: float | None = None,
) -> Recipe:
    """sensor -> map -> actuator, the minimal three-hop flow."""
    return Recipe(
        "chain",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "d", "rate_hz": rate_hz, "burst": burst},
            ),
            TaskSpec("shape", "map", inputs=["raw"], outputs=["shaped"]),
            TaskSpec(
                "act",
                "actuator",
                inputs=["shaped"],
                params={"device": "d"},
                deadline_ms=deadline_ms,
            ),
        ],
    )


def fig5_recipe() -> Recipe:
    return parse_recipe(FIG5_RECIPE_PATH.read_text())


def fig5_context(**overrides) -> LatencyContext:
    return LatencyContext(cost_model=pi_cost_model(), **overrides)


class TestAnalysis:
    def test_chain_bound_finite_and_ordered(self):
        analysis = analyze_latency(chain_recipe(), fig5_context())
        flows = analysis.flows
        assert flows["act"].derivable
        assert 0.0 < flows["sense"].bound_s < flows["shape"].bound_s
        assert flows["shape"].bound_s < flows["act"].bound_s < math.inf
        assert all(bound.stable for bound in analysis.resources.values())

    def test_sinks_are_flow_endpoints_only(self):
        analysis = analyze_latency(chain_recipe(), fig5_context())
        assert set(analysis.sinks()) == {"act"}
        assert set(analyze_latency(fig5_recipe(), fig5_context()).sinks()) == {
            "alert-messaging"
        }

    def test_bound_includes_disruption_allowance(self):
        base = analyze_latency(chain_recipe(), fig5_context())
        disrupted = analyze_latency(
            chain_recipe(), fig5_context(disruption_allowance_s=6.0)
        )
        assert disrupted.flows["act"].bound_s == pytest.approx(
            base.flows["act"].bound_s + 6.0
        )
        # The steady-state bound RCP244 judges excludes the allowance.
        assert disrupted.flows["act"].steady_bound_s == pytest.approx(
            base.flows["act"].steady_bound_s
        )

    def test_qos1_loss_amplifies_shared_network_load(self):
        def wlan_util(loss):
            recipe = Recipe(
                "amp",
                [
                    TaskSpec(
                        "sense",
                        "sensor",
                        outputs=["raw"],
                        params={"device": "d", "rate_hz": 10.0, "qos": 1},
                    ),
                    TaskSpec("sink", "train", inputs=["raw"], params={"model": "classifier", "label_key": "y", "emit_info": False}),
                ],
            )
            ctx = fig5_context(loss_rate=loss)
            return analyze_latency(recipe, ctx).resources["wlan"].utilization

        assert wlan_util(0.5) == pytest.approx(2.0 * wlan_util(0.0) / 1.0, rel=0.5)
        assert wlan_util(0.5) > wlan_util(0.2) > wlan_util(0.0)

    def test_total_loss_starves_qos1_flow(self):
        recipe = Recipe(
            "starved",
            [
                TaskSpec(
                    "sense",
                    "sensor",
                    outputs=["raw"],
                    params={"device": "d", "rate_hz": 5.0, "qos": 1},
                ),
                TaskSpec(
                    "act",
                    "actuator",
                    inputs=["raw"],
                    params={"device": "d"},
                    deadline_ms=1000,
                ),
            ],
        )
        diags = check_deadlines(recipe, fig5_context(loss_rate=1.0))
        # Infinite retry demand saturates the shared network hops (RCP241)
        # and leaves the deadline's bound undeliverable (RCP242).
        assert {d.rule for d in diags} == {"RCP241", "RCP242"}

    def test_deadline_does_not_change_deploy_payload(self):
        """deadline_ms is lint-only: the wire form of subtasks is identical."""
        with_deadline = chain_recipe(deadline_ms=1000)
        without = chain_recipe()
        wire = lambda recipe: [
            sub.to_dict() for sub in RecipeSplit().split(recipe)
        ]
        assert wire(with_deadline) == wire(without)


class TestDeadlineRules:
    def test_acceptance_anchor_pair(self):
        """One parameter flips the verdict: 5 Hz meets the budget, 50 Hz
        misses it — everything else identical."""
        context = fig5_context()
        ok_bound = analyze_latency(chain_recipe(rate_hz=5.0), context).flows[
            "act"
        ].bound_s
        hot_bound = analyze_latency(chain_recipe(rate_hz=50.0), context).flows[
            "act"
        ].bound_s
        assert ok_bound < hot_bound < math.inf
        deadline_ms = (ok_bound + hot_bound) / 2.0 * 1000.0
        assert (
            check_deadlines(
                chain_recipe(rate_hz=5.0, deadline_ms=deadline_ms), context
            )
            == []
        )
        diags = check_deadlines(
            chain_recipe(rate_hz=50.0, deadline_ms=deadline_ms), context
        )
        assert [d.rule for d in diags] == ["RCP240"]
        assert "exceeds the declared deadline" in diags[0].message

    def test_fig5_passes_at_paper_rates(self):
        assert check_deadlines(fig5_recipe(), fig5_context()) == []

    def test_fig5_overload_trips_rcp241(self):
        """Doubling every sensing rate saturates a hop: RCP241, which is
        strictly stronger than the aggregate-utilization warning."""
        recipe = fig5_recipe()
        doubled = Recipe(
            recipe.name,
            [
                TaskSpec(
                    task.task_id,
                    task.operator,
                    inputs=list(task.inputs),
                    outputs=list(task.outputs),
                    params={
                        **task.params,
                        **(
                            {"rate_hz": 2.0 * task.params["rate_hz"]}
                            if "rate_hz" in task.params
                            else {}
                        ),
                    },
                    capabilities=list(task.capabilities),
                    parallelism=task.parallelism,
                    pin_to=task.pin_to,
                    deadline_ms=task.deadline_ms,
                )
                for task in recipe.tasks.values()
            ],
        )
        diags = check_deadlines(doubled, fig5_context())
        assert "RCP241" in {d.rule for d in diags}
        analysis = analyze_latency(doubled, fig5_context())
        assert any(not b.stable for b in analysis.resources.values())
        # The poisoned sink carries an infinite bound.
        assert math.isinf(analysis.sinks()["alert-messaging"].bound_s)

    def test_builtin_recipes_meet_their_declared_deadlines(self):
        assert check_deadlines(fig5_recipe(), fig5_context()) == []
        assert (
            check_deadlines(
                build_paper_recipe(rate_hz=5.0),
                LatencyContext(cost_model=pi_cost_model(), wlan=pi_wlan_config()),
            )
            == []
        )
        assert (
            check_deadlines(
                build_chaos_recipe(),
                LatencyContext(
                    cost_model=pi_cost_model(),
                    loss_rate=0.15,
                    disruption_allowance_s=MODULE_RECOVERY_BOUND_S,
                ),
            )
            == []
        )

    def test_rcp242_external_input(self):
        recipe = Recipe(
            "ext",
            [
                TaskSpec(
                    "act",
                    "actuator",
                    inputs=["other-app:scored"],
                    params={"device": "d"},
                    deadline_ms=500,
                )
            ],
        )
        diags = check_deadlines(recipe, fig5_context())
        assert [d.rule for d in diags] == ["RCP242"]
        assert "external input" in diags[0].message

    def test_rcp242_missing_cost_entry(self):
        empty_model = CostModel(ops={"flow.process": OpCost(base_s=1e-3)})
        diags = check_deadlines(
            chain_recipe(deadline_ms=1000),
            LatencyContext(cost_model=empty_model),
        )
        assert [d.rule for d in diags] == ["RCP242"]
        assert "MQTT handling" in diags[0].message

    def test_no_deadline_no_rcp240(self):
        """Without a declared deadline only instability can error."""
        assert check_deadlines(chain_recipe(rate_hz=5.0), fig5_context()) == []


class TestSoundnessGate:
    def _bench_flows(self, name):
        data = json.loads((BASELINES / f"BENCH_{name}.json").read_text())
        return flows_from_bench(data)

    def test_committed_fig5_baseline_validates_clean(self):
        recipe = fig5_recipe()
        diags = check_bound_soundness(
            recipe, self._bench_flows("fig5"), fig5_context()
        )
        assert diags == []

    def test_committed_failover_baseline_validates_clean(self):
        diags = check_bound_soundness(
            build_chaos_recipe(),
            self._bench_flows("failover"),
            LatencyContext(
                cost_model=pi_cost_model(),
                loss_rate=0.15,
                disruption_allowance_s=MODULE_RECOVERY_BOUND_S,
            ),
        )
        assert diags == []

    def test_miscalibrated_model_fails_rcp243(self):
        """A too-optimistic service model claims a bound the system beat:
        the gate must call the model wrong."""
        fast_wlan = WlanConfig(
            bitrate_bps=100e6, per_frame_overhead_s=0.1e-3, jitter_s=0.0
        )
        context = LatencyContext(
            cost_model=pi_cost_model().scaled(0.25), wlan=fast_wlan
        )
        diags = check_bound_soundness(
            fig5_recipe(), self._bench_flows("fig5"), context
        )
        assert [d.rule for d in diags] == ["RCP243"]
        assert "soundness violation" in diags[0].message

    def test_loose_bound_warns_rcp244(self):
        recipe = fig5_recipe()
        observed = {
            "alert-messaging": {
                "count": 100,
                "p50_ms": 0.5,
                "p95_ms": 0.9,
                "p99_ms": 1.0,
                "max_ms": 2.0,
            }
        }
        diags = check_bound_soundness(recipe, observed, fig5_context())
        assert [d.rule for d in diags] == ["RCP244"]
        assert "loose bound" in diags[0].message

    def test_non_sink_observations_are_ignored(self):
        """Intermediate leaf spans (records that died mid-flow under the
        deployed placement) are not flow endpoints: the gate only holds
        the model to its claims, which are bounds at sinks."""
        recipe = fig5_recipe()
        observed = {
            "alert-rules": {"count": 10, "p99_ms": 1e9, "max_ms": 1e9},
            "broker": {"count": 10, "p99_ms": 1e9, "max_ms": 1e9},
        }
        assert check_bound_soundness(recipe, observed, fig5_context()) == []

    def test_severities_match_catalog(self):
        assert str(LATENCY_RULES["RCP240"].severity) == "error"
        assert str(LATENCY_RULES["RCP241"].severity) == "error"
        assert str(LATENCY_RULES["RCP242"].severity) == "warning"
        assert str(LATENCY_RULES["RCP243"].severity) == "error"
        assert str(LATENCY_RULES["RCP244"].severity) == "warning"
