"""FLG001 and the env-flag registry it enforces."""

import pytest

from repro.lint import lint_source
from repro.util.flags import FLAGS, flag, flag_enabled, flag_value


def flg_rules(source: str):
    return [d.rule for d in lint_source(source).diagnostics if d.rule == "FLG001"]


class TestRule:
    def test_os_getenv_with_repro_key_is_flagged(self):
        assert flg_rules('import os\nx = os.getenv("REPRO_EVENT_POOL")\n')

    def test_environ_get_is_flagged(self):
        assert flg_rules('import os\nx = os.environ.get("REPRO_FOO", "1")\n')

    def test_environ_subscript_read_is_flagged(self):
        assert flg_rules('import os\nx = os.environ["REPRO_FOO"]\n')

    def test_environ_subscript_store_is_not_flagged(self):
        # Tests set flags; only reads bypass the registry.
        assert not flg_rules('import os\nos.environ["REPRO_FOO"] = "1"\n')

    def test_non_repro_keys_are_not_flagged(self):
        assert not flg_rules('import os\nx = os.getenv("HOME")\n')

    def test_registry_reads_are_not_flagged(self):
        # The registry reads through the declared flag name, which is not
        # a literal REPRO_* string at the call site.
        assert not flg_rules(
            "import os\n"
            "def raw(self):\n"
            "    return os.environ.get(self.name, self.default)\n"
        )


class TestRegistry:
    def test_declared_flag_reads_environment_at_call_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_POOL", "0")
        assert flag_enabled("REPRO_EVENT_POOL") is False
        monkeypatch.setenv("REPRO_EVENT_POOL", "1")
        assert flag_enabled("REPRO_EVENT_POOL") is True

    def test_unset_flag_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_OUT", raising=False)
        assert flag_value("REPRO_BENCH_OUT") == ""

    def test_undeclared_flag_raises(self):
        with pytest.raises(KeyError, match="undeclared"):
            flag("REPRO_NOT_A_FLAG")

    def test_every_declared_flag_documents_its_reader(self):
        for name, spec in FLAGS.items():
            assert spec.doc, name
            assert "Read by" in spec.doc, name
