"""Per-rule good/bad fixtures for the determinism lint rules."""

import textwrap

import pytest

from repro.lint import lint_source


def run(source, rule_ids=None):
    return lint_source(textwrap.dedent(source), "fixture.py", rule_ids=rule_ids)


def rules_of(run_result):
    return sorted({d.rule for d in run_result.diagnostics})


class TestWallClock:
    def test_time_time_flagged(self):
        result = run(
            """
            import time
            stamp = time.time()
            """
        )
        assert rules_of(result) == ["DET001"]
        (diag,) = result.diagnostics
        assert diag.line == 3
        assert "time.time" in diag.message

    @pytest.mark.parametrize(
        "call",
        [
            "time.monotonic()",
            "time.perf_counter()",
            "datetime.datetime.now()",
            "datetime.date.today()",
        ],
    )
    def test_variants_flagged(self, call):
        result = run(f"import time, datetime\nx = {call}\n")
        assert rules_of(result) == ["DET001"]

    def test_aliased_import_resolved(self):
        result = run("import time as t\nx = t.monotonic()\n")
        assert rules_of(result) == ["DET001"]

    def test_from_import_resolved(self):
        result = run("from time import monotonic\nx = monotonic()\n")
        assert rules_of(result) == ["DET001"]

    def test_runtime_clock_ok(self):
        result = run(
            """
            def handler(runtime):
                return runtime.now
            """
        )
        assert result.diagnostics == []


class TestGlobalRng:
    def test_module_level_random_flagged(self):
        result = run("import random\nx = random.random()\n")
        assert rules_of(result) == ["DET002"]

    @pytest.mark.parametrize(
        "call",
        [
            "random.randint(0, 5)",
            "random.shuffle(items)",
            "os.urandom(8)",
            "uuid.uuid4()",
            "secrets.token_hex()",
            "numpy.random.rand(3)",
        ],
    )
    def test_entropy_sources_flagged(self, call):
        result = run(f"import random, os, uuid, secrets, numpy\nx = {call}\n")
        assert rules_of(result) == ["DET002"]

    def test_seeded_instance_ok(self):
        # random.Random(seed) is how repro.util.rng builds streams.
        result = run(
            """
            import random
            rng = random.Random(42)
            x = rng.random()
            """
        )
        assert result.diagnostics == []

    def test_named_stream_ok(self):
        result = run(
            """
            def draw(runtime):
                return runtime.rng.stream("jitter").random()
            """
        )
        assert result.diagnostics == []


class TestSetIteration:
    def test_for_over_set_literal(self):
        result = run("for x in {1, 2, 3}:\n    print(x)\n")
        assert rules_of(result) == ["DET003"]

    def test_for_over_set_variable(self):
        result = run(
            """
            def f(items):
                seen = set(items)
                for x in seen:
                    yield x
            """
        )
        assert rules_of(result) == ["DET003"]

    def test_list_of_set(self):
        result = run("def f(s):\n    seen = set(s)\n    return list(seen)\n")
        assert rules_of(result) == ["DET003"]

    def test_set_union_expression(self):
        result = run("def f(a, b):\n    return [x for x in set(a) | set(b)]\n")
        assert rules_of(result) == ["DET003"]

    def test_join_over_set(self):
        result = run("def f(s):\n    return ','.join(set(s))\n")
        assert rules_of(result) == ["DET003"]

    def test_sorted_set_ok(self):
        result = run(
            """
            def f(items):
                seen = set(items)
                for x in sorted(seen):
                    yield x
            """
        )
        assert result.diagnostics == []

    def test_membership_ok(self):
        result = run(
            """
            def f(items, probe):
                seen = set(items)
                return probe in seen
            """
        )
        assert result.diagnostics == []

    def test_rebound_name_not_flagged(self):
        result = run(
            """
            def f(items):
                seen = set(items)
                seen = sorted(seen)
                for x in seen:
                    yield x
            """
        )
        assert result.diagnostics == []


class TestHashOrder:
    def test_sort_key_id_flagged_as_error(self):
        result = run("def f(xs):\n    return sorted(xs, key=id)\n")
        (diag,) = result.diagnostics
        assert diag.rule == "DET004"
        assert str(diag.severity) == "error"

    def test_bare_id_is_warning(self):
        result = run("def f(x):\n    return id(x)\n")
        (diag,) = result.diagnostics
        assert diag.rule == "DET004"
        assert str(diag.severity) == "warning"

    def test_sort_by_attribute_ok(self):
        result = run("def f(xs):\n    return sorted(xs, key=len)\n")
        assert result.diagnostics == []


class TestBlockingIo:
    def test_time_sleep_flagged(self):
        result = run("import time\ntime.sleep(1)\n")
        assert rules_of(result) == ["DET005"]

    @pytest.mark.parametrize(
        "stmt",
        [
            "subprocess.run(['ls'])",
            "socket.create_connection(('h', 1))",
            "input()",
        ],
    )
    def test_blocking_calls_flagged(self, stmt):
        result = run(f"import subprocess, socket\n{stmt}\n")
        assert rules_of(result) == ["DET005"]

    def test_write_open_is_warning(self):
        result = run("f = open('out.txt', 'w')\n")
        (diag,) = result.diagnostics
        assert diag.rule == "DET005"
        assert str(diag.severity) == "warning"

    def test_read_open_ok(self):
        result = run("f = open('in.txt')\ng = open('in.txt', 'rb')\n")
        assert result.diagnostics == []


class TestAccumulationOrder:
    def test_sum_over_set_literal_flagged(self):
        result = run("total = sum({0.1, 0.2, 0.3})\n")
        assert rules_of(result) == ["DET006"]
        (diag,) = result.diagnostics
        assert str(diag.severity) == "error"

    def test_sum_over_tracked_set_name_flagged(self):
        result = run(
            """
            def f(a, b):
                weights = set(a) | set(b)
                return sum(weights)
            """
        )
        assert rules_of(result) == ["DET006"]

    def test_sum_over_comprehension_from_set_flagged(self):
        result = run(
            """
            def f(a, b):
                keys = set(a) | set(b)
                return sum(a.get(k, 0.0) for k in keys)
            """
        )
        # The generator itself draws from the set; only DET006 fires (the
        # DET003 comprehension sinks cover list/dict builds, not folds).
        assert "DET006" in rules_of(result)

    @pytest.mark.parametrize(
        "call",
        [
            "math.fsum(values)",
            "math.prod(values)",
            "statistics.mean(values)",
            "statistics.fmean(values)",
        ],
    )
    def test_fold_variants_flagged(self, call):
        result = run(
            f"""
            import math, statistics

            def f(a, b):
                values = set(a) | set(b)
                return {call}
            """
        )
        assert rules_of(result) == ["DET006"]

    def test_reduce_checks_second_argument(self):
        result = run(
            """
            import functools, operator

            def f(xs):
                pool = set(xs)
                return functools.reduce(operator.add, pool)
            """
        )
        assert rules_of(result) == ["DET006"]

    def test_dict_view_is_warning(self):
        result = run("def f(d):\n    return sum(d.values())\n")
        (diag,) = result.diagnostics
        assert diag.rule == "DET006"
        assert str(diag.severity) == "warning"

    def test_sum_over_sorted_set_ok(self):
        result = run(
            """
            def f(a, b):
                keys = sorted(set(a) | set(b))
                return sum(a.get(k, 0.0) for k in keys)
            """
        )
        assert result.diagnostics == []

    def test_sum_over_list_ok(self):
        result = run("def f(xs):\n    return sum([x * x for x in xs])\n")
        assert result.diagnostics == []

    def test_suppression_annotation_honoured(self):
        result = run(
            """
            def f(counts):
                return sum(counts.values())  # repro: lint-ok[DET006]
            """
        )
        assert result.diagnostics == []
        assert result.suppressed == 1
