"""Recipe payload dataflow (RCP200–RCP212): injected violations with
exact anchors, the QoS 1 acceptance pair, and a random-DAG property."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recipe import Recipe, TaskSpec
from repro.lint import check_recipe_payloads, propagate_schemas

KEYS = {"probe": ("temp", "hum", "label")}


def sensor(task_id="sense", output="raw", qos=0):
    return TaskSpec(
        task_id,
        "sensor",
        outputs=[output],
        params={"device": "probe", "rate_hz": 1.0, "qos": qos},
    )


def rules_of(diagnostics):
    return [d.rule for d in diagnostics]


class TestUnproducibleReads:
    def test_rcp200_on_missing_datum_key(self):
        recipe = Recipe(
            "r",
            [
                sensor(),
                TaskSpec(
                    "d", "delta", inputs=["raw"], outputs=["out"],
                    params={"key": "pressure"},
                ),
            ],
        )
        diags = check_recipe_payloads(recipe, KEYS)
        assert rules_of(diags) == ["RCP200"]
        assert "task d" in diags[0].where
        assert "pressure" in diags[0].message

    def test_rcp200_on_missing_attribute(self):
        # Actuator wants attributes['command']; nothing produced it.
        recipe = Recipe(
            "r",
            [
                sensor(),
                TaskSpec(
                    "act", "actuator", inputs=["raw"], params={"device": "pager"}
                ),
            ],
        )
        diags = check_recipe_payloads(recipe, KEYS)
        assert rules_of(diags) == ["RCP200"]
        assert "command" in diags[0].message

    def test_key_produced_upstream_is_clean(self):
        recipe = Recipe(
            "r",
            [
                sensor(),
                TaskSpec(
                    "d", "delta", inputs=["raw"], outputs=["out"],
                    params={"key": "temp"},
                ),
            ],
        )
        assert check_recipe_payloads(recipe, KEYS) == []

    def test_unknown_device_keeps_schema_open(self):
        # Without a channel-key map absence proves nothing: no RCP200.
        recipe = Recipe(
            "r",
            [
                sensor(),
                TaskSpec(
                    "d", "delta", inputs=["raw"], outputs=["out"],
                    params={"key": "pressure"},
                ),
            ],
        )
        assert check_recipe_payloads(recipe, None) == []

    def test_select_narrows_downstream_schema(self):
        recipe = Recipe(
            "r",
            [
                sensor(),
                TaskSpec(
                    "keep", "map", inputs=["raw"], outputs=["narrow"],
                    params={"fn": "select", "keys": ["temp"]},
                ),
                TaskSpec(
                    "d", "delta", inputs=["narrow"], outputs=["out"],
                    params={"key": "hum"},
                ),
            ],
        )
        diags = check_recipe_payloads(recipe, KEYS)
        assert rules_of(diags) == ["RCP200"]
        assert "task d" in diags[0].where


class TestMergeAndRename:
    def test_rcp201_on_colliding_merge_inputs(self):
        recipe = Recipe(
            "r",
            [
                sensor("s1", "raw1"),
                sensor("s2", "raw2"),
                TaskSpec(
                    "m", "merge", inputs=["raw1", "raw2"], outputs=["joined"],
                    params={"require_all": False},
                ),
            ],
        )
        diags = check_recipe_payloads(recipe, KEYS)
        assert rules_of(diags) == ["RCP201"]
        assert "temp" in diags[0].message

    def test_rcp202_on_rename_overwrite(self):
        recipe = Recipe(
            "r",
            [
                sensor(),
                TaskSpec(
                    "ren", "map", inputs=["raw"], outputs=["out"],
                    params={"fn": "rename", "mapping": {"temp": "hum"}},
                ),
            ],
        )
        diags = check_recipe_payloads(recipe, KEYS)
        assert "RCP202" in rules_of(diags)


class TestAtLeastOnce:
    def qos1_train(self, with_dedup: bool):
        tasks = [sensor(qos=1)]
        feed = "raw"
        if with_dedup:
            tasks.append(
                TaskSpec(
                    "dd", "dedup", inputs=["raw"], outputs=["clean"],
                    params={"qos": 1},
                )
            )
            feed = "clean"
        tasks.append(
            TaskSpec(
                "train", "train", inputs=[feed],
                params={"model": "classifier", "label_key": "label", "qos": 1},
            )
        )
        return Recipe("r", tasks)

    def test_rcp210_qos1_into_train_without_dedup(self):
        # The acceptance pair's broken half: structurally valid under the
        # RCP1xx checks, but a QoS 1 redelivery re-trains the model.
        diags = check_recipe_payloads(self.qos1_train(with_dedup=False), KEYS)
        assert rules_of(diags) == ["RCP210"]
        assert "task train" in diags[0].where

    def test_dedup_on_the_path_clears_rcp210(self):
        assert check_recipe_payloads(self.qos1_train(with_dedup=True), KEYS) == []

    def test_qos0_into_train_is_clean(self):
        recipe = Recipe(
            "r",
            [
                sensor(),
                TaskSpec(
                    "train", "train", inputs=["raw"],
                    params={"model": "classifier", "label_key": "label"},
                ),
            ],
        )
        assert check_recipe_payloads(recipe, KEYS) == []

    def test_align_window_is_exempt_but_taint_flows_through(self):
        # An aligning window overwrites the same per-source slot, so it is
        # not itself corrupted — but its batches are still delivered
        # at-least-once to the learner behind it.
        recipe = Recipe(
            "r",
            [
                sensor(qos=1),
                TaskSpec(
                    "w", "window", inputs=["raw"], outputs=["batch"],
                    params={"mode": "align", "arity": 1, "qos": 1},
                ),
                TaskSpec(
                    "train", "train", inputs=["batch"],
                    params={"model": "classifier", "label_key": "label", "qos": 1},
                ),
            ],
        )
        diags = check_recipe_payloads(recipe, KEYS)
        assert rules_of(diags) == ["RCP210"]
        assert "task train" in diags[0].where

    def test_rcp211_inert_dedup(self):
        recipe = Recipe(
            "r",
            [
                sensor(),
                TaskSpec("dd", "dedup", inputs=["raw"], outputs=["clean"]),
            ],
        )
        diags = check_recipe_payloads(recipe, KEYS)
        assert rules_of(diags) == ["RCP211"]

    def test_rcp212_dedup_after_merging_operator(self):
        recipe = Recipe(
            "r",
            [
                sensor("s1", "raw1", qos=1),
                sensor("s2", "raw2", qos=1),
                TaskSpec(
                    "m", "merge", inputs=["raw1", "raw2"], outputs=["joined"],
                    params={"require_all": False, "qos": 1},
                ),
                TaskSpec(
                    "dd", "dedup", inputs=["joined"], outputs=["clean"],
                    params={"qos": 1},
                ),
            ],
        )
        diags = check_recipe_payloads(recipe, KEYS)
        assert "RCP212" in rules_of(diags)


class TestRealRecipes:
    """The shipped recipes under the real device maps (the CI gate)."""

    def test_fig5_recipe_has_no_errors(self):
        from repro.bench.scenarios import FIG5_RECIPE_PATH, fig5_device_keys
        from repro.core.dsl import parse_recipe
        from repro.util.validate import Severity

        recipe = parse_recipe(FIG5_RECIPE_PATH.read_text())
        diags = check_recipe_payloads(recipe, fig5_device_keys())
        assert [d for d in diags if d.severity >= Severity.WARNING] == []

    def test_paper_recipe_at_qos0_has_no_errors(self):
        from repro.bench.scenarios import build_paper_recipe, paper_device_keys
        from repro.util.validate import Severity

        diags = check_recipe_payloads(build_paper_recipe(5.0), paper_device_keys())
        assert [d for d in diags if d.severity >= Severity.WARNING] == []

    def test_paper_recipe_at_qos1_trips_rcp210(self):
        # Exactly the class of recipe the RCP1xx checker accepts (QoS is
        # coherent) but whose learner state a redelivery corrupts.
        from repro.bench.scenarios import build_paper_recipe, paper_device_keys

        diags = check_recipe_payloads(
            build_paper_recipe(5.0, qos=1), paper_device_keys()
        )
        assert "RCP210" in rules_of(diags)

    def test_failover_chaos_recipe_is_clean(self):
        # QoS 1 end to end, but the dedup stage guards the learner.
        from repro.bench.scenarios import paper_device_keys
        from repro.chaos.scenarios import build_chaos_recipe

        assert check_recipe_payloads(build_chaos_recipe(), paper_device_keys()) == []


# ---------------------------------------------------------------------------
# Random-DAG schema propagation property
# ---------------------------------------------------------------------------

_KEY_POOL = ("temp", "hum", "label", "lux", "co2")


@st.composite
def transform_chains(draw):
    """A sensor followed by a random chain of select/rename transforms.

    Returns (recipe, expected_keys): the expected key set is computed by
    directly interpreting the chain, independently of the lattice code.
    """
    keys = set(_KEY_POOL[: draw(st.integers(2, len(_KEY_POOL)))])
    tasks = [
        TaskSpec("sense", "sensor", outputs=["s0"], params={"device": "dev"})
    ]
    expected = set(keys)
    steps = draw(st.integers(0, 4))
    for i in range(steps):
        kind = draw(st.sampled_from(["select", "rename"]))
        if kind == "select" and expected:
            chosen = draw(
                st.lists(
                    st.sampled_from(sorted(expected)), min_size=1, unique=True
                )
            )
            params = {"fn": "select", "keys": chosen}
            expected = set(chosen)
        else:
            if not expected:
                continue
            old = draw(st.sampled_from(sorted(expected)))
            new = draw(st.sampled_from(_KEY_POOL + ("renamed",)))
            params = {"fn": "rename", "mapping": {old: new}}
            expected.discard(old)
            expected.add(new)
        tasks.append(
            TaskSpec(
                f"t{i}", "map", inputs=[f"s{i}"], outputs=[f"s{i + 1}"],
                params=params,
            )
        )
    return Recipe("chain", tasks), {"dev": tuple(sorted(keys))}, expected, steps


@given(transform_chains())
@settings(max_examples=60, deadline=None)
def test_schema_propagation_matches_direct_interpretation(case):
    recipe, device_keys, expected, steps = case
    schemas = propagate_schemas(recipe, device_keys)
    final = schemas[f"s{len(recipe.tasks) - 1}"]
    assert not final.open_datum
    assert final.datum == frozenset(expected)
    # Determinism: the walk is a pure function of (recipe, device map).
    assert propagate_schemas(recipe, device_keys) == schemas


@given(transform_chains(), st.sampled_from(_KEY_POOL + ("renamed", "absent")))
@settings(max_examples=60, deadline=None)
def test_rcp200_fires_iff_key_unproducible(case, probe_key):
    recipe, device_keys, expected, steps = case
    reader = TaskSpec(
        "read",
        "delta",
        inputs=[f"s{len(recipe.tasks) - 1}"],
        outputs=["final"],
        params={"key": probe_key},
    )
    extended = Recipe("chain", list(recipe.tasks.values()) + [reader])
    diags = [
        d
        for d in check_recipe_payloads(extended, device_keys)
        if d.rule == "RCP200" and "task read" in d.where
    ]
    if probe_key in expected:
        assert diags == []
    else:
        assert len(diags) == 1
