import math

import pytest

from repro.util.stats import Histogram, LatencyRecorder, RunningStats


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert math.isnan(s.mean)
        assert math.isnan(s.variance)
        assert math.isnan(s.minimum)
        assert math.isnan(s.maximum)

    def test_basic_moments(self):
        s = RunningStats()
        for x in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            s.add(x)
        assert s.mean == pytest.approx(5.0)
        assert s.variance == pytest.approx(4.0)
        assert s.stddev == pytest.approx(2.0)
        assert s.minimum == 2.0
        assert s.maximum == 9.0

    def test_single_value(self):
        s = RunningStats()
        s.add(3.5)
        assert s.mean == 3.5
        assert s.variance == 0.0
        assert s.minimum == s.maximum == 3.5

    def test_merge_matches_sequential(self):
        values = [float(i * i % 17) for i in range(50)]
        whole = RunningStats()
        for v in values:
            whole.add(v)
        left, right = RunningStats(), RunningStats()
        for v in values[:20]:
            left.add(v)
        for v in values[20:]:
            right.add(v)
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean)
        assert left.variance == pytest.approx(whole.variance)
        assert left.minimum == whole.minimum
        assert left.maximum == whole.maximum

    def test_merge_empty_cases(self):
        s = RunningStats()
        s.add(1.0)
        empty = RunningStats()
        s.merge(empty)
        assert s.count == 1
        empty2 = RunningStats()
        empty2.merge(s)
        assert empty2.mean == 1.0


class TestLatencyRecorder:
    def test_summary_columns(self):
        rec = LatencyRecorder("t")
        rec.extend([10.0, 20.0, 30.0])
        summary = rec.summary()
        assert summary["count"] == 3
        assert summary["avg"] == pytest.approx(20.0)
        assert summary["max"] == 30.0
        assert summary["min"] == 10.0
        assert summary["p50"] == pytest.approx(20.0)

    def test_percentile_interpolation(self):
        rec = LatencyRecorder()
        rec.extend([0.0, 10.0])
        assert rec.percentile(50) == pytest.approx(5.0)
        assert rec.percentile(0) == 0.0
        assert rec.percentile(100) == 10.0

    def test_percentile_empty_is_nan(self):
        assert math.isnan(LatencyRecorder().percentile(50))

    def test_percentile_range_check(self):
        rec = LatencyRecorder()
        rec.add(1.0)
        with pytest.raises(ValueError):
            rec.percentile(101)

    def test_samples_are_copies(self):
        rec = LatencyRecorder()
        rec.add(1.0)
        rec.samples().clear() if callable(rec.samples) else None
        # samples is a property returning a copy
        snapshot = rec.samples
        snapshot.append(99.0)
        assert rec.count == 1


class TestHistogram:
    def test_binning(self):
        h = Histogram(lower=0.0, upper=10.0, bins=5)
        for v in (0.0, 1.9, 2.0, 9.99):
            h.add(v)
        assert h.counts == [2, 1, 0, 0, 1]

    def test_under_overflow(self):
        h = Histogram(lower=0.0, upper=1.0, bins=2)
        h.add(-0.1)
        h.add(1.0)  # upper edge is exclusive
        assert h.underflow == 1
        assert h.overflow == 1
        assert h.total == 2

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Histogram(lower=0.0, upper=0.0, bins=3)
        with pytest.raises(ValueError):
            Histogram(lower=0.0, upper=1.0, bins=0)

    def test_render_has_one_line_per_bin(self):
        h = Histogram(lower=0.0, upper=4.0, bins=4)
        h.add(1.0)
        assert len(h.render().splitlines()) == 4
