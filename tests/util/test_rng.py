from repro.util.rng import RngRegistry, derive_seed


def test_derive_seed_is_stable():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_streams_are_memoized():
    reg = RngRegistry(seed=7)
    assert reg.stream("x") is reg.stream("x")


def test_streams_are_independent():
    """Creating a new stream must not perturb draws from an existing one."""
    reg1 = RngRegistry(seed=7)
    a_only = [reg1.stream("a").random() for _ in range(5)]

    reg2 = RngRegistry(seed=7)
    reg2.stream("b").random()  # interleave another stream
    a_with_b = [reg2.stream("a").random() for _ in range(5)]
    assert a_only == a_with_b


def test_same_seed_replays():
    one = RngRegistry(seed=3).stream("s")
    two = RngRegistry(seed=3).stream("s")
    assert [one.random() for _ in range(10)] == [two.random() for _ in range(10)]


def test_different_seeds_differ():
    one = RngRegistry(seed=3).stream("s")
    two = RngRegistry(seed=4).stream("s")
    assert [one.random() for _ in range(5)] != [two.random() for _ in range(5)]


def test_fork_namespaces():
    reg = RngRegistry(seed=9)
    fork_a = reg.fork("node-a")
    fork_b = reg.fork("node-b")
    assert fork_a.stream("x").random() != fork_b.stream("x").random()
    # Forks are deterministic too.
    again = RngRegistry(seed=9).fork("node-a")
    assert RngRegistry(seed=9).fork("node-a").seed == again.seed


def test_reset_replays_from_start():
    reg = RngRegistry(seed=5)
    first = reg.stream("s").random()
    reg.reset()
    assert reg.stream("s").random() == first
