import pytest

from repro.util.ringbuffer import RingBuffer


def test_append_until_full_then_evict():
    buf = RingBuffer(3)
    assert buf.append(1) is None
    assert buf.append(2) is None
    assert buf.append(3) is None
    assert buf.full
    assert buf.append(4) == 1
    assert buf.to_list() == [2, 3, 4]


def test_indexing_and_negatives():
    buf = RingBuffer(4, items=[10, 20, 30])
    assert buf[0] == 10
    assert buf[-1] == 30
    assert buf[2] == 30
    with pytest.raises(IndexError):
        buf[3]
    with pytest.raises(IndexError):
        buf[-4]


def test_oldest_newest():
    buf = RingBuffer(2)
    with pytest.raises(IndexError):
        buf.oldest()
    with pytest.raises(IndexError):
        buf.newest()
    buf.append("a")
    buf.append("b")
    buf.append("c")
    assert buf.oldest() == "b"
    assert buf.newest() == "c"


def test_iteration_order_after_wrap():
    buf = RingBuffer(3)
    for i in range(7):
        buf.append(i)
    assert list(buf) == [4, 5, 6]


def test_clear():
    buf = RingBuffer(3, items=[1, 2, 3])
    buf.clear()
    assert len(buf) == 0
    buf.append(9)
    assert buf.to_list() == [9]


def test_invalid_capacity():
    with pytest.raises(ValueError):
        RingBuffer(0)


def test_len_tracks_size():
    buf = RingBuffer(5)
    assert len(buf) == 0
    buf.append(1)
    assert len(buf) == 1
