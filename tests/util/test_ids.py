from repro.util.ids import IdGenerator


def test_sequential_per_namespace():
    gen = IdGenerator()
    assert gen.next("node") == "node-0"
    assert gen.next("node") == "node-1"
    assert gen.next("msg") == "msg-0"
    assert gen.next("node") == "node-2"


def test_next_int_and_peek():
    gen = IdGenerator()
    assert gen.peek("x") == 0
    assert gen.next_int("x") == 0
    assert gen.next_int("x") == 1
    assert gen.peek("x") == 2


def test_reset_single_namespace():
    gen = IdGenerator()
    gen.next("a")
    gen.next("b")
    gen.reset("a")
    assert gen.next("a") == "a-0"
    assert gen.next("b") == "b-1"


def test_reset_all():
    gen = IdGenerator()
    gen.next("a")
    gen.next("b")
    gen.reset()
    assert gen.next("a") == "a-0"
    assert gen.next("b") == "b-0"
