import math

import pytest

from repro.errors import SerializationError
from repro.util.serialization import decode_payload, encode_payload, payload_size


def test_round_trip_scalars():
    for value in (None, True, False, 0, -17, 3.25, "hello", ""):
        assert decode_payload(encode_payload(value)) == value


def test_round_trip_nested():
    value = {"a": [1, 2, {"b": "x"}], "c": {"d": None}}
    assert decode_payload(encode_payload(value)) == value


def test_canonical_key_order():
    a = encode_payload({"b": 1, "a": 2})
    b = encode_payload({"a": 2, "b": 1})
    assert a == b


def test_tuple_becomes_list():
    assert decode_payload(encode_payload((1, 2))) == [1, 2]


def test_rejects_nan_and_inf():
    for bad in (math.nan, math.inf, -math.inf):
        with pytest.raises(SerializationError):
            encode_payload({"x": bad})


def test_rejects_non_string_keys():
    with pytest.raises(SerializationError):
        encode_payload({1: "x"})


def test_rejects_unknown_types():
    with pytest.raises(SerializationError):
        encode_payload({"x": object()})
    with pytest.raises(SerializationError):
        encode_payload({"x": b"bytes"})


def test_error_mentions_path():
    with pytest.raises(SerializationError, match=r"\$\.outer\[1\]"):
        encode_payload({"outer": [1, object()]})


def test_decode_garbage():
    with pytest.raises(SerializationError):
        decode_payload(b"\xff\xfe")
    with pytest.raises(SerializationError):
        decode_payload(b"{not json")


def test_payload_size_matches_encoding():
    value = {"key": "value", "n": 1}
    assert payload_size(value) == len(encode_payload(value))
