import pytest

from repro.errors import ConfigurationError
from repro.util.validate import (
    require_in_range,
    require_name,
    require_non_negative,
    require_positive,
)


def test_require_positive():
    assert require_positive(1, "x") == 1
    assert require_positive(0.5, "x") == 0.5
    for bad in (0, -1, -0.1):
        with pytest.raises(ConfigurationError, match="x"):
            require_positive(bad, "x")


def test_require_non_negative():
    assert require_non_negative(0, "x") == 0
    with pytest.raises(ConfigurationError):
        require_non_negative(-1e-9, "x")


def test_require_in_range():
    assert require_in_range(0.5, 0.0, 1.0, "x") == 0.5
    assert require_in_range(0.0, 0.0, 1.0, "x") == 0.0
    assert require_in_range(1.0, 0.0, 1.0, "x") == 1.0
    with pytest.raises(ConfigurationError):
        require_in_range(1.01, 0.0, 1.0, "x")


def test_require_name():
    assert require_name("ok", "x") == "ok"
    for bad in ("", " padded", "padded ", None, 7):
        with pytest.raises(ConfigurationError):
            require_name(bad, "x")
