import pytest

from repro.errors import ConfigurationError
from repro.util.validate import (
    Diagnostic,
    Severity,
    blocking,
    max_severity,
    require_in_range,
    require_name,
    require_non_negative,
    require_positive,
)


def test_require_positive():
    assert require_positive(1, "x") == 1
    assert require_positive(0.5, "x") == 0.5
    for bad in (0, -1, -0.1):
        with pytest.raises(ConfigurationError, match="x"):
            require_positive(bad, "x")


def test_require_non_negative():
    assert require_non_negative(0, "x") == 0
    with pytest.raises(ConfigurationError):
        require_non_negative(-1e-9, "x")


def test_require_in_range():
    assert require_in_range(0.5, 0.0, 1.0, "x") == 0.5
    assert require_in_range(0.0, 0.0, 1.0, "x") == 0.0
    assert require_in_range(1.0, 0.0, 1.0, "x") == 1.0
    with pytest.raises(ConfigurationError):
        require_in_range(1.01, 0.0, 1.0, "x")


def test_require_name():
    assert require_name("ok", "x") == "ok"
    for bad in ("", " padded", "padded ", None, 7):
        with pytest.raises(ConfigurationError):
            require_name(bad, "x")


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_str_is_lowercase_name(self):
        assert str(Severity.WARNING) == "warning"

    def test_parse_round_trips(self):
        for sev in Severity:
            assert Severity.parse(str(sev)) is sev

    def test_parse_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="fatal"):
            Severity.parse("fatal")


class TestDiagnostic:
    def make(self, **kw):
        defaults = dict(
            rule="DET001", severity=Severity.ERROR, message="wall-clock call"
        )
        defaults.update(kw)
        return Diagnostic(**defaults)

    def test_source_location_format(self):
        diag = self.make(file="a.py", line=3, col=7, hint="use runtime.now")
        assert diag.location == "a.py:3:7"
        assert diag.format() == (
            "a.py:3:7: error[DET001] wall-clock call  (use runtime.now)"
        )

    def test_artifact_location_format(self):
        diag = self.make(rule="RCP104", where="app:tasks a, b")
        assert diag.location == "app:tasks a, b"
        assert "error[RCP104]" in diag.format()

    def test_fallback_location(self):
        assert self.make().location == "<artifact>"

    def test_to_dict_includes_location(self):
        payload = self.make(file="a.py", line=1, col=0).to_dict()
        assert payload["location"] == "a.py:1:0"
        assert payload["severity"] == "error"

    def test_replace(self):
        diag = self.make().replace(file="b.py", line=9)
        assert diag.location == "b.py:9"
        assert diag.rule == "DET001"

    def test_sort_key_orders_by_file_then_line(self):
        diags = [
            self.make(file="b.py", line=1),
            self.make(file="a.py", line=9),
            self.make(file="a.py", line=2),
        ]
        ordered = sorted(diags, key=lambda d: d.sort_key)
        assert [(d.file, d.line) for d in ordered] == [
            ("a.py", 2),
            ("a.py", 9),
            ("b.py", 1),
        ]


class TestGating:
    def diags(self):
        return [
            Diagnostic("A", Severity.INFO, "i"),
            Diagnostic("B", Severity.WARNING, "w"),
            Diagnostic("C", Severity.ERROR, "e"),
        ]

    def test_max_severity(self):
        assert max_severity(self.diags()) is Severity.ERROR
        assert max_severity([]) is None

    def test_blocking_default_is_errors_only(self):
        assert [d.rule for d in blocking(self.diags())] == ["C"]

    def test_blocking_strict_includes_warnings(self):
        assert [d.rule for d in blocking(self.diags(), strict=True)] == ["B", "C"]


def test_static_check_error_carries_diagnostics():
    from repro.errors import StaticCheckError

    diags = [
        Diagnostic("RCP104", Severity.ERROR, "cycle", where="app:tasks a, b")
    ]
    exc = StaticCheckError("recipe rejected", diags)
    assert exc.diagnostics == diags
    assert "recipe rejected" in str(exc)
    assert "RCP104" in str(exc)
