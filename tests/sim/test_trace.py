from repro.sim.trace import Tracer


def test_emit_and_select():
    t = Tracer()
    t.emit(1.0, "a", "ev.x", value=1)
    t.emit(2.0, "b", "ev.y")
    t.emit(3.0, "a", "ev.y")
    assert len(t) == 3
    assert [r.time for r in t.select(event="ev.y")] == [2.0, 3.0]
    assert [r.event for r in t.select(source="a")] == ["ev.x", "ev.y"]
    assert len(t.select(event="ev.y", source="a")) == 1


def test_count():
    t = Tracer()
    for _ in range(3):
        t.emit(0.0, "s", "e")
    assert t.count("e") == 3
    assert t.count("other") == 0


def test_record_getitem():
    t = Tracer()
    t.emit(0.0, "s", "e", foo="bar")
    record = t.select("e")[0]
    assert record["foo"] == "bar"


def test_taps_fire_even_when_disabled():
    t = Tracer(enabled=False)
    seen = []
    t.tap("e", seen.append)
    t.emit(0.0, "s", "e", n=1)
    assert len(t) == 0  # not stored
    assert len(seen) == 1  # but tapped
    assert seen[0]["n"] == 1


def test_multiple_taps_same_event():
    t = Tracer()
    a, b = [], []
    t.tap("e", a.append)
    t.tap("e", b.append)
    t.emit(0.0, "s", "e")
    assert len(a) == len(b) == 1


def test_clear():
    t = Tracer()
    t.emit(0.0, "s", "e")
    t.clear()
    assert len(t) == 0


def test_iteration():
    t = Tracer()
    t.emit(0.0, "s", "e1")
    t.emit(1.0, "s", "e2")
    assert [r.event for r in t] == ["e1", "e2"]


def test_jsonl_round_trip(tmp_path):
    t = Tracer()
    t.emit(1.0, "a", "ev.x", value=1, name="hello")
    t.emit(2.5, "b", "ev.y", nested={"k": [1, 2]})
    path = tmp_path / "trace.jsonl"
    assert t.to_jsonl(path) == 2
    clone = Tracer.from_jsonl(path)
    assert len(clone) == 2
    records = list(clone)
    assert records[0].time == 1.0
    assert records[0].source == "a"
    assert records[0]["value"] == 1
    assert records[1]["nested"] == {"k": [1, 2]}


def test_jsonl_unencodable_fields_reprd(tmp_path):
    t = Tracer()
    t.emit(0.0, "s", "e", weird=object())
    path = tmp_path / "trace.jsonl"
    t.to_jsonl(path)
    clone = Tracer.from_jsonl(path)
    assert "object" in list(clone)[0]["weird"]


def test_jsonl_empty(tmp_path):
    t = Tracer()
    path = tmp_path / "trace.jsonl"
    assert t.to_jsonl(path) == 0
    assert len(Tracer.from_jsonl(path)) == 0
