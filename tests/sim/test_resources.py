import pytest

from repro.errors import ConfigurationError
from repro.sim.kernel import SimKernel
from repro.sim.resources import CpuResource


def test_fifo_serialization():
    k = SimKernel()
    cpu = CpuResource(k)
    done = []
    for i in range(3):
        cpu.submit(1.0, lambda i=i: done.append((i, k.now)))
    k.run()
    assert done == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_speed_scales_service_time():
    k = SimKernel()
    cpu = CpuResource(k, speed=2.0)
    done = []
    cpu.submit(1.0, lambda: done.append(k.now))
    k.run()
    assert done == [0.5]


def test_multiple_servers_run_in_parallel():
    k = SimKernel()
    cpu = CpuResource(k, servers=2)
    done = []
    for i in range(3):
        cpu.submit(1.0, lambda i=i: done.append((i, k.now)))
    k.run()
    assert done == [(0, 1.0), (1, 1.0), (2, 2.0)]


def test_zero_cost_job_completes_immediately():
    k = SimKernel()
    cpu = CpuResource(k)
    done = []
    cpu.submit(0.0, lambda: done.append(k.now))
    k.run()
    assert done == [0.0]


def test_negative_cost_rejected():
    k = SimKernel()
    cpu = CpuResource(k)
    with pytest.raises(ConfigurationError):
        cpu.submit(-1.0, lambda: None)


def test_stats_and_utilization():
    k = SimKernel()
    cpu = CpuResource(k)
    for _ in range(4):
        cpu.submit(0.5, None)
    k.run(until=10.0)
    assert cpu.stats.jobs_submitted == 4
    assert cpu.stats.jobs_completed == 4
    assert cpu.stats.busy_time == pytest.approx(2.0)
    assert cpu.stats.utilization(10.0) == pytest.approx(0.2)
    assert cpu.stats.max_queue_length >= 1


def test_wait_time_recorded():
    k = SimKernel()
    cpu = CpuResource(k)
    cpu.submit(2.0, None)
    cpu.submit(1.0, None)
    k.run()
    # Second job waited 2.0s behind the first.
    assert cpu.wait_times.maximum == pytest.approx(2.0)
    assert cpu.service_times.mean == pytest.approx(1.5)


def test_queue_limit_drops_newest():
    k = SimKernel()
    cpu = CpuResource(k, queue_limit=2)
    done = []
    # One in service + two queued = capacity; the 4th is dropped.
    for i in range(4):
        cpu.submit(1.0, lambda i=i: done.append(i))
    k.run()
    assert done == [0, 1, 2]
    assert cpu.stats.jobs_dropped == 1
    assert cpu.stats.jobs_submitted == 4
    assert cpu.stats.jobs_completed == 3


def test_queue_limit_allows_after_drain():
    k = SimKernel()
    cpu = CpuResource(k, queue_limit=1)
    done = []
    cpu.submit(1.0, lambda: done.append("a"))
    cpu.submit(1.0, lambda: done.append("b"))
    k.run()
    cpu.submit(1.0, lambda: done.append("c"))
    k.run()
    assert done == ["a", "b", "c"]


def test_execute_convenience():
    k = SimKernel()
    cpu = CpuResource(k)
    out = []
    cpu.execute(0.25, out.append, 7)
    k.run()
    assert out == [7]
    assert k.now == 0.25


def test_queue_length_property():
    k = SimKernel()
    cpu = CpuResource(k)
    cpu.submit(1.0, None)
    cpu.submit(1.0, None)
    assert cpu.busy_servers == 1
    assert cpu.queue_length == 1
