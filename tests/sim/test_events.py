from repro.sim.events import EventQueue


def test_pop_in_time_order():
    q = EventQueue()
    fired = []
    q.push(3.0, fired.append, ("c",))
    q.push(1.0, fired.append, ("a",))
    q.push(2.0, fired.append, ("b",))
    while (handle := q.pop()) is not None:
        handle.callback(*handle.args)
    assert fired == ["a", "b", "c"]


def test_fifo_tie_break_at_same_time():
    q = EventQueue()
    order = []
    for i in range(5):
        q.push(1.0, order.append, (i,))
    while (handle := q.pop()) is not None:
        handle.callback(*handle.args)
    assert order == [0, 1, 2, 3, 4]


def test_cancel_skips_event():
    q = EventQueue()
    fired = []
    keep = q.push(1.0, fired.append, ("keep",))
    drop = q.push(0.5, fired.append, ("drop",))
    drop.cancel()
    while (handle := q.pop()) is not None:
        handle.callback(*handle.args)
    assert fired == ["keep"]
    assert keep.time == 1.0


def test_cancel_is_idempotent():
    q = EventQueue()
    handle = q.push(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert q.pop() is None


def test_peek_time_skips_cancelled():
    q = EventQueue()
    first = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    first.cancel()
    assert q.peek_time() == 2.0


def test_peek_time_empty():
    assert EventQueue().peek_time() is None


def test_clear():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.pop() is None
