import pytest

from repro.errors import ClockError
from repro.sim.kernel import SimKernel


def test_run_advances_clock_to_last_event():
    k = SimKernel()
    fired = []
    k.schedule(5.0, fired.append, "a")
    k.schedule(2.0, fired.append, "b")
    k.run()
    assert fired == ["b", "a"]
    assert k.now == 5.0


def test_run_until_advances_clock_even_without_events():
    k = SimKernel()
    k.run(until=10.0)
    assert k.now == 10.0


def test_run_until_does_not_execute_later_events():
    k = SimKernel()
    fired = []
    k.schedule(5.0, fired.append, "late")
    k.run(until=3.0)
    assert fired == []
    assert k.now == 3.0
    k.run(until=6.0)
    assert fired == ["late"]


def test_schedule_in_past_rejected():
    k = SimKernel()
    with pytest.raises(ClockError):
        k.schedule(-1.0, lambda: None)
    k.run(until=5.0)
    with pytest.raises(ClockError):
        k.schedule_at(4.0, lambda: None)


def test_call_soon_runs_at_current_time_in_order():
    k = SimKernel()
    order = []
    k.schedule(1.0, lambda: (order.append("t1"), k.call_soon(order.append, "soon")))
    k.schedule(1.0, order.append, "t1b")
    k.run()
    assert order == ["t1", "t1b", "soon"]
    assert k.now == 1.0


def test_step_returns_false_when_drained():
    k = SimKernel()
    k.schedule(1.0, lambda: None)
    assert k.step() is True
    assert k.step() is False


def test_events_scheduled_during_run_execute():
    k = SimKernel()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            k.schedule(1.0, chain, n + 1)

    k.schedule(0.0, chain, 0)
    k.run()
    assert fired == [0, 1, 2, 3]
    assert k.now == 3.0


def test_max_events_guard():
    k = SimKernel()

    def forever():
        k.schedule(0.0, forever)

    k.schedule(0.0, forever)
    with pytest.raises(ClockError):
        k.run_until_idle(max_events=100)


def test_reset():
    k = SimKernel()
    k.schedule(1.0, lambda: None)
    k.run()
    k.reset()
    assert k.now == 0.0
    assert k.events_processed == 0
    assert k.pending == 0


def test_reentrant_run_rejected():
    k = SimKernel()

    def nested():
        k.run()

    k.schedule(0.0, nested)
    with pytest.raises(ClockError):
        k.run()


def test_events_processed_counter():
    k = SimKernel()
    for i in range(4):
        k.schedule(float(i), lambda: None)
    k.run()
    assert k.events_processed == 4
