"""Differential equivalence suite for the kernel hot-path optimizations.

The speed campaign (event pooling, monitor-hook fast paths, the MQTT wire
fast path, broker fan-out caching) must be *invisible* to the simulation:
the schedule, the trace, and the profile are functions of (scenario,
seed) only, never of which optimizations happen to be enabled. These
tests run the same scenario under each toggle and require byte-identical
digests:

* ``REPRO_EVENT_POOL=0``  — event-handle pooling disabled;
* ``packets.WIRE_FASTPATH = False`` — every packet round-trips through
  canonical JSON bytes instead of the in-process decode bypass;
* profiler attached / detached — the kernel's hooked vs hook-free run
  loops (and the begin-only specialization between them).
"""

from __future__ import annotations

import pytest

from repro.chaos import SCENARIOS, run_scenario, trace_digest
from repro.mqtt import packets
from repro.prof import enable_profiling, profile_digest

CHAOS_SCENARIOS = sorted(SCENARIOS)


def _digest_excluding_prof(tracer) -> str:
    """The trace digest minus profiler-emitted sampling records.

    Attaching the profiler adds periodic ``prof``-source utilization
    records (and the sampler events that produce them) — legitimately.
    Hooks ON/OFF equivalence therefore compares the *application* trace:
    everything except what the observer itself wrote.
    """
    import hashlib

    digest = hashlib.sha256()
    for record in tracer:
        if record.source == "prof":
            continue
        line = (
            f"{record.time!r}|{record.source}|{record.event}"
            f"|{sorted(record.fields.items())!r}\n"
        )
        digest.update(line.encode())
    return digest.hexdigest()

#: Short fig5 run — equivalence is about digests matching across
#: configurations, not about the full 30 s workload.
FIG5_DURATION_S = 8.0


# ----------------------------------------------------------------------
# Chaos scenarios: all 7, every toggle
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def chaos_baseline():
    """Every scenario once under default toggles (pooling on, wire fast
    path on, no monitor hooks) — the reference digests."""
    return {name: run_scenario(name, seed=0) for name in CHAOS_SCENARIOS}


@pytest.mark.parametrize("name", CHAOS_SCENARIOS)
def test_pooling_off_equivalence(name, chaos_baseline, monkeypatch):
    monkeypatch.setenv("REPRO_EVENT_POOL", "0")
    unpooled = run_scenario(name, seed=0)
    base = chaos_baseline[name]
    assert unpooled.trace_records == base.trace_records
    assert unpooled.trace_digest == base.trace_digest
    assert unpooled.report.ok == base.report.ok


@pytest.mark.parametrize("name", CHAOS_SCENARIOS)
def test_hooks_on_equivalence(name, chaos_baseline):
    """Attaching the profiler adds only its own ``prof`` sampling records;
    the application trace is untouched."""
    profiled = run_scenario(name, seed=0, profile=True)
    base = chaos_baseline[name]
    assert profiled.tracer is not None and base.tracer is not None
    assert _digest_excluding_prof(profiled.tracer) == _digest_excluding_prof(
        base.tracer
    )
    assert profiled.profiler is not None
    assert profiled.profiler.events_profiled > 0


@pytest.mark.parametrize("name", CHAOS_SCENARIOS)
def test_wire_fastpath_off_equivalence(name, chaos_baseline, monkeypatch):
    monkeypatch.setattr(packets, "WIRE_FASTPATH", False)
    slow = run_scenario(name, seed=0)
    base = chaos_baseline[name]
    assert slow.trace_records == base.trace_records
    assert slow.trace_digest == base.trace_digest


@pytest.mark.parametrize("name", CHAOS_SCENARIOS)
def test_profile_digest_pool_invariance(name, monkeypatch):
    """The profile (busy-time attribution, event counts) is identical
    whether or not handles are recycled through the pool."""
    pooled = run_scenario(name, seed=0, profile=True)
    monkeypatch.setenv("REPRO_EVENT_POOL", "0")
    unpooled = run_scenario(name, seed=0, profile=True)
    assert pooled.profiler is not None and unpooled.profiler is not None
    assert (
        unpooled.profiler.events_profiled == pooled.profiler.events_profiled
    )
    assert profile_digest(unpooled.profiler) == profile_digest(pooled.profiler)
    assert unpooled.trace_digest == pooled.trace_digest


# ----------------------------------------------------------------------
# Fig. 5: the benchmark workload itself
# ----------------------------------------------------------------------


def _run_fig5(profiled: bool = True):
    from repro.bench.calibration import pi_cost_model
    from repro.bench.scenarios import run_fig5_experiment

    runtime = run_fig5_experiment(
        seed=55,
        duration_s=FIG5_DURATION_S,
        observe=False,
        prepare=(lambda rt: enable_profiling(rt)) if profiled else None,
        cost_model=pi_cost_model(),
    )
    return runtime


@pytest.fixture(scope="module")
def fig5_baseline():
    runtime = _run_fig5(profiled=True)
    assert runtime.prof is not None
    return {
        "trace_digest": trace_digest(runtime.tracer),
        "app_trace_digest": _digest_excluding_prof(runtime.tracer),
        "trace_records": len(runtime.tracer),
        "events": runtime.prof.events_profiled,
        "profile_digest": profile_digest(runtime.prof),
    }


def test_fig5_pooling_off_equivalence(fig5_baseline, monkeypatch):
    monkeypatch.setenv("REPRO_EVENT_POOL", "0")
    runtime = _run_fig5(profiled=True)
    assert trace_digest(runtime.tracer) == fig5_baseline["trace_digest"]
    assert len(runtime.tracer) == fig5_baseline["trace_records"]
    assert runtime.prof.events_profiled == fig5_baseline["events"]
    assert profile_digest(runtime.prof) == fig5_baseline["profile_digest"]


def test_fig5_wire_fastpath_off_equivalence(fig5_baseline, monkeypatch):
    monkeypatch.setattr(packets, "WIRE_FASTPATH", False)
    runtime = _run_fig5(profiled=True)
    assert trace_digest(runtime.tracer) == fig5_baseline["trace_digest"]
    assert len(runtime.tracer) == fig5_baseline["trace_records"]
    assert runtime.prof.events_profiled == fig5_baseline["events"]
    assert profile_digest(runtime.prof) == fig5_baseline["profile_digest"]


def test_fig5_hooks_off_equivalence(fig5_baseline):
    """With no monitor attached the kernel takes its hook-free loop; the
    application trace must not notice."""
    runtime = _run_fig5(profiled=False)
    assert runtime.prof is None
    assert trace_digest(runtime.tracer) == fig5_baseline["app_trace_digest"]


def test_fig5_all_toggles_off_equivalence(fig5_baseline, monkeypatch):
    """Belt and braces: every optimization off at once, hooks on."""
    monkeypatch.setenv("REPRO_EVENT_POOL", "0")
    monkeypatch.setattr(packets, "WIRE_FASTPATH", False)
    runtime = _run_fig5(profiled=True)
    assert trace_digest(runtime.tracer) == fig5_baseline["trace_digest"]
    assert profile_digest(runtime.prof) == fig5_baseline["profile_digest"]


# ----------------------------------------------------------------------
# SLO engine: off = byte-identical, on = app-trace invisible
# ----------------------------------------------------------------------


def _digest_excluding(tracer, sources: frozenset) -> str:
    """Trace digest minus records the given observer sources wrote.

    The SLO engine registers extra gauges in the shared metrics registry,
    so ``obs.metrics`` scrape records legitimately differ with it on; the
    *application* trace (everything not written by an observer) must not.
    """
    import hashlib

    digest = hashlib.sha256()
    for record in tracer:
        if record.source in sources:
            continue
        line = (
            f"{record.time!r}|{record.source}|{record.event}"
            f"|{sorted(record.fields.items())!r}\n"
        )
        digest.update(line.encode())
    return digest.hexdigest()


_OBSERVER_SOURCES = frozenset({"slo", "obs", "prof"})


def _suppress_status_publisher(monkeypatch):
    """Install enable_slo without the retained-status MQTT publisher.

    The engine's *computation* (taps, timers, sketches) must be invisible
    to the application trace; the retained ``ifot/ctl/status/slo``
    publication is deliberate control-plane traffic that shares the
    simulated WLAN and therefore legitimately perturbs frame timing.
    Equivalence is asserted on the former.
    """
    import repro.obs.slo as slo_module

    real_enable = slo_module.enable_slo

    def quiet_enable(runtime, recipe=None, flows=None, cluster=None, **kwargs):
        return real_enable(
            runtime, recipe=recipe, flows=flows, cluster=None, **kwargs
        )

    monkeypatch.setattr(slo_module, "enable_slo", quiet_enable)


def _run_fig5_observed(slo: bool):
    from repro.bench.scenarios import run_fig5_experiment

    return run_fig5_experiment(
        seed=55, duration_s=FIG5_DURATION_S, observe=True, slo=slo
    )


def test_fig5_slo_disabled_is_byte_identical(monkeypatch):
    """``slo=True`` with REPRO_SLO=0 must not move a single byte relative
    to the plain observed run — the kill switch is a true no-op."""
    base = _run_fig5_observed(slo=False)
    monkeypatch.setenv("REPRO_SLO", "0")
    gated = _run_fig5_observed(slo=True)
    assert gated.slo is None
    assert trace_digest(gated.tracer) == trace_digest(base.tracer)
    assert len(gated.tracer) == len(base.tracer)


def test_fig5_slo_on_leaves_app_trace_unchanged(monkeypatch):
    _suppress_status_publisher(monkeypatch)
    base = _run_fig5_observed(slo=False)
    slo_run = _run_fig5_observed(slo=True)
    assert slo_run.slo is not None
    assert _digest_excluding(
        slo_run.tracer, _OBSERVER_SOURCES
    ) == _digest_excluding(base.tracer, _OBSERVER_SOURCES)


def test_failover_slo_disabled_is_byte_identical(monkeypatch):
    base = run_scenario("failover", seed=0, observe=True)
    monkeypatch.setenv("REPRO_SLO", "0")
    gated = run_scenario("failover", seed=0, slo=True)
    assert gated.slo_engine is None
    assert gated.trace_digest == base.trace_digest
    assert gated.trace_records == base.trace_records


def test_failover_slo_on_leaves_app_trace_unchanged(monkeypatch):
    _suppress_status_publisher(monkeypatch)
    base = run_scenario("failover", seed=0, observe=True)
    slo_run = run_scenario("failover", seed=0, slo=True)
    assert slo_run.slo_engine is not None
    # The engine wrote its own records (the crash window pages)...
    assert any(r.source == "slo" for r in slo_run.tracer)
    # ...but the application's records are untouched.
    assert _digest_excluding(
        slo_run.tracer, _OBSERVER_SOURCES
    ) == _digest_excluding(base.tracer, _OBSERVER_SOURCES)
