import pytest

from repro.errors import ProcessError
from repro.sim.kernel import SimKernel
from repro.sim.process import Process, Signal


def test_sleep_sequence():
    k = SimKernel()
    log = []

    def script():
        log.append(k.now)
        yield 1.0
        log.append(k.now)
        yield 2.5
        log.append(k.now)
        return "done"

    p = Process(k, script())
    k.run()
    assert log == [0.0, 1.0, 3.5]
    assert p.done and p.result == "done"


def test_signal_wait_and_value():
    k = SimKernel()
    sig = Signal("data")
    got = []

    def waiter():
        value = yield sig
        got.append((k.now, value))

    Process(k, waiter())
    k.schedule(2.0, sig.fire, 42)
    k.run()
    assert got == [(2.0, 42)]


def test_signal_already_fired_wakes_immediately():
    k = SimKernel()
    sig = Signal()
    sig.fire("early")
    got = []

    def waiter():
        value = yield sig
        got.append(value)

    Process(k, waiter())
    k.run()
    assert got == ["early"]


def test_signal_double_fire_rejected():
    sig = Signal("s")
    sig.fire()
    with pytest.raises(ProcessError):
        sig.fire()


def test_process_error_surfaces():
    k = SimKernel()

    def bad():
        yield 1.0
        raise RuntimeError("boom")

    p = Process(k, bad())
    errors = []
    p.on_done(lambda proc: errors.append(proc.error))
    k.run()
    assert isinstance(errors[0], RuntimeError)


def test_unhandled_process_error_raises():
    k = SimKernel()

    def bad():
        yield 0.5
        raise RuntimeError("boom")

    Process(k, bad())
    with pytest.raises(ProcessError, match="boom"):
        k.run()


def test_invalid_yield_type():
    k = SimKernel()

    def bad():
        yield "nope"

    p = Process(k, bad())
    p.on_done(lambda proc: None)  # swallow
    k.run()
    assert isinstance(p.error, ProcessError)


def test_negative_sleep_is_error():
    k = SimKernel()

    def bad():
        yield -1.0

    p = Process(k, bad())
    p.on_done(lambda proc: None)
    k.run()
    assert isinstance(p.error, ProcessError)


def test_on_done_after_completion():
    k = SimKernel()

    def quick():
        return "x"
        yield  # pragma: no cover

    p = Process(k, quick())
    k.run()
    seen = []
    p.on_done(lambda proc: seen.append(proc.result))
    assert seen == ["x"]


def test_two_processes_interleave():
    k = SimKernel()
    log = []

    def a():
        yield 1.0
        log.append("a1")
        yield 2.0
        log.append("a2")

    def b():
        yield 2.0
        log.append("b1")

    Process(k, a(), name="a")
    Process(k, b(), name="b")
    k.run()
    assert log == ["a1", "b1", "a2"]
