"""Telemetry export: Prometheus text, OTLP JSON, top console, HTTP server."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.obs.export import (
    MetricsServer,
    otlp_json,
    prometheus_text,
    render_top,
)
from repro.obs.metrics import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("events.total", node="n1").inc(3)
    registry.gauge("queue.depth", node="n1").set(7)
    hist = registry.histogram("op.latency_s", op="train")
    for v in (0.010, 0.020, 0.030):
        hist.observe(v)
    return registry


# ----------------------------------------------------------------------
# Renderers (pure functions of the registry)
# ----------------------------------------------------------------------


def test_prometheus_text_format():
    text = prometheus_text(_sample_registry())
    assert "# TYPE events_total_total counter" in text
    assert 'events_total_total{node="n1"} 3' in text
    assert "# TYPE queue_depth gauge" in text
    assert 'queue_depth{node="n1"} 7.0' in text
    # Histograms export as summaries: quantiles + _sum/_count.
    assert "# TYPE op_latency_s summary" in text
    assert 'op_latency_s{op="train",quantile="0.5"} 0.02' in text
    assert 'op_latency_s_count{op="train"} 3' in text
    assert text.endswith("\n")


def test_prometheus_text_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("c", path='a"b\\c').inc()
    text = prometheus_text(registry)
    assert 'path="a\\"b\\\\c"' in text


def test_prometheus_text_surfaces_dropped_series():
    registry = MetricsRegistry(max_series=1)
    registry.counter("a").inc()
    with pytest.warns(RuntimeWarning):
        registry.counter("b").inc()
    text = prometheus_text(registry)
    assert "obs_meta_dropped_series_total 1" in text


def test_prometheus_text_isolates_broken_gauges():
    registry = MetricsRegistry()

    def boom() -> float:
        raise RuntimeError("dead node")

    registry.gauge("bad", fn=boom)
    registry.counter("good").inc()
    text = prometheus_text(registry)
    assert "good_total 1" in text
    assert "bad" not in text


def test_otlp_json_shape():
    doc = otlp_json(_sample_registry(), service_name="svc")
    resource = doc["resourceMetrics"][0]
    assert resource["resource"]["attributes"][0]["value"]["stringValue"] == "svc"
    metrics = {m["name"]: m for m in resource["scopeMetrics"][0]["metrics"]}
    counter = metrics["events.total"]["sum"]
    assert counter["isMonotonic"] is True
    assert counter["aggregationTemporality"] == 2
    assert counter["dataPoints"][0]["asDouble"] == 3.0
    assert metrics["queue.depth"]["gauge"]["dataPoints"][0]["asDouble"] == 7.0
    summary = metrics["op.latency_s"]["summary"]["dataPoints"][0]
    assert summary["count"] == 3
    assert summary["sum"] == pytest.approx(0.06)
    assert [q["quantile"] for q in summary["quantileValues"]] == [0.5, 0.95, 0.99]
    # The document is JSON-serializable as-is.
    json.dumps(doc)


def test_render_top_lists_series():
    body = render_top(_sample_registry(), engine=None, now=12.5)
    assert body.startswith("t=12.500s")
    assert "events.total{node=n1}" in body
    assert "series:" in body


def test_render_top_includes_engine_flows():
    from repro.obs.slo import FlowSlo, SloEngine
    from repro.runtime.sim import SimRuntime

    runtime = SimRuntime(seed=0)
    engine = SloEngine(
        runtime,
        [FlowSlo(flow="train", deadline_s=1.0)],
        status_interval_s=0.0,
    )
    body = render_top(None, engine=engine, now=0.0)
    assert "flows:" in body
    assert "train" in body


# ----------------------------------------------------------------------
# The HTTP scrape surface on the real backend
# ----------------------------------------------------------------------


def _fetch(url: str, out: dict, key: str) -> None:
    with urllib.request.urlopen(url, timeout=10) as response:
        out[key] = response.read().decode("utf-8")


@pytest.mark.slow
def test_metrics_server_serves_all_routes():
    from repro.obs import enable_observability
    from repro.runtime.real import AsyncioRuntime

    runtime = AsyncioRuntime()
    try:
        obs = enable_observability(runtime, scrape_interval_s=0)
        obs.metrics.counter("events").inc(9)
        server = runtime.serve_metrics()
        assert isinstance(server, MetricsServer)
        assert runtime.serve_metrics() is server  # idempotent
        assert server.port != 0

        out: dict[str, str] = {}
        paths = ("/metrics", "/metrics.json", "/slo.json", "/top", "/healthz", "/nope")
        threads = [
            threading.Thread(target=_fetch, args=(server.url + p, out, p))
            for p in paths[:-1]
        ]
        for thread in threads:
            thread.start()
        # Serve the queued requests on the runtime's loop.
        runtime.run_for(1.0)
        for thread in threads:
            thread.join(timeout=10)

        assert "events_total 9" in out["/metrics"]
        assert json.loads(out["/metrics.json"])["resourceMetrics"]
        assert json.loads(out["/slo.json"]) == {}  # no engine installed
        assert "series:" in out["/top"]
        assert out["/healthz"] == "ok\n"
    finally:
        runtime.close()


@pytest.mark.slow
def test_metrics_server_unknown_path_is_404():
    from repro.runtime.real import AsyncioRuntime

    runtime = AsyncioRuntime()
    try:
        server = runtime.serve_metrics()
        status: dict[str, int] = {}

        def fetch_status() -> None:
            try:
                urllib.request.urlopen(server.url + "/nope", timeout=10)
                status["code"] = 200
            except urllib.error.HTTPError as exc:
                status["code"] = exc.code

        thread = threading.Thread(target=fetch_status)
        thread.start()
        runtime.run_for(1.0)
        thread.join(timeout=10)
        assert status["code"] == 404
    finally:
        runtime.close()
