"""Metrics registry: instruments, naming, snapshots, scraping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import (
    MetricsRegistry,
    enable_observability,
    metric_key,
    parse_metric_key,
)
from repro.obs.metrics import HistogramMetric
from repro.obs.state import METRICS_EVENT
from repro.runtime.sim import SimRuntime


def test_metric_key_sorts_labels():
    assert metric_key("m", {}) == "m"
    assert metric_key("m", {"b": "2", "a": "1"}) == "m{a=1,b=2}"


def test_metric_key_escapes_separator_characters():
    key = metric_key("m", {"node": "a,b=c}d{e\\f"})
    assert key == "m{node=a\\,b\\=c\\}d\\{e\\\\f}"
    assert parse_metric_key(key) == ("m", {"node": "a,b=c}d{e\\f"})


def test_parse_metric_key_plain_and_empty():
    assert parse_metric_key("m") == ("m", {})
    assert parse_metric_key("m{}") == ("m", {})
    # A bare name that merely contains a brace-free suffix passes through.
    assert parse_metric_key("weird}name") == ("weird}name", {})


def test_parse_metric_key_rejects_label_without_equals():
    with pytest.raises(ValueError, match="label without"):
        parse_metric_key("m{justakey}")


label_text = st.text(
    alphabet=st.characters(
        codec="utf-8", categories=("L", "N", "P", "S", "Zs")
    ),
    min_size=1,
    max_size=12,
)


@given(
    name=st.text(alphabet="abc.xyz_", min_size=1, max_size=10),
    labels=st.dictionaries(label_text, label_text, max_size=4),
)
def test_metric_key_round_trips(name, labels):
    parsed_name, parsed_labels = parse_metric_key(metric_key(name, labels))
    assert parsed_name == name
    assert parsed_labels == labels


def test_counter_get_or_create():
    registry = MetricsRegistry()
    counter = registry.counter("events", node="n1")
    counter.inc()
    counter.inc(2)
    assert registry.counter("events", node="n1") is counter
    assert counter.value == 3
    assert registry.counter("events", node="n2").value == 0


def test_gauge_set_and_callback():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    gauge.set(4)
    assert gauge.read() == 4.0
    computed = registry.gauge("util", fn=lambda: 0.5)
    assert computed.read() == 0.5


def test_gauge_rebinds_callback_on_reregister():
    # A node restart re-creates components; re-registration must swap in
    # the closure over the *new* CPU object, not keep the dead one.
    registry = MetricsRegistry()
    registry.gauge("depth", fn=lambda: 1.0)
    registry.gauge("depth", fn=lambda: 2.0)
    assert registry.gauge("depth").read() == 2.0


def test_histogram_welford():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", node="n1")
    for v in (1.0, 2.0, 3.0):
        hist.observe(v)
    snap = registry.snapshot()
    assert snap["lat{node=n1}"] == {
        "count": 3,
        "mean": 2.0,
        "min": 1.0,
        "max": 3.0,
        "p50": 2.0,
        "p95": 2.9,
        "p99": 2.98,
    }


def test_histogram_quantiles_exact_until_decimation():
    hist = HistogramMetric("h")
    for value in range(1, 101):
        hist.observe(float(value))
    assert hist.quantile(50) == pytest.approx(50.5)
    assert hist.quantile(95) == pytest.approx(95.05)
    assert hist.quantile(0) == 1.0
    assert hist.quantile(100) == 100.0


def test_histogram_decimation_is_deterministic_and_bounded():
    def fill(n):
        hist = HistogramMetric("h")
        for value in range(n):
            hist.observe(float(value))
        return hist

    n = HistogramMetric.MAX_SAMPLES * 3
    first, second = fill(n), fill(n)
    assert first._samples == second._samples  # pure function of the sequence
    assert len(first._samples) <= HistogramMetric.MAX_SAMPLES
    assert first._stride > 1
    # Welford stays exact regardless of decimation.
    assert first.stats.count == n
    # Quantiles remain close on the decimated reservoir.
    assert first.quantile(50) == pytest.approx(n / 2, rel=0.01)


def test_snapshot_is_flat_and_sorted():
    registry = MetricsRegistry()
    registry.counter("z").inc()
    registry.gauge("a").set(1)
    registry.histogram("m")
    snap = registry.snapshot()
    assert snap["z"] == 1
    assert snap["a"] == 1.0
    assert snap["m"] == {"count": 0}


def test_snapshot_isolates_broken_gauges():
    registry = MetricsRegistry()

    def boom() -> float:
        raise RuntimeError("dead node")

    registry.gauge("bad", fn=boom)
    registry.counter("good").inc()
    snap = registry.snapshot()
    assert "bad" not in snap
    assert snap["good"] == 1


def test_len_counts_all_instruments():
    registry = MetricsRegistry()
    registry.counter("a")
    registry.gauge("b")
    registry.histogram("c")
    assert len(registry) == 3


def test_scraper_emits_metric_records_at_sim_intervals():
    runtime = SimRuntime(seed=1)
    obs = enable_observability(runtime, scrape_interval_s=1.0)
    obs.metrics.counter("events").inc(5)
    runtime.run(until=3.5)
    scrapes = runtime.tracer.select(METRICS_EVENT)
    assert len(scrapes) == 3
    assert [r.time for r in scrapes] == [1.0, 2.0, 3.0]
    assert scrapes[-1]["m"]["events"] == 5
    obs.stop_scraping()


def test_cardinality_cap_stops_admission_but_returns_instruments():
    registry = MetricsRegistry(max_series=2)
    kept_a = registry.counter("a")
    kept_b = registry.gauge("b")
    with pytest.warns(RuntimeWarning, match="cardinality cap"):
        dropped = registry.counter("c")
    # The caller still gets a working instrument — it is just unregistered.
    dropped.inc(5)
    assert dropped.value == 5
    assert len(registry) == 2
    assert registry.dropped_series == 1
    assert registry.first_dropped_key == "c"
    # Existing series keep working and re-registration stays idempotent.
    assert registry.counter("a") is kept_a
    assert registry.gauge("b") is kept_b
    assert registry.dropped_series == 1


def test_cardinality_cap_warns_once_then_counts_silently():
    import warnings

    registry = MetricsRegistry(max_series=1)
    registry.counter("a")
    with pytest.warns(RuntimeWarning):
        registry.counter("b")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        registry.histogram("c")
        registry.gauge("d")
    assert not caught
    assert registry.dropped_series == 3


def test_dropped_series_surface_in_snapshot():
    registry = MetricsRegistry(max_series=1)
    registry.counter("a").inc()
    with pytest.warns(RuntimeWarning):
        registry.counter("b").inc()
    snap = registry.snapshot()
    assert snap["a"] == 1
    assert "b" not in snap
    assert snap["obs.meta.dropped_series"] == 1


def test_unbounded_registry_when_cap_is_none():
    registry = MetricsRegistry(max_series=None)
    for i in range(MetricsRegistry.DEFAULT_MAX_SERIES + 5):
        registry.counter("m", i=str(i))
    assert registry.dropped_series == 0


def test_histogram_merge_after_decimation_bounds_buffer():
    left, right = HistogramMetric("h"), HistogramMetric("h")
    n = HistogramMetric.MAX_SAMPLES + 10
    for i in range(n):
        left.observe(float(i))
    for i in range(100):
        right.observe(float(i))
    left.merge(right)
    assert len(left._samples) <= HistogramMetric.MAX_SAMPLES
    assert left.stats.count == n + 100
    assert left._stride > 1


def test_node_gauges_registered_for_nodes():
    runtime = SimRuntime(seed=1)
    obs = enable_observability(runtime, scrape_interval_s=0)
    runtime.add_node("n1")
    # Component construction triggers register_node; simulate directly.
    obs.register_node(runtime.nodes["n1"])
    snap = obs.metrics.snapshot()
    assert "node.cpu.queue_depth{node=n1}" in snap
    assert "node.cpu.busy_s{node=n1}" in snap
    assert "wlan.airtime_share" in snap
