"""Metrics registry: instruments, naming, snapshots, scraping."""

from repro.obs import MetricsRegistry, enable_observability, metric_key
from repro.obs.state import METRICS_EVENT
from repro.runtime.sim import SimRuntime


def test_metric_key_sorts_labels():
    assert metric_key("m", {}) == "m"
    assert metric_key("m", {"b": "2", "a": "1"}) == "m{a=1,b=2}"


def test_counter_get_or_create():
    registry = MetricsRegistry()
    counter = registry.counter("events", node="n1")
    counter.inc()
    counter.inc(2)
    assert registry.counter("events", node="n1") is counter
    assert counter.value == 3
    assert registry.counter("events", node="n2").value == 0


def test_gauge_set_and_callback():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    gauge.set(4)
    assert gauge.read() == 4.0
    computed = registry.gauge("util", fn=lambda: 0.5)
    assert computed.read() == 0.5


def test_gauge_rebinds_callback_on_reregister():
    # A node restart re-creates components; re-registration must swap in
    # the closure over the *new* CPU object, not keep the dead one.
    registry = MetricsRegistry()
    registry.gauge("depth", fn=lambda: 1.0)
    registry.gauge("depth", fn=lambda: 2.0)
    assert registry.gauge("depth").read() == 2.0


def test_histogram_welford():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", node="n1")
    for v in (1.0, 2.0, 3.0):
        hist.observe(v)
    snap = registry.snapshot()
    assert snap["lat{node=n1}"] == {"count": 3, "mean": 2.0, "min": 1.0, "max": 3.0}


def test_snapshot_is_flat_and_sorted():
    registry = MetricsRegistry()
    registry.counter("z").inc()
    registry.gauge("a").set(1)
    registry.histogram("m")
    snap = registry.snapshot()
    assert snap["z"] == 1
    assert snap["a"] == 1.0
    assert snap["m"] == {"count": 0}


def test_snapshot_isolates_broken_gauges():
    registry = MetricsRegistry()

    def boom() -> float:
        raise RuntimeError("dead node")

    registry.gauge("bad", fn=boom)
    registry.counter("good").inc()
    snap = registry.snapshot()
    assert "bad" not in snap
    assert snap["good"] == 1


def test_len_counts_all_instruments():
    registry = MetricsRegistry()
    registry.counter("a")
    registry.gauge("b")
    registry.histogram("c")
    assert len(registry) == 3


def test_scraper_emits_metric_records_at_sim_intervals():
    runtime = SimRuntime(seed=1)
    obs = enable_observability(runtime, scrape_interval_s=1.0)
    obs.metrics.counter("events").inc(5)
    runtime.run(until=3.5)
    scrapes = runtime.tracer.select(METRICS_EVENT)
    assert len(scrapes) == 3
    assert [r.time for r in scrapes] == [1.0, 2.0, 3.0]
    assert scrapes[-1]["m"]["events"] == 5
    obs.stop_scraping()


def test_node_gauges_registered_for_nodes():
    runtime = SimRuntime(seed=1)
    obs = enable_observability(runtime, scrape_interval_s=0)
    runtime.add_node("n1")
    # Component construction triggers register_node; simulate directly.
    obs.register_node(runtime.nodes["n1"])
    snap = obs.metrics.snapshot()
    assert "node.cpu.queue_depth{node=n1}" in snap
    assert "node.cpu.busy_s{node=n1}" in snap
    assert "wlan.airtime_share" in snap
