"""Online SLO engine: policy derivation, violation kinds, burn alerts.

Two layers: synthetic span streams emitted straight into a bare
``SimRuntime``'s tracer pin the engine's mechanics exactly (good/late/
overdue classification, double-count suppression, burn-state machine),
and full scenario runs pin the integration the ISSUE's acceptance
criteria name — the failover crash window pages *online*, clean runs
stay silent, and the whole thing is deterministic.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import run_scenario
from repro.chaos.scenarios import build_chaos_recipe
from repro.core.dsl import parse_recipe
from repro.errors import ConfigurationError
from repro.obs import slo as slo_module
from repro.obs.context import SPAN_EVENT
from repro.obs.slo import (
    SLO_ALERT_EVENT,
    SLO_VIOLATION_EVENT,
    FlowSlo,
    SloEngine,
    enable_slo,
    policy_from_recipe,
)
from repro.runtime.sim import SimRuntime

# ----------------------------------------------------------------------
# Policy derivation
# ----------------------------------------------------------------------


def test_policy_from_chaos_recipe_pending_tracks_train():
    flows = {f.flow: f for f in policy_from_recipe(build_chaos_recipe())}
    assert "train" in flows
    train = flows["train"]
    assert train.roots == ("sense-a", "sense-b")
    # sense -> dedup -> train: every hop forwards, so overdue timers are
    # sound — a sensed record that never reaches train IS a violation.
    assert train.pending is True
    assert train.deadline_s == pytest.approx(10.0)


def test_policy_from_fig5_recipe_is_latency_only():
    from repro.bench.scenarios import FIG5_RECIPE_PATH

    recipe = parse_recipe(FIG5_RECIPE_PATH.read_text())
    flows = {f.flow: f for f in policy_from_recipe(recipe)}
    assert flows, "fig5 recipe declares at least one deadline"
    for flow in flows.values():
        # Every fig5 deadline sits downstream of a conditional operator
        # (command rules / window batching), so no pending timers.
        assert flow.pending is False


def test_flow_slo_validation():
    with pytest.raises(ConfigurationError):
        FlowSlo(flow="f", deadline_s=0.0)
    with pytest.raises(ConfigurationError):
        FlowSlo(flow="f", deadline_s=1.0, target=1.0)


def test_duplicate_flows_rejected():
    runtime = SimRuntime(seed=0)
    flow = FlowSlo(flow="f", deadline_s=1.0)
    with pytest.raises(ConfigurationError, match="duplicate"):
        SloEngine(runtime, [flow, flow])


# ----------------------------------------------------------------------
# Synthetic span streams: exact mechanics
# ----------------------------------------------------------------------


def _span(runtime, t, trace, name, parent="", start=None):
    runtime.tracer.emit(
        t,
        "obs",
        SPAN_EVENT,
        trace=trace,
        span=f"{trace}:{name}",
        parent=parent,
        name=name,
        hop=0 if not parent else 1,
        inc=0.0,
        start=t if start is None else start,
    )


def _engine(runtime, flows, **kwargs):
    kwargs.setdefault("status_interval_s", 0.0)  # no ticks unless asked
    return SloEngine(runtime, flows, **kwargs)


def test_good_late_and_overdue_classification():
    runtime = SimRuntime(seed=0)
    engine = _engine(
        runtime,
        [
            FlowSlo(
                flow="sink", deadline_s=0.5, roots=("src",), pending=True
            ),
            FlowSlo(flow="lazy", deadline_s=0.5, roots=(), pending=False),
        ],
    )
    # Trace A completes within deadline -> good.
    runtime.call_later(1.0, lambda: _span(runtime, 1.0, "A", "src"))
    runtime.call_later(
        1.2, lambda: _span(runtime, 1.2, "A", "sink", parent="A:src")
    )
    # Trace B's root never reaches the sink -> overdue at t=2.5.
    runtime.call_later(2.0, lambda: _span(runtime, 2.0, "B", "src"))
    # Trace C flows through the latency-only flow and completes late.
    runtime.call_later(3.0, lambda: _span(runtime, 3.0, "C", "src2"))
    runtime.call_later(
        3.8, lambda: _span(runtime, 3.8, "C", "lazy", parent="C:src2")
    )
    runtime.run(until=5.0)

    assert engine.good["sink"] == 1
    assert engine.overdue["sink"] == 1
    assert engine.violations["sink"] == 1
    assert engine.violations["lazy"] == 1
    assert engine.overdue["lazy"] == 0
    kinds = {
        (r["flow"], r["kind"])
        for r in runtime.tracer.select(SLO_VIOLATION_EVENT)
    }
    assert kinds == {("sink", "overdue"), ("lazy", "late")}
    # The overdue record carries the sim-time deadline anchor.
    overdue = [
        r
        for r in runtime.tracer.select(SLO_VIOLATION_EVENT)
        if r["kind"] == "overdue"
    ]
    assert overdue[0].time == pytest.approx(2.5)


def test_late_completion_after_overdue_does_not_double_count():
    runtime = SimRuntime(seed=0)
    engine = _engine(
        runtime,
        [FlowSlo(flow="sink", deadline_s=0.5, roots=("src",), pending=True)],
    )
    runtime.call_later(1.0, lambda: _span(runtime, 1.0, "A", "src"))
    # Completion arrives at 2.0, well past the 1.5 deadline timer.
    runtime.call_later(
        2.0, lambda: _span(runtime, 2.0, "A", "sink", parent="A:src")
    )
    runtime.run(until=3.0)
    assert engine.overdue["sink"] == 1
    assert engine.violations["sink"] == 1  # not 2
    # The eventual latency still lands in the distribution.
    assert engine.sketches["sink"].count == 1
    assert engine.sketches["sink"].maximum == pytest.approx(1.0)


def test_completion_cancels_pending_timer():
    runtime = SimRuntime(seed=0)
    engine = _engine(
        runtime,
        [FlowSlo(flow="sink", deadline_s=0.5, roots=("src",), pending=True)],
    )
    runtime.call_later(1.0, lambda: _span(runtime, 1.0, "A", "src"))
    runtime.call_later(
        1.1, lambda: _span(runtime, 1.1, "A", "sink", parent="A:src")
    )
    runtime.run(until=5.0)
    assert engine.overdue["sink"] == 0
    assert engine.violations["sink"] == 0
    assert not engine._pending


def test_burn_state_machine_pages_and_recovers():
    runtime = SimRuntime(seed=0)
    engine = _engine(
        runtime,
        [FlowSlo(flow="sink", deadline_s=0.1, roots=(), pending=False)],
    )

    def emit_pair(t, trace, latency):
        _span(runtime, t, trace, "src")
        _span(
            runtime,
            t + latency,
            trace,
            "sink",
            parent=f"{trace}:src",
            start=t + latency,
        )

    # 100% violations over both windows -> burn 100x budget -> page.
    for i in range(10):
        t = 1.0 + 0.2 * i
        runtime.call_later(t, emit_pair, t, f"T{i}", 0.15)
    # Then a long run of good completions drains the windows back to ok.
    for i in range(120):
        t = 5.0 + 0.25 * i
        runtime.call_later(t, emit_pair, t, f"G{i}", 0.01)
    runtime.run(until=40.0)

    states = [a["state"] for a in engine.alerts]
    assert "page" in states
    assert engine.paged["sink"] is True
    assert engine.state["sink"] == "ok"
    assert states[-1] == "ok"
    alert_records = runtime.tracer.select(SLO_ALERT_EVENT)
    assert len(alert_records) == len(engine.alerts)
    page_at = engine.first_page_at["sink"]
    assert any(
        r.time == page_at and r["state"] == "page" for r in alert_records
    )


def test_diagnostics_for_quiet_violations_use_slo302():
    runtime = SimRuntime(seed=0)
    engine = _engine(
        runtime,
        [FlowSlo(flow="sink", deadline_s=0.1, roots=(), pending=False)],
    )
    # A sea of good events first (the windows need volume), then one
    # lone violation: short-window burn spikes but the long window stays
    # healthy, so no alert state is ever entered.
    for i in range(200):
        t = 1.3 + 0.1 * i
        _span(runtime, t, f"G{i}", "src")
        _span(runtime, t, f"G{i}", "sink", parent=f"G{i}:src", start=t)
    _span(runtime, 21.5, "A", "src")
    _span(runtime, 21.7, "A", "sink", parent="A:src", start=21.7)
    diags = engine.diagnostics()
    rules = [d.rule for d in diags]
    assert "SLO302" in rules
    assert "SLO300" not in rules


# ----------------------------------------------------------------------
# Kill switches
# ----------------------------------------------------------------------


def test_enable_slo_respects_env_flag(monkeypatch):
    monkeypatch.setenv("REPRO_SLO", "0")
    runtime = SimRuntime(seed=0)
    assert enable_slo(runtime, recipe=build_chaos_recipe()) is None
    assert runtime.slo is None


def test_enable_slo_respects_module_kill_switch(monkeypatch):
    monkeypatch.setattr(slo_module, "ENABLED", False)
    runtime = SimRuntime(seed=0)
    assert enable_slo(runtime, recipe=build_chaos_recipe()) is None


def test_enable_slo_is_idempotent():
    runtime = SimRuntime(seed=0)
    first = enable_slo(runtime, recipe=build_chaos_recipe())
    second = enable_slo(runtime, recipe=build_chaos_recipe())
    assert first is not None and second is first


def test_enable_slo_needs_a_policy():
    runtime = SimRuntime(seed=0)
    with pytest.raises(ConfigurationError, match="recipe or explicit flows"):
        enable_slo(runtime)


# ----------------------------------------------------------------------
# Full scenarios: the acceptance criteria
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def failover_slo():
    return run_scenario("failover", seed=0, slo=True, profile=True)


@pytest.mark.slow
def test_failover_crash_window_pages_online(failover_slo):
    engine = failover_slo.slo_engine
    assert engine is not None
    assert engine.flows["train"].pending is True
    # The crash window strands sensed records that never reach train:
    # only pending-overdue tracking can see them (the completed-latency
    # max stays far below the 10 s deadline).
    assert engine.overdue["train"] > 0
    assert engine.sketches["train"].maximum < engine.flows["train"].deadline_s
    assert engine.paged["train"] is True
    # The page lands inside/just after the crash window, sim-time anchored.
    assert 20.0 <= engine.first_page_at["train"] <= 25.0
    page_alerts = [a for a in engine.alerts if a["state"] == "page"]
    assert page_alerts
    assert page_alerts[0]["t"] == pytest.approx(engine.first_page_at["train"])
    rules = {d.rule for d in engine.diagnostics()}
    assert "SLO300" in rules


@pytest.mark.slow
def test_failover_violations_are_trace_records(failover_slo):
    tracer = failover_slo.tracer
    violations = tracer.select(SLO_VIOLATION_EVENT)
    assert violations
    assert all(r.source == "slo" for r in violations)
    assert all(r["kind"] == "overdue" for r in violations if r["flow"] == "train")
    alerts = tracer.select(SLO_ALERT_EVENT)
    assert any(r["state"] == "page" for r in alerts)
    # Report agrees with the trace.
    report = failover_slo.slo_engine.report()
    assert report["flows"]["train"]["overdue"] == len(
        [r for r in violations if r["kind"] == "overdue"]
    )


@pytest.mark.slow
def test_failover_slo_run_is_deterministic(failover_slo):
    again = run_scenario("failover", seed=0, slo=True, profile=True)
    assert again.trace_digest == failover_slo.trace_digest
    assert json.dumps(again.slo_engine.report(), sort_keys=True) == json.dumps(
        failover_slo.slo_engine.report(), sort_keys=True
    )


@pytest.mark.slow
def test_clean_fig5_run_stays_silent():
    from repro.bench.scenarios import run_fig5_experiment

    runtime = run_fig5_experiment(seed=55, duration_s=8.0, slo=True)
    engine = runtime.slo
    assert engine is not None
    assert engine.alerts == []
    assert all(v == 0 for v in engine.violations.values())
    assert all(v == 0 for v in engine.overdue.values())
    assert engine.diagnostics() == []


@pytest.mark.slow
def test_injected_tight_deadline_flips_clean_run_to_violation():
    """Acceptance pair: the same scenario, one with the declared deadline
    (clean) and one with an injected 1 ms deadline (every completion
    late) — the engine must separate them."""
    from repro.bench.scenarios import FIG5_RECIPE_PATH, build_fig5_testbed
    from repro.core.dsl import parse_recipe as parse

    def run_with(flows):
        runtime, cluster = build_fig5_testbed(seed=55, observe=True)
        engine = enable_slo(runtime, flows=flows)
        app = cluster.submit(parse(FIG5_RECIPE_PATH.read_text()))
        cluster.settle(2.0)
        # Past the planted fall at t=20 — alert-messaging only completes
        # traces when the rule engine actually pages someone.
        runtime.run(until=runtime.now + 22.0)
        app.stop()
        return engine

    clean = run_with(
        [FlowSlo(flow="alert-messaging", deadline_s=16.0, pending=False)]
    )
    tight = run_with(
        [FlowSlo(flow="alert-messaging", deadline_s=0.001, pending=False)]
    )
    assert clean.violations["alert-messaging"] == 0
    assert tight.violations["alert-messaging"] > 0
    assert tight.violations["alert-messaging"] == clean.good["alert-messaging"]
    assert {d.rule for d in tight.diagnostics()} & {"SLO300", "SLO301", "SLO302"}


@pytest.mark.slow
def test_status_published_retained_on_control_topic(failover_slo):
    from repro.obs.slo import SLO_STATUS_EVENT, SLO_STATUS_TOPIC

    tracer = failover_slo.tracer
    status = tracer.select(SLO_STATUS_EVENT)
    assert status, "status ticks emit slo.status records"
    assert "train" in status[-1]["flows"]
    # The retained publication went through the management client.
    published = [
        r
        for r in tracer.select("mqtt.publish")
        if r.fields.get("topic") == SLO_STATUS_TOPIC
    ]
    assert published or tracer.count("mqtt.publish") == 0
