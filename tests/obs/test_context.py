"""FlowContext wire encoding and ObsState span lifecycle."""

from repro.obs import FlowContext, SPAN_EVENT, enable_observability
from repro.runtime.sim import SimRuntime


def test_wire_round_trip():
    ctx = FlowContext("tr-1", "sp-2", parent_id="sp-1", hop=3)
    assert FlowContext.from_wire(ctx.to_wire()) == ctx


def test_wire_root_defaults():
    ctx = FlowContext("tr-1", "sp-1")
    wire = ctx.to_wire()
    assert wire == {"t": "tr-1", "s": "sp-1", "p": "", "h": 0}
    assert FlowContext.from_wire(wire) == ctx


def test_from_wire_malformed_returns_none():
    assert FlowContext.from_wire(None) is None
    assert FlowContext.from_wire("nope") is None
    assert FlowContext.from_wire({}) is None
    assert FlowContext.from_wire({"t": "tr-1"}) is None
    assert FlowContext.from_wire({"t": "tr-1", "s": "sp-1", "h": "x"}) is None


def test_from_wire_ignores_extra_keys():
    ctx = FlowContext.from_wire({"t": "a", "s": "b", "p": "", "h": 1, "zz": 9})
    assert ctx is not None
    assert ctx.hop == 1


def _node(runtime):
    return runtime.add_node("n1")


def test_start_finish_span_emits_record():
    runtime = SimRuntime(seed=1)
    obs = enable_observability(runtime, scrape_interval_s=0)
    node = _node(runtime)
    span = obs.start_span("sense", node, sample="s-1")
    assert span.ctx.parent_id == ""
    assert span.ctx.hop == 0
    ctx = obs.finish(span, extra=7)
    records = runtime.tracer.select(SPAN_EVENT)
    assert len(records) == 1
    rec = records[0]
    assert rec["trace"] == ctx.trace_id
    assert rec["span"] == ctx.span_id
    assert rec["name"] == "sense"
    assert rec["sample"] == "s-1"
    assert rec["extra"] == 7
    assert rec["inc"] == node.incarnation


def test_child_span_inherits_trace_and_increments_hop():
    runtime = SimRuntime(seed=1)
    obs = enable_observability(runtime, scrape_interval_s=0)
    node = _node(runtime)
    root = obs.finish(obs.start_span("sense", node))
    child = obs.start_span("publish", node, parent=root)
    assert child.ctx.trace_id == root.trace_id
    assert child.ctx.parent_id == root.span_id
    assert child.ctx.hop == root.hop + 1


def test_span_ids_are_deterministic_sequences():
    runtime = SimRuntime(seed=1)
    obs = enable_observability(runtime, scrape_interval_s=0)
    node = _node(runtime)
    first = obs.start_span("a", node)
    second = obs.start_span("b", node, parent=first.ctx)
    assert first.ctx.span_id == "sp-0"
    assert first.ctx.trace_id == "tr-0"
    assert second.ctx.span_id == "sp-1"
    assert second.ctx.trace_id == "tr-0"


def test_enable_observability_is_idempotent():
    runtime = SimRuntime(seed=1)
    first = enable_observability(runtime, scrape_interval_s=0)
    second = enable_observability(runtime, scrape_interval_s=0)
    assert first is second
    assert runtime.obs is first


def test_kill_switch_disables_enable(monkeypatch):
    import repro.obs as obs_module

    monkeypatch.setattr(obs_module, "ENABLED", False)
    runtime = SimRuntime(seed=1)
    assert enable_observability(runtime) is None
    assert runtime.obs is None


def test_point_span_has_zero_duration():
    runtime = SimRuntime(seed=1)
    obs = enable_observability(runtime, scrape_interval_s=0)
    node = _node(runtime)
    obs.point("broker", node, topic="t")
    rec = runtime.tracer.select(SPAN_EVENT)[0]
    assert rec["start"] == rec.time
