"""Latency sketches: accuracy, exact merge, serialization, windowing."""

import math

import pytest

from repro.obs.sketch import LatencySketch, WindowedSketch


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        LatencySketch(alpha=0.0)
    with pytest.raises(ValueError):
        LatencySketch(alpha=1.0)
    with pytest.raises(ValueError):
        LatencySketch(max_buckets=1)
    with pytest.raises(ValueError):
        LatencySketch().add(-0.001)


def test_empty_sketch_quantiles_and_mean():
    sketch = LatencySketch()
    assert sketch.quantile(50) == 0.0
    assert sketch.quantile(99) == 0.0
    assert sketch.mean == 0.0
    assert len(sketch) == 0


def test_quantiles_within_relative_error():
    alpha = 0.01
    sketch = LatencySketch(alpha=alpha)
    values = sorted((1.0 + 0.37 * i) % 97.0 + 0.5 for i in range(500))
    for v in values:
        sketch.add(v)
    for q in (50, 90, 95, 99, 100):
        rank = int(q * (len(values) - 1) / 100)
        true = values[rank]
        assert abs(sketch.quantile(q) - true) <= alpha * true + 1e-12


def test_zero_values_land_in_zero_bucket():
    sketch = LatencySketch()
    for _ in range(10):
        sketch.add(0.0)
    sketch.add(5.0)
    assert sketch.zero_count == 10
    assert sketch.quantile(50) == 0.0
    assert sketch.quantile(100) == pytest.approx(5.0, rel=0.01)
    assert sketch.minimum == 0.0
    assert sketch.maximum == 5.0


def test_merge_is_exact_below_bucket_cap():
    left, right, both = LatencySketch(), LatencySketch(), LatencySketch()
    a = [0.001 * (i + 1) for i in range(200)]
    b = [0.5 + 0.01 * i for i in range(200)]
    for v in a:
        left.add(v)
        both.add(v)
    for v in b:
        right.add(v)
        both.add(v)
    left.merge(right)
    assert left.buckets == both.buckets
    assert left.count == both.count == 400
    assert left.total == pytest.approx(both.total)
    assert left.minimum == both.minimum
    assert left.maximum == both.maximum
    for q in (50, 95, 99):
        assert left.quantile(q) == both.quantile(q)


def test_merge_rejects_alpha_mismatch():
    with pytest.raises(ValueError, match="different accuracy"):
        LatencySketch(alpha=0.01).merge(LatencySketch(alpha=0.02))


def test_bucket_cap_collapses_the_low_tail():
    sketch = LatencySketch(alpha=0.01, max_buckets=8)
    # Values spanning many decades force far more than 8 log-buckets.
    for exponent in range(-6, 6):
        for step in range(5):
            sketch.add(10.0**exponent * (1.0 + 0.1 * step))
    assert len(sketch.buckets) <= 8
    assert sketch.count == 60
    # The collapse only coarsens the *low* tail; the max keeps resolution.
    assert sketch.quantile(100) == pytest.approx(sketch.maximum, rel=0.02)


def test_serialization_round_trip_is_exact():
    sketch = LatencySketch(alpha=0.02, max_buckets=64)
    for v in (0.0, 0.001, 0.02, 0.02, 1.5, 88.0):
        sketch.add(v)
    clone = LatencySketch.from_dict(sketch.to_dict())
    assert clone.buckets == sketch.buckets
    assert clone.zero_count == sketch.zero_count
    assert clone.count == sketch.count
    assert clone.total == sketch.total
    assert clone.minimum == sketch.minimum
    assert clone.maximum == sketch.maximum
    for q in (0, 50, 95, 99, 100):
        assert clone.quantile(q) == sketch.quantile(q)


def test_serialization_of_empty_sketch():
    clone = LatencySketch.from_dict(LatencySketch().to_dict())
    assert clone.count == 0
    assert clone.minimum == math.inf


def test_windowed_sketch_evicts_old_slices():
    window = WindowedSketch(slice_s=1.0, slices=3)
    window.observe(0.5, 10.0)
    window.observe(1.5, 20.0)
    window.observe(2.5, 30.0)
    assert window.query(2.9).count == 3
    # At t=3.9 the slice holding t=0.5 is beyond the 3-slice horizon.
    assert window.query(3.9).count == 2
    # One slice later t=1.5 ages out too.
    assert window.query(4.1).count == 1
    assert len(window) <= 3
    # Far future: everything aged out.
    assert window.query(100.0).count == 0


def test_windowed_sketch_bounds_memory_on_observe():
    window = WindowedSketch(slice_s=1.0, slices=4)
    for i in range(100):
        window.observe(float(i), 1.0)
    assert len(window) <= 5  # current slice + horizon


def test_windowed_sketch_query_merges_live_slices():
    window = WindowedSketch(slice_s=2.0, slices=2)
    for t, v in ((0.1, 1.0), (0.2, 2.0), (2.1, 3.0)):
        window.observe(t, v)
    merged = window.query(2.5)
    assert merged.count == 3
    assert merged.maximum == 3.0
    assert merged.minimum == 1.0


def test_windowed_sketch_validates_parameters():
    with pytest.raises(ValueError):
        WindowedSketch(slice_s=0.0)
    with pytest.raises(ValueError):
        WindowedSketch(slices=0)
