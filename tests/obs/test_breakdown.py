"""Span-tree reconstruction, integrity checking, tables, Chrome export."""

import json

import pytest

from repro.obs.breakdown import (
    SpanRecord,
    check_span_integrity,
    decompose_path,
    format_stage_table,
    path_to_root,
    span_index,
    spans_from_tracer,
    stage_breakdown,
    to_chrome_trace,
)
from repro.obs.context import SPAN_EVENT
from repro.sim.trace import Tracer


def _span(
    span_id: str,
    parent_id: str = "",
    hop: int = 0,
    start: float = 0.0,
    end: float = 1.0,
    name: str = "stage",
    trace_id: str = "tr-0",
    links: tuple = (),
    **fields,
) -> SpanRecord:
    return SpanRecord(
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        node="n1",
        incarnation=0,
        hop=hop,
        start=start,
        end=end,
        links=links,
        fields=fields,
    )


def _chain():
    return [
        _span("sp-0", name="sense", start=0.0, end=0.1),
        _span("sp-1", "sp-0", hop=1, name="publish", start=0.2, end=0.2),
        _span("sp-2", "sp-1", hop=2, name="op.train", start=0.3, end=0.6),
    ]


def test_healthy_chain_has_no_problems():
    assert check_span_integrity(_chain()) == []


def test_orphan_detected():
    spans = [_span("sp-1", "sp-missing", hop=1)]
    problems = check_span_integrity(spans)
    assert any("orphan" in p for p in problems)


def test_duplicate_id_detected():
    problems = check_span_integrity([_span("sp-0"), _span("sp-0")])
    assert any("duplicate" in p for p in problems)


def test_hop_must_increment():
    spans = [_span("sp-0"), _span("sp-1", "sp-0", hop=5)]
    problems = check_span_integrity(spans)
    assert any("hop" in p for p in problems)


def test_root_must_be_hop_zero():
    problems = check_span_integrity([_span("sp-0", hop=2)])
    assert any("root" in p for p in problems)


def test_interval_sanity():
    problems = check_span_integrity([_span("sp-0", start=2.0, end=1.0)])
    assert any("before start" in p for p in problems)


def test_child_cannot_start_before_parent():
    spans = [
        _span("sp-0", start=1.0, end=2.0),
        _span("sp-1", "sp-0", hop=1, start=0.5, end=2.5),
    ]
    problems = check_span_integrity(spans)
    assert any("before parent" in p for p in problems)


def test_cycle_detected():
    spans = [
        _span("sp-0", "sp-1", hop=1),
        _span("sp-1", "sp-0", hop=1),
    ]
    problems = check_span_integrity(spans)
    assert any("cycle" in p for p in problems)


def test_dangling_link_detected():
    problems = check_span_integrity([_span("sp-0", links=("sp-ghost",))])
    assert any("dangling link" in p for p in problems)


def test_cross_trace_parent_detected():
    spans = [
        _span("sp-0", trace_id="tr-0"),
        _span("sp-1", "sp-0", hop=1, trace_id="tr-9"),
    ]
    problems = check_span_integrity(spans)
    assert any("trace" in p for p in problems)


def test_path_to_root_and_truncation():
    chain = _chain()
    index = span_index(chain)
    path = path_to_root(chain[-1], index)
    assert [s.span_id for s in path] == ["sp-0", "sp-1", "sp-2"]
    orphan = _span("sp-9", "sp-gone", hop=1)
    assert path_to_root(orphan, {"sp-9": orphan}) is None


def test_decompose_path_telescopes_exactly():
    chain = _chain()
    index = span_index(chain)
    leaf = chain[-1]
    stages = decompose_path(leaf, index)
    total = sum(gap + dur for _stage, gap, dur in stages)
    assert total == pytest.approx(leaf.end - chain[0].start, rel=1e-12)
    assert [s for s, _g, _d in stages] == ["sense", "publish", "op.train"]


def test_stage_breakdown_aggregates_ms():
    breakdown = stage_breakdown(_chain())
    # Own durations in milliseconds.
    assert breakdown.stages["sense"].average == pytest.approx(100.0)
    assert breakdown.stages["op.train"].average == pytest.approx(300.0)
    # Gap before publish = 0.2 - 0.1 = 100 ms.
    assert breakdown.gaps["publish"].average == pytest.approx(100.0)
    # Leaf end-to-end: 0.6 - 0.0 = 600 ms.
    assert breakdown.end_to_end["op.train"].average == pytest.approx(600.0)
    assert breakdown.traces == 1
    assert breakdown.truncated == 0


def test_stage_breakdown_prefers_task_label():
    spans = [_span("sp-0", name="op.window", task="gather-train")]
    breakdown = stage_breakdown(spans)
    assert "gather-train" in breakdown.stages


def test_stage_breakdown_counts_truncated_paths():
    spans = [_span("sp-1", "sp-gone", hop=1)]
    breakdown = stage_breakdown(spans)
    assert breakdown.truncated == 1
    assert not breakdown.end_to_end


def test_format_stage_table_shape():
    table = format_stage_table(stage_breakdown(_chain()), title="T")
    assert table.splitlines()[0] == "T"
    assert "Avg(ms)" in table
    assert "Max(ms)" in table
    assert "End-to-end" in table
    assert "op.train" in table


def test_spans_from_tracer_round_trip(tmp_path):
    tracer = Tracer()
    tracer.emit(
        1.5,
        "n1",
        SPAN_EVENT,
        trace="tr-0",
        span="sp-0",
        parent="",
        name="sense",
        hop=0,
        inc=2,
        start=1.0,
        links=["sp-9"],
        sample="s-1",
    )
    path = tmp_path / "t.jsonl"
    tracer.to_jsonl(path)
    spans = spans_from_tracer(Tracer.from_jsonl(path))
    assert len(spans) == 1
    span = spans[0]
    assert span.end == 1.5
    assert span.start == 1.0
    assert span.incarnation == 2
    assert span.links == ("sp-9",)
    assert span.fields == {"sample": "s-1"}


def test_chrome_export_structure():
    chrome = to_chrome_trace(_chain())
    events = chrome["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert meta and meta[0]["args"]["name"] == "n1"
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert len(complete) == 2  # sense + op.train have duration
    assert len(instants) == 1  # publish is a point
    sense = next(e for e in complete if e["name"] == "sense")
    assert sense["ts"] == 0.0
    assert sense["dur"] == pytest.approx(100_000.0)
    json.dumps(chrome)  # must be JSON-serializable as-is


def test_chrome_export_deterministic_ids():
    a = to_chrome_trace(_chain())
    b = to_chrome_trace(list(reversed(_chain())))
    pids = {e["pid"] for e in a["traceEvents"]}
    assert pids == {e["pid"] for e in b["traceEvents"]}
