"""Golden-trace regression tests.

Two fixed-seed scenarios — the Fig. 5 watching recipe and a chaos
partition/heal run — are executed with observability on, and their trace
output is reduced to stable digests committed under ``tests/golden/``:

* ``jsonl_sha256`` — hash of the full trace JSONL dump (byte-identical
  reproduction of *everything* the tracer saw),
* ``span_tree_sha256`` — hash of the canonicalized span-tree rendering
  (order-independent, span-only view), plus span/trace counts.

Any change to event ordering, span topology, field encoding, or the
JSONL format shows up here first.  To regenerate after an intentional
change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_golden_traces.py

and commit the updated files with an explanation of why the traces moved.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.obs import canonical_span_lines, check_span_integrity, spans_from_tracer
from repro.util.flags import flag_enabled

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"
REGEN = flag_enabled("REPRO_REGEN_GOLDEN")


def _digests(tracer, tmp_path: Path) -> dict:
    dump = tmp_path / "trace.jsonl"
    tracer.to_jsonl(dump)
    spans = spans_from_tracer(tracer)
    assert check_span_integrity(spans) == []
    tree = "\n".join(canonical_span_lines(spans)).encode()
    return {
        "jsonl_sha256": hashlib.sha256(dump.read_bytes()).hexdigest(),
        "span_tree_sha256": hashlib.sha256(tree).hexdigest(),
        "spans": len(spans),
        "traces": len({s.trace_id for s in spans}),
    }


def _check_golden(name: str, digests: dict) -> None:
    path = GOLDEN_DIR / name
    if REGEN:
        path.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path}")
    expected = json.loads(path.read_text())
    assert digests == expected, (
        f"trace digest drift vs {path} — if intentional, regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )


@pytest.mark.slow
def test_fig5_trace_is_golden(tmp_path):
    from repro.bench.scenarios import run_fig5_experiment

    runtime = run_fig5_experiment(seed=55, duration_s=10.0, observe=True)
    _check_golden("fig5_seed55.json", _digests(runtime.tracer, tmp_path))


@pytest.mark.slow
def test_chaos_partition_heal_trace_is_golden(tmp_path):
    from repro.chaos.scenarios import run_scenario

    result = run_scenario("partition_heal", seed=7, observe=True)
    assert result.report.ok
    assert result.tracer is not None
    _check_golden("chaos_partition_heal_seed7.json", _digests(result.tracer, tmp_path))


@pytest.mark.slow
def test_fig5_trace_reproduces_in_process(tmp_path):
    """Same seed twice in one interpreter ⇒ byte-identical JSONL dumps."""
    from repro.bench.scenarios import run_fig5_experiment

    dumps = []
    for i in range(2):
        runtime = run_fig5_experiment(seed=55, duration_s=5.0, observe=True)
        dump = tmp_path / f"run{i}.jsonl"
        runtime.tracer.to_jsonl(dump)
        dumps.append(dump.read_bytes())
    assert dumps[0] == dumps[1]
