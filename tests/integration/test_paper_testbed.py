"""EXP-F7 / EXP-T2 / EXP-T3: the paper's evaluation system end to end.

These tests assert the *claims* of §V-C on small, fast runs:

* at low sensing rates the middleware achieves low-latency (real-time)
  processing;
* between 20 and 40 Hz the delay blows up and "real-time processing [is]
  no longer possible";
* predicting is cheaper than training;
* results are deterministic for a fixed seed.
"""

import pytest

from repro.bench.harness import run_paper_experiment
from repro.bench.scenarios import build_paper_recipe, build_paper_testbed


class TestTestbedConstruction:
    def test_recipe_matches_fig9(self):
        recipe = build_paper_recipe(10)
        assert recipe.tasks["sense-a"].pin_to == "module-a"
        assert recipe.tasks["train"].pin_to == "module-e"
        assert recipe.tasks["predict"].pin_to == "module-f"
        stages = recipe.stages()
        assert set(stages[0]) == {"sense-a", "sense-b", "sense-c"}
        assert set(stages[1]) == {"gather-train", "gather-predict"}
        assert set(stages[2]) == {"train", "predict"}

    def test_testbed_deploys_classes_on_pinned_modules(self):
        testbed = build_paper_testbed(5, seed=0)
        testbed.submit()
        testbed.cluster.settle(2.0)
        assert "paper-exp/sense-a" in testbed.cluster.module("module-a").operators
        assert "paper-exp/train" in testbed.cluster.module("module-e").operators
        assert "paper-exp/predict" in testbed.cluster.module("module-f").operators

    def test_six_modules_plus_management(self):
        testbed = build_paper_testbed(5, seed=0)
        stations = testbed.runtime.wlan.stations
        for name in ("module-a", "module-b", "module-c", "module-d",
                     "module-e", "module-f", "mgmt"):
            assert name in stations


class TestPaperClaims:
    @pytest.fixture(scope="class")
    def low_rate(self):
        return run_paper_experiment(5, duration_s=2.5, seed=3)

    @pytest.fixture(scope="class")
    def high_rate(self):
        return run_paper_experiment(40, duration_s=2.5, seed=3)

    def test_low_rate_is_real_time(self, low_rate):
        assert low_rate.training.count > 5
        assert low_rate.training.average < 150.0  # ms
        assert low_rate.predicting.average < 150.0

    def test_all_sensed_batches_processed_at_low_rate(self, low_rate):
        # 3 sensors, aligned into batches: every aligned triple trains.
        assert low_rate.batches_trained >= low_rate.samples_sensed // 3 - 2

    def test_high_rate_breaks_real_time(self, high_rate, low_rate):
        assert high_rate.training.average > 5 * low_rate.training.average

    def test_predicting_cheaper_than_training(self, high_rate):
        assert high_rate.predicting.average < high_rate.training.average

    def test_warmup_dominates_low_rate_max(self, low_rate):
        assert low_rate.training.maximum > 3 * low_rate.training.average

    def test_determinism(self):
        a = run_paper_experiment(10, duration_s=1.0, seed=9)
        b = run_paper_experiment(10, duration_s=1.0, seed=9)
        assert a.training.samples == b.training.samples
        assert a.predicting.samples == b.predicting.samples

    def test_seed_changes_jitter(self):
        a = run_paper_experiment(10, duration_s=1.0, seed=1)
        b = run_paper_experiment(10, duration_s=1.0, seed=2)
        assert a.training.samples != b.training.samples

    def test_summary_shape(self, low_rate):
        summary = low_rate.summary()
        assert summary["rate_hz"] == 5
        assert set(summary["training"]) >= {"avg", "max", "p95", "count"}
