"""Scale soak: a large cluster stays healthy over a long virtual run."""

import pytest

from repro.core.middleware import IFoTCluster
from repro.core.recipe import Recipe, TaskSpec
from repro.runtime.sim import SimRuntime
from repro.sensors.devices import FixedPayloadModel

GROUPS = 30  # 60 worker modules + broker + management


@pytest.mark.slow
def test_sixty_module_cluster_soak():
    runtime = SimRuntime(seed=77)
    runtime.tracer.enabled = False
    judged = {"count": 0}
    runtime.tracer.tap(
        "ml.judged", lambda r: judged.__setitem__("count", judged["count"] + 1)
    )
    cluster = IFoTCluster(runtime, heartbeat_s=10.0)
    tasks = []
    for i in range(GROUPS):
        sensor_module = cluster.add_module(f"pi-s{i}")
        sensor_module.attach_sensor("sample", FixedPayloadModel())
        cluster.add_module(f"pi-a{i}")
        tasks.append(
            TaskSpec(
                f"sense-{i}",
                "sensor",
                outputs=[f"raw-{i}"],
                params={"device": "sample", "rate_hz": 2},
                pin_to=f"pi-s{i}",
                capabilities=["sensor:sample"],
            )
        )
        tasks.append(
            TaskSpec(
                f"judge-{i}",
                "predict",
                inputs=[f"raw-{i}"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "train_on_stream": True,
                },
                pin_to=f"pi-a{i}",
            )
        )
    # 62 modules joining means an O(n^2) wave of retained announcement
    # deliveries over the shared medium — give it room to drain.
    cluster.settle(15.0)
    app = cluster.submit(Recipe("soak", tasks))
    cluster.settle(3.0)
    runtime.run(until=runtime.now + 120.0)

    # Every pipeline makes progress: 30 judges x 2 Hz x 120 s ~ 7200.
    assert judged["count"] > 6000
    # No CPU queue grows without bound on an uncontended cluster.
    for name, node in runtime.nodes.items():
        assert node.cpu.queue_length < 50, f"{name} backlogged"
    # The broker handled the whole cluster's control + data plane.
    broker_cpu = runtime.nodes["broker-node"].cpu
    assert broker_cpu.stats.jobs_dropped == 0
    app.stop()
    cluster.settle(3.0)
    for module in cluster.modules.values():
        assert module.operators == {}


@pytest.mark.slow
def test_soak_directory_sees_everyone():
    runtime = SimRuntime(seed=78)
    runtime.tracer.enabled = False
    cluster = IFoTCluster(runtime, heartbeat_s=5.0)
    for i in range(40):
        cluster.add_module(f"pi-{i}")
    cluster.settle(5.0)
    directory = cluster.management.directory
    assert len(directory.module_infos()) == 40  # mgmt excluded (not assignable)
    assert len(directory.modules()) == 41
