"""Failure injection: crash-stop nodes mid-run, verify degradation modes."""

from repro.bench.scenarios import build_paper_testbed
from repro.core.recipe import Recipe, TaskSpec
from repro.sensors.devices import FixedPayloadModel

from tests.core.conftest import ClusterHarness


def count_between(tracer_taps, start, end):
    return sum(1 for t in tracer_taps if start <= t < end)


class TestSensorFailure:
    def test_one_dead_sensor_stalls_aligned_batches(self):
        testbed = build_paper_testbed(10, seed=1, trace=False)
        runtime = testbed.runtime
        trained_at = []
        runtime.tracer.tap("ml.trained", lambda r: trained_at.append(r.time))
        testbed.submit()
        testbed.cluster.settle(2.0)
        runtime.run(until=runtime.now + 3.0)
        kill_time = runtime.now
        runtime.nodes["module-a"].fail()
        runtime.run(until=runtime.now + 3.0)
        before = count_between(trained_at, kill_time - 3.0, kill_time)
        after = count_between(trained_at, kill_time + 0.5, kill_time + 3.0)
        assert before > 20
        # The align window requires all three sources: training stops.
        assert after == 0

    def test_other_sensors_keep_publishing(self):
        testbed = build_paper_testbed(10, seed=1)
        runtime = testbed.runtime
        samples = []
        runtime.tracer.tap("sensor.sample", lambda r: samples.append(r.fields))
        testbed.submit()
        testbed.cluster.settle(2.0)
        runtime.nodes["module-a"].fail()
        runtime.run(until=runtime.now + 2.0)
        recent_devices = {s["sample_id"].split(".")[1] for s in samples[-10:]}
        assert "module-b" in recent_devices and "module-c" in recent_devices


class TestBrokerFailure:
    def test_broker_death_stops_all_flows(self):
        testbed = build_paper_testbed(10, seed=2)
        runtime = testbed.runtime
        trained_at = []
        runtime.tracer.tap("ml.trained", lambda r: trained_at.append(r.time))
        testbed.submit()
        testbed.cluster.settle(2.0)
        runtime.run(until=runtime.now + 2.0)
        kill_time = runtime.now
        runtime.nodes["module-d"].fail()  # broker host
        runtime.run(until=runtime.now + 3.0)
        assert count_between(trained_at, kill_time + 0.5, kill_time + 3.0) == 0

    def test_broker_recovery_resumes_flows(self):
        testbed = build_paper_testbed(10, seed=2)
        runtime = testbed.runtime
        trained_at = []
        runtime.tracer.tap("ml.trained", lambda r: trained_at.append(r.time))
        testbed.submit()
        testbed.cluster.settle(2.0)
        runtime.run(until=runtime.now + 2.0)
        runtime.nodes["module-d"].fail()
        runtime.run(until=runtime.now + 1.0)
        runtime.nodes["module-d"].recover()
        resume_time = runtime.now
        runtime.run(until=runtime.now + 3.0)
        # Sessions were preserved broker-side (within keepalive); flows resume.
        assert count_between(trained_at, resume_time + 0.5, resume_time + 3.0) > 0


class TestAnalysisNodeFailure:
    def test_predict_path_survives_train_node_death(self):
        testbed = build_paper_testbed(10, seed=3)
        runtime = testbed.runtime
        judged_at = []
        runtime.tracer.tap("ml.judged", lambda r: judged_at.append(r.time))
        testbed.submit()
        testbed.cluster.settle(2.0)
        runtime.run(until=runtime.now + 2.0)
        runtime.nodes["module-e"].fail()  # train host
        kill_time = runtime.now
        runtime.run(until=runtime.now + 3.0)
        assert count_between(judged_at, kill_time + 0.5, kill_time + 3.0) > 10


class TestDynamicMembership:
    def test_failed_module_disappears_from_directory_and_new_one_joins(self):
        harness = ClusterHarness(seed=4)
        harness.settle(1.0)
        pi1 = harness.add_module("pi-1")
        pi1.attach_sensor("sample", FixedPayloadModel())
        harness.settle(1.0)
        directory = harness.cluster.management.directory
        assert any(m.name == "pi-1" for m in directory.modules())
        pi1.node.fail()
        harness.settle(40.0)
        assert not any(m.name == "pi-1" for m in directory.modules())
        # A replacement joins dynamically and is assignable immediately.
        pi2 = harness.add_module("pi-2")
        pi2.attach_sensor("sample", FixedPayloadModel())
        harness.settle(1.0)
        recipe = Recipe(
            "late-app",
            [
                TaskSpec(
                    "sense",
                    "sensor",
                    outputs=["raw"],
                    params={"device": "sample", "rate_hz": 5},
                    capabilities=["sensor:sample"],
                )
            ],
        )
        app = harness.cluster.submit(recipe)
        assert app.assignment.module_for("sense") == "pi-2"
