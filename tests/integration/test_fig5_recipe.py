"""The paper's Fig. 5 recipe ("Start watching") runs end to end.

Four sensing tasks, two anomaly branches, camera monitoring, state
estimation and alert messaging — the figure's full task graph, deployed
from the shipped `.recipe` file over a five-module cluster with a planted
fall. The alert must fire inside the fall window.
"""

from pathlib import Path

from repro.core.dsl import parse_recipe
from repro.core.middleware import IFoTCluster
from repro.runtime.sim import SimRuntime
from repro.sensors import (
    AccelerometerModel,
    AlertActuator,
    CameraModel,
    EnvironmentSensorModel,
    EventSchedule,
)

RECIPE_PATH = (
    Path(__file__).resolve().parents[2]
    / "examples"
    / "recipes"
    / "fig5_watching.recipe"
)

FALL_AT = 20.0
FALL_LEN = 2.0


def build():
    events = EventSchedule()
    events.add(FALL_AT, FALL_LEN, "fall", intensity=1.2)
    runtime = SimRuntime(seed=55)
    cluster = IFoTCluster(runtime)
    wrist = cluster.add_module("pi-wrist")
    wrist.attach_sensor("accel-wrist", AccelerometerModel(events))
    waist = cluster.add_module("pi-waist")
    waist.attach_sensor("accel-waist", AccelerometerModel(events, sway_sigma=0.06))
    room = cluster.add_module("pi-room")
    room.attach_sensor("environment", EnvironmentSensorModel(events))
    room.attach_sensor("camera", CameraModel(events))
    analysis = cluster.add_module("pi-analysis")
    pager_module = cluster.add_module("pi-pager")
    pager = AlertActuator()
    pager_module.attach_actuator("pager", pager)
    cluster.settle(2.0)
    return runtime, cluster, pager


def test_fig5_recipe_detects_fall():
    runtime, cluster, pager = build()
    recipe = parse_recipe(RECIPE_PATH.read_text())
    app = cluster.submit(recipe)
    cluster.settle(2.0)
    runtime.run(until=runtime.now + 40.0)

    in_window = [
        t for t, _m, _c in pager.alerts if FALL_AT <= t <= FALL_AT + FALL_LEN + 3.0
    ]
    before_window = [t for t, _m, _c in pager.alerts if t < FALL_AT - 2.0]
    assert in_window, "the fall did not raise an alert"
    # Quiet operation before the event (allow detector warm-up noise).
    assert len(before_window) <= 3
    # All twelve tasks really deployed across the five modules.
    deployed = sum(len(m.operators) for m in cluster.modules.values())
    assert deployed == 12
    app.stop()


def test_fig5_camera_features_flow_into_state_estimation():
    runtime, cluster, pager = build()
    recipe = parse_recipe(RECIPE_PATH.read_text())
    app = cluster.submit(recipe)
    cluster.settle(2.0)
    situations = []
    from repro.core.flow import FlowRecord, topic_for_stream

    cluster.management.module.client.subscribe(
        topic_for_stream("start-watching", "situation"),
        lambda _t, p, _pkt: situations.append(FlowRecord.from_payload(p)),
    )
    runtime.run(until=runtime.now + 10.0)
    assert situations
    latest = situations[-1]
    # Fused datum carries body features, environment and camera channels.
    keys = set(latest.datum.num_values)
    assert "body_mag" in keys
    assert "motion_level" in keys
    assert "sound_db" in keys
    # Camera monitoring's windowed statistic rides in the attributes.
    assert "motion_level_mean" in latest.attributes
    app.stop()
