"""Automatic failover: orphaned sub-tasks move to surviving modules."""

import pytest

from repro.core.middleware import IFoTCluster
from repro.core.recipe import Recipe, TaskSpec
from repro.runtime.sim import SimRuntime
from repro.sensors.devices import FixedPayloadModel


def failover_cluster(seed=17):
    runtime = SimRuntime(seed=seed)
    cluster = IFoTCluster(runtime, heartbeat_s=2.0, auto_failover=True)
    sensor_module = cluster.add_module("pi-sense")
    sensor_module.attach_sensor("sample", FixedPayloadModel())
    cluster.add_module("pi-w1")
    cluster.add_module("pi-w2")
    # Short keepalives so crash detection is fast in virtual time.
    for module in cluster.modules.values():
        module.client.keepalive_s = 2.0
        module.client.refresh_session()
    cluster.settle(2.0)
    return runtime, cluster


def recipe():
    return Recipe(
        "app",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 10},
                capabilities=["sensor:sample"],
            ),
            TaskSpec(
                "judge",
                "predict",
                inputs=["raw"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "train_on_stream": True,
                },
            ),
        ],
    )


def judged_between(tracer, start, end):
    return sum(1 for r in tracer.select("ml.judged") if start <= r.time < end)


def test_judge_task_moves_to_surviving_module():
    runtime, cluster = failover_cluster()
    app = cluster.submit(recipe())
    cluster.settle(2.0)
    judge_host = app.assignment.module_for("judge")
    assert judge_host in ("pi-w1", "pi-w2", "pi-sense")
    runtime.run(until=runtime.now + 3.0)
    before = runtime.tracer.count("ml.judged")
    assert before > 10

    cluster.module(judge_host).node.fail()
    kill_time = runtime.now
    runtime.run(until=runtime.now + 25.0)

    moved = runtime.tracer.select("mgmt.failover_moved")
    assert len(moved) == 1
    assert moved[0]["subtask"] == "judge"
    assert moved[0]["from_module"] == judge_host
    new_host = moved[0]["to_module"]
    assert new_host != judge_host
    # The assignment record was updated...
    assert cluster.management._led["app"][1].module_for("judge") == new_host
    # ...and judging actually resumed on the new host.
    resumed = judged_between(runtime.tracer, kill_time + 15.0, runtime.now)
    assert resumed > 10
    assert cluster.management.failovers_performed == 1


def test_pinned_subtasks_are_not_moved():
    runtime, cluster = failover_cluster(seed=18)
    pinned = Recipe(
        "pinned-app",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 5},
                pin_to="pi-sense",
                capabilities=["sensor:sample"],
            ),
        ],
    )
    cluster.submit(pinned)
    cluster.settle(2.0)
    cluster.module("pi-sense").node.fail()
    runtime.run(until=runtime.now + 25.0)
    assert runtime.tracer.count("mgmt.failover_moved") == 0
    assert runtime.tracer.count("mgmt.failover_pinned") == 1
    assert cluster.management.failovers_performed == 0


def test_failover_disabled_by_default():
    runtime = SimRuntime(seed=19)
    cluster = IFoTCluster(runtime, heartbeat_s=2.0)  # auto_failover=False
    sensor_module = cluster.add_module("pi-sense")
    sensor_module.attach_sensor("sample", FixedPayloadModel())
    cluster.add_module("pi-w1")
    for module in cluster.modules.values():
        module.client.keepalive_s = 2.0
        module.client.refresh_session()
    cluster.settle(2.0)
    app = cluster.submit(recipe())
    cluster.settle(2.0)
    judge_host = app.assignment.module_for("judge")
    cluster.module(judge_host).node.fail()
    runtime.run(until=runtime.now + 25.0)
    assert runtime.tracer.count("mgmt.failover_moved") == 0


def test_membership_watch_fires_for_join_and_leave():
    runtime, cluster = failover_cluster(seed=20)
    events = []
    cluster.management.directory.watch_members(
        lambda name, alive: events.append((name, alive))
    )
    late = cluster.add_module("pi-late")
    late.client.keepalive_s = 2.0
    late.client.refresh_session()
    cluster.settle(3.0)
    assert ("pi-late", True) in events
    late.node.fail()
    runtime.run(until=runtime.now + 25.0)
    assert ("pi-late", False) in events


def test_failover_judge_recovers_model_from_retained_snapshot():
    """A judge configured with model_from picks the last retained model
    snapshot straight back up on its new host after failover — the online
    model survives the crash even though operator state does not."""
    runtime, cluster = failover_cluster(seed=21)
    app_recipe = Recipe(
        "snap-app",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 10},
                pin_to="pi-sense",
                capabilities=["sensor:sample"],
            ),
            TaskSpec(
                "learn",
                "train",
                inputs=["raw"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "publish_model_every": 10,
                },
                pin_to="pi-sense",  # keep the learner safe from the crash
            ),
            TaskSpec(
                "judge",
                "predict",
                inputs=["raw"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "model_from": "learn",
                },
            ),
        ],
    )
    app = cluster.submit(app_recipe)
    cluster.settle(2.0)
    victim = app.assignment.module_for("judge")
    assert victim in ("pi-w1", "pi-w2")
    runtime.run(until=runtime.now + 3.0)
    cluster.module(victim).node.fail()
    runtime.run(until=runtime.now + 25.0)
    moved = runtime.tracer.select("mgmt.failover_moved")
    assert moved and moved[0]["subtask"] == "judge"
    new_host = cluster.module(moved[0]["to_module"])
    operator = new_host.operators["snap-app/judge"]
    # The replacement judge loaded the retained snapshot and judges with
    # a real model (judged=True), not the unjudged pass-through.
    assert operator.model_loads >= 1
    runtime.run(until=runtime.now + 2.0)
    assert operator.records_judged > 5
