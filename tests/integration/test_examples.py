"""The shipped examples must run end to end and achieve their goals.

Each example's ``main()`` returns 0 only when its application-level success
criterion holds (falls detected, appliances controlled correctly, ranking
reacts to the surge), so these are real acceptance tests, not smoke tests.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs_real_runtime():
    module = load_example("quickstart")
    assert module.main(duration_s=1.5) == 0


def test_elderly_monitoring_detects_all_falls():
    module = load_example("elderly_monitoring")
    assert module.main() == 0


def test_home_appliance_control_accuracy():
    module = load_example("home_appliance_control")
    assert module.main() == 0


@pytest.mark.slow
def test_mobility_support_ranking_reacts_to_surge():
    module = load_example("mobility_support")
    assert module.main() == 0


def test_resilient_pipeline_fails_over():
    module = load_example("resilient_pipeline")
    assert module.main() == 0


def test_chaos_demo_survives_partition():
    module = load_example("chaos_demo")
    assert module.main() == 0
