"""The middleware running for real: wall-clock asyncio runtime.

These keep real-time waits short (~1-2 s per test) but exercise the same
code paths as the simulated benchmarks: deployment over MQTT, flow
distribution, online analysis, actuation, and MIX.
"""

import pytest

from repro.core.middleware import IFoTCluster
from repro.core.recipe import Recipe, TaskSpec
from repro.runtime.real import AsyncioRuntime
from repro.sensors.base import EventSchedule
from repro.sensors.devices import AccelerometerModel, AlertActuator, FixedPayloadModel


@pytest.fixture
def real_runtime():
    runtime = AsyncioRuntime(seed=23)
    yield runtime
    runtime.close()


def test_full_pipeline_under_wall_clock(real_runtime):
    cluster = IFoTCluster(real_runtime)
    module = cluster.add_module("pi-1")
    module.attach_sensor("sample", FixedPayloadModel())
    real_runtime.run_for(0.1)
    recipe = Recipe(
        "real-app",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 50},
                capabilities=["sensor:sample"],
            ),
            TaskSpec(
                "train",
                "train",
                inputs=["raw"],
                params={"model": "classifier", "label_key": "label"},
            ),
        ],
    )
    app = cluster.submit(recipe)
    real_runtime.run_for(1.0)
    train = app.operator("train")
    assert train.records_trained > 20
    assert train.model.ready
    latencies = [
        r["latency_s"] for r in real_runtime.tracer.select("ml.trained")
    ]
    # Wall-clock in-process latency is sub-50ms.
    assert max(latencies) < 0.05
    app.stop()
    real_runtime.run_for(0.1)
    assert module.operators == {}


def test_anomaly_to_actuator_under_wall_clock(real_runtime):
    cluster = IFoTCluster(real_runtime)
    events = EventSchedule()
    events.add(0.7, 0.3, "fall", intensity=1.5)
    module = cluster.add_module("pi-1")
    module.attach_sensor("accel", AccelerometerModel(events))
    pager = AlertActuator()
    module.attach_actuator("pager", pager)
    real_runtime.run_for(0.1)
    recipe = Recipe(
        "real-falls",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "accel", "rate_hz": 60},
                capabilities=["sensor:accel"],
            ),
            TaskSpec(
                "mag",
                "map",
                inputs=["raw"],
                outputs=["mag"],
                params={"fn": "magnitude", "keys": ["ax", "ay", "az"]},
            ),
            TaskSpec(
                "score",
                "predict",
                inputs=["mag"],
                outputs=["scored"],
                params={
                    "model": "anomaly",
                    "detector": "zscore",
                    "min_samples": 20,
                    "threshold": 6.0,
                    "train_on_stream": True,
                },
            ),
            TaskSpec(
                "rule",
                "command",
                inputs=["scored"],
                outputs=["alerts"],
                params={
                    "rules": [
                        {
                            "when": {"key": "anomalous", "eq": True},
                            "command": {"message": "fall"},
                        }
                    ]
                },
            ),
            TaskSpec(
                "pager",
                "actuator",
                inputs=["alerts"],
                params={"device": "pager"},
                capabilities=["actuator:pager"],
            ),
        ],
    )
    app = cluster.submit(recipe)
    real_runtime.run_for(1.5)
    assert len(pager.alerts) >= 1
    app.stop()


def test_mix_over_wall_clock(real_runtime):
    cluster = IFoTCluster(real_runtime)
    m1 = cluster.add_module("pi-1")
    m1.attach_sensor("sample", FixedPayloadModel())
    cluster.add_module("pi-2")
    cluster.add_module("pi-3")
    real_runtime.run_for(0.1)
    recipe = Recipe(
        "real-mix",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 40},
                capabilities=["sensor:sample"],
            ),
            TaskSpec(
                "learn",
                "train",
                inputs=["raw"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "mix_group": "g",
                },
                parallelism=2,
            ),
            TaskSpec(
                "manage",
                "mix",
                params={
                    "group": "g",
                    "participants": ["learn#0", "learn#1"],
                    "interval_s": 0.4,
                    "timeout_s": 0.2,
                },
            ),
        ],
    )
    app = cluster.submit(recipe)
    real_runtime.run_for(1.5)
    assert real_runtime.tracer.count("mix.round_done") >= 2
    assert real_runtime.tracer.count("ml.mix_applied") >= 2
    app.stop()
