"""EXP-S8 — aggregation-window ablation (supplementary).

The paper's module E/F aggregate the three sensor flows into ``[data]``
batches; *how* to window is a design choice DESIGN.md calls out. This
bench compares the three window modes at a comfortable 10 Hz:

* ``align`` (one record per source) — what the reproduction uses for the
  tables: lowest latency per complete batch, emits at the sensor rate;
* ``count`` (every 3 records regardless of source) — same batch size but
  source-blind, so batches can double-count one sensor;
* ``time`` (100 ms windows) — latency floor includes up to a full window.

Claims checked: align and count emit at the source rate with similar
latency; time-mode latency carries the extra window residence (≈ half a
window for the mean over members plus the flush bound); align never mixes
two records of one source in a batch.
"""

from __future__ import annotations

from repro.bench.calibration import pi_cost_model, pi_wlan_config
from repro.core import IFoTCluster, Recipe, TaskSpec
from repro.core.flow import FlowRecord, topic_for_stream
from repro.runtime import SimRuntime
from repro.sensors import FixedPayloadModel
from repro.util.stats import LatencyRecorder

from conftest import record_rows

RATE_HZ = 10.0
SENSORS = ("pi-s1", "pi-s2", "pi-s3")


def window_params(mode: str) -> dict:
    if mode == "align":
        return {"mode": "align", "sources": list(SENSORS)}
    if mode == "count":
        return {"mode": "count", "count": 3}
    return {"mode": "time", "interval_s": 0.1}


def run_mode(mode: str, seed: int = 12) -> dict:
    runtime = SimRuntime(
        seed=seed, wlan_config=pi_wlan_config(), cost_model=pi_cost_model()
    )
    runtime.tracer.enabled = False
    cluster = IFoTCluster(runtime)
    for name in SENSORS:
        module = cluster.add_module(name)
        module.attach_sensor("sample", FixedPayloadModel())
    gather_host = cluster.add_module("pi-gather")

    batches: list[FlowRecord] = []
    latencies = LatencyRecorder(mode)
    probe = gather_host.client

    def on_batch(_topic, payload, _packet):
        record = FlowRecord.from_payload(payload)
        batches.append(record)
        latencies.add((runtime.now - record.sensed_at) * 1000.0)

    probe.subscribe(topic_for_stream("win-ablation", "batch"), on_batch)

    tasks = [
        TaskSpec(
            f"sense-{name}",
            "sensor",
            outputs=[f"raw-{name}"],
            params={"device": "sample", "rate_hz": RATE_HZ},
            pin_to=name,
            capabilities=["sensor:sample"],
        )
        for name in SENSORS
    ]
    tasks.append(
        TaskSpec(
            "gather",
            "window",
            inputs=[f"raw-{name}" for name in SENSORS],
            outputs=["batch"],
            params=window_params(mode),
            pin_to="pi-gather",
        )
    )
    cluster.settle(2.0)
    cluster.submit(Recipe("win-ablation", tasks))
    cluster.settle(2.0)
    runtime.run(until=runtime.now + 10.0)
    sizes = [len(b.merged_ids) for b in batches]
    per_source_max = max(
        (max((sum(1 for m in b.merged_ids if name in m) for name in SENSORS))
         for b in batches),
        default=0,
    )
    return {
        "mode": mode,
        "batches": len(batches),
        "avg_latency_ms": latencies.average,
        "avg_batch_size": sum(sizes) / len(sizes) if sizes else 0.0,
        "max_same_source_in_batch": per_source_max,
    }


def bench_window_modes(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_mode(m) for m in ("align", "count", "time")],
        rounds=1,
        iterations=1,
    )
    print("\nmode   | batches | avg size | avg latency (ms) | max same-source/batch")
    for row in rows:
        print(
            f"{row['mode']:>6} | {row['batches']:7d} | {row['avg_batch_size']:8.2f} | "
            f"{row['avg_latency_ms']:16.2f} | {row['max_same_source_in_batch']:5d}"
        )
    record_rows(benchmark, {r["mode"]: r["avg_latency_ms"] for r in rows})
    by_mode = {r["mode"]: r for r in rows}
    # All modes keep up with the source rate (~10 batches/s for 10 s).
    for row in rows:
        assert row["batches"] > 80
    # Align guarantees one record per source per batch; count does not.
    assert by_mode["align"]["max_same_source_in_batch"] == 1
    assert by_mode["align"]["avg_batch_size"] == 3.0
    # Time windows pay extra residence latency over align.
    assert (
        by_mode["time"]["avg_latency_ms"]
        > by_mode["align"]["avg_latency_ms"] + 20.0
    )
    # Align and count see similar latency at a uniform rate.
    assert abs(
        by_mode["align"]["avg_latency_ms"] - by_mode["count"]["avg_latency_ms"]
    ) < 25.0
