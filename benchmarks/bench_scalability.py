"""EXP-S4 — scalability in module count.

The paper's conclusion names scalability as the next step. This bench
grows the cluster from 1 to 8 sensor groups (each group = one 10 Hz sensor
module plus one analysis module running its own judge pipeline) and
measures how end-to-end judge latency behaves:

* with **proportional resources** (one analysis module per sensor) the
  per-flow latency must stay essentially flat — the PO3 architecture
  scales horizontally because flows are independent;
* the shared broker and WLAN are the coupling points: the bench records
  broker CPU utilization so the eventual ceiling is visible in the output.
"""

from __future__ import annotations

from repro.bench.calibration import PI_QUEUE_LIMIT, pi_cost_model, pi_wlan_config
from repro.core import IFoTCluster, Recipe, TaskSpec
from repro.runtime import SimRuntime
from repro.sensors import FixedPayloadModel
from repro.util.stats import LatencyRecorder

from conftest import record_rows

GROUP_COUNTS = (1, 2, 4, 8)
RATE_HZ = 10.0


def build_recipe(groups: int) -> Recipe:
    tasks = []
    for i in range(groups):
        tasks.append(
            TaskSpec(
                f"sense-{i}",
                "sensor",
                outputs=[f"raw-{i}"],
                params={"device": "sample", "rate_hz": RATE_HZ},
                pin_to=f"pi-sense-{i}",
                capabilities=["sensor:sample"],
            )
        )
        tasks.append(
            TaskSpec(
                f"judge-{i}",
                "predict",
                inputs=[f"raw-{i}"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "train_on_stream": True,
                },
                pin_to=f"pi-analysis-{i}",
            )
        )
    return Recipe("scale", tasks)


def run_at_scale(groups: int, seed: int = 8) -> dict:
    runtime = SimRuntime(
        seed=seed, wlan_config=pi_wlan_config(), cost_model=pi_cost_model()
    )
    runtime.tracer.enabled = False
    cluster = IFoTCluster(runtime)
    for i in range(groups):
        sensor_module = cluster.add_module(
            f"pi-sense-{i}", queue_limit=PI_QUEUE_LIMIT
        )
        sensor_module.attach_sensor("sample", FixedPayloadModel())
        cluster.add_module(f"pi-analysis-{i}", queue_limit=PI_QUEUE_LIMIT)
    latencies = LatencyRecorder(f"groups={groups}")
    runtime.tracer.tap("ml.judged", lambda r: latencies.add(r["latency_s"] * 1000.0))
    cluster.settle(2.0)
    app = cluster.submit(build_recipe(groups))
    cluster.settle(2.0)
    start = runtime.now
    runtime.run(until=runtime.now + 15.0)
    broker_cpu = runtime.nodes["broker-node"].cpu
    broker_util = broker_cpu.stats.busy_time / (runtime.now - 0.0)
    app.stop()
    return {
        "groups": groups,
        "avg_ms": latencies.average,
        "p95_ms": latencies.percentile(95),
        "judged": latencies.count,
        "broker_util": broker_util,
        "wlan_util": runtime.wlan.utilization(),
    }


def bench_scalability(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_at_scale(g) for g in GROUP_COUNTS], rounds=1, iterations=1
    )
    print("\ngroups | judge avg (ms) | p95 (ms) | broker util | wlan util")
    for row in rows:
        print(
            f"{row['groups']:>6} | {row['avg_ms']:14.2f} | {row['p95_ms']:8.2f} | "
            f"{row['broker_util']:11.3f} | {row['wlan_util']:9.3f}"
        )
    record_rows(benchmark, {f"groups_{r['groups']}_avg_ms": r["avg_ms"] for r in rows})
    by_groups = {r["groups"]: r for r in rows}
    # Horizontal scaling: per-flow latency stays flat (< 1.5x the 1-group
    # figure even at 8 groups) because each group brings its own compute.
    assert by_groups[8]["avg_ms"] < 1.5 * by_groups[1]["avg_ms"]
    # Throughput actually scales: 8 groups judge ~8x the records.
    assert by_groups[8]["judged"] > 6 * by_groups[1]["judged"]
    # The shared broker's load grows with cluster size (the ceiling the
    # paper's future-work scalability concern is about).
    assert by_groups[8]["broker_util"] > 3 * by_groups[1]["broker_util"]
