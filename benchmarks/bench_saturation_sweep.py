"""EXP-S1 — fine-grained rate sweep locating the real-time breakdown.

§V-C claims: "In the case of low sensing rate such as 10 and 20Hz, IFoT
middleware could realize low-latency (i.e., real-time) processing. When
sensing rate is 20 to 40Hz, the delay time increased and real-time
processing was no longer possible."

This bench sweeps more rates than the paper's five and locates the knee —
the first rate where average sensing->training latency exceeds half a
second, a generous bound on "real-time" for interactive IoT feedback —
asserting it falls strictly between 20 and 40 Hz, as it does in the
paper's Table II (their 20 Hz row is 233 ms, their 40 Hz row 1123 ms).
"""

from __future__ import annotations

from repro.bench import run_rate_sweep

from conftest import record_rows

RATES = (5, 10, 15, 20, 25, 30, 35, 40, 50, 60, 80)


def bench_saturation_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: run_rate_sweep(RATES, seed=2), rounds=1, iterations=1
    )
    series = {int(r.rate_hz): r.training.average for r in results}
    print("\nrate(Hz) -> sensing->training avg (ms)")
    for rate in RATES:
        bar = "#" * min(80, int(series[rate] / 25))
        print(f"  {rate:>3} | {series[rate]:9.1f} {bar}")
    record_rows(benchmark, {f"{rate}Hz_avg_ms": series[rate] for rate in RATES})

    REAL_TIME_MS = 500.0
    knee = next(
        (rate for rate in RATES if series[rate] > REAL_TIME_MS), None
    )
    print(f"  knee (first rate beyond {REAL_TIME_MS:.0f} ms): {knee} Hz")
    benchmark.extra_info["knee_hz"] = knee
    assert knee is not None
    assert 20 < knee <= 40, f"knee at {knee} Hz, paper places it in (20, 40]"
    # Beyond the knee the latency keeps growing.
    assert series[80] > series[50] > series[40]
    # At and below 20 Hz the middleware is still real-time.
    for rate in (5, 10, 15, 20):
        assert series[rate] < REAL_TIME_MS
