"""EXP-S3 — broker placement and QoS level ablation.

Two design choices of the prototype are probed at a rate near the knee
(30 Hz), where queueing is sensitive:

* **broker placement** — the paper runs Mosquitto on a Raspberry Pi
  (module D). Moving the broker to laptop-class hardware (8x CPU) should
  cut end-to-end latency, quantifying how much of the delay the Pi-hosted
  broker contributes.
* **QoS level** — raising the flow QoS from 0 to 1 doubles control traffic
  (PUBACKs) and adds broker-side retransmission state; latency must rise,
  never fall.
"""

from __future__ import annotations

from repro.bench.harness import run_paper_experiment

from conftest import record_rows

RATE_HZ = 30


def bench_broker_placement(benchmark):
    def run():
        pi = run_paper_experiment(RATE_HZ, seed=4, broker_cpu_speed=1.0)
        laptop = run_paper_experiment(RATE_HZ, seed=4, broker_cpu_speed=8.0)
        return pi, laptop

    pi, laptop = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nbroker on Pi:     train avg {pi.training.average:8.1f} ms, "
        f"predict avg {pi.predicting.average:8.1f} ms"
    )
    print(
        f"broker on laptop: train avg {laptop.training.average:8.1f} ms, "
        f"predict avg {laptop.predicting.average:8.1f} ms"
    )
    record_rows(
        benchmark,
        {
            "pi_train_avg_ms": pi.training.average,
            "laptop_train_avg_ms": laptop.training.average,
            "pi_predict_avg_ms": pi.predicting.average,
            "laptop_predict_avg_ms": laptop.predicting.average,
        },
    )
    # A faster broker host must not be slower end to end.
    assert laptop.training.average <= pi.training.average * 1.05
    assert laptop.predicting.average <= pi.predicting.average * 1.05


def bench_qos_level(benchmark):
    def run():
        qos0 = run_paper_experiment(RATE_HZ, seed=5, qos=0)
        qos1 = run_paper_experiment(RATE_HZ, seed=5, qos=1)
        return qos0, qos1

    qos0, qos1 = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nQoS 0: train avg {qos0.training.average:8.1f} ms "
        f"(batches {qos0.batches_trained})"
    )
    print(
        f"QoS 1: train avg {qos1.training.average:8.1f} ms "
        f"(batches {qos1.batches_trained})"
    )
    record_rows(
        benchmark,
        {
            "qos0_train_avg_ms": qos0.training.average,
            "qos1_train_avg_ms": qos1.training.average,
        },
    )
    # At-least-once delivery costs latency near the knee.
    assert qos1.training.average >= qos0.training.average
    # Both configurations still deliver batches.
    assert qos1.batches_trained > 0
