"""EXP-S7 — time to recover from a module crash (supplementary).

The paper's future work names "IoT devices that can dynamically join /
leave the network". This repository implements crash detection (MQTT
last-will + directory TTL) and automatic re-assignment of orphaned
sub-tasks; this bench measures the end-to-end **recovery time**: from the
instant a module hosting a judge pipeline dies to the first record judged
on its replacement.

Recovery decomposes into (a) detection — the dead session's keep-alive
must expire before the broker fires the will — and (b) re-deployment —
split state is re-assigned and the deploy command reaches the new host.
With 2 s keep-alives, detection dominates: asserted below.
"""

from __future__ import annotations

from repro.core.middleware import IFoTCluster
from repro.core.recipe import Recipe, TaskSpec
from repro.runtime.sim import SimRuntime
from repro.sensors.devices import FixedPayloadModel

from conftest import record_rows

KEEPALIVE_S = 2.0
SWEEP_S = 5.0  # broker session sweep cadence (default)


def run_failover(seed: int) -> dict:
    runtime = SimRuntime(seed=seed)
    runtime.tracer.enabled = False
    cluster = IFoTCluster(runtime, heartbeat_s=2.0, auto_failover=True)
    sensor_module = cluster.add_module("pi-sense")
    sensor_module.attach_sensor("sample", FixedPayloadModel())
    cluster.add_module("pi-w1")
    cluster.add_module("pi-w2")
    for module in cluster.modules.values():
        module.client.keepalive_s = KEEPALIVE_S
        module.client.refresh_session()
    judged_on: list[tuple[float, str]] = []
    moved_at: list[float] = []
    runtime.tracer.tap("ml.judged", lambda r: judged_on.append((r.time, r.source)))
    runtime.tracer.tap("mgmt.failover_moved", lambda r: moved_at.append(r.time))
    cluster.settle(2.0)

    recipe = Recipe(
        "app",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": 20},
                capabilities=["sensor:sample"],
            ),
            TaskSpec(
                "judge",
                "predict",
                inputs=["raw"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "train_on_stream": True,
                },
            ),
        ],
    )
    app = cluster.submit(recipe)
    cluster.settle(2.0)
    runtime.run(until=runtime.now + 3.0)
    victim = app.assignment.module_for("judge")
    kill_time = runtime.now
    cluster.module(victim).node.fail()
    runtime.run(until=runtime.now + 30.0)

    first_after = next(
        (t for t, source in judged_on if t > (moved_at[0] if moved_at else 1e18)),
        None,
    )
    assert moved_at and first_after is not None
    return {
        "kill_time": kill_time,
        "detect_redeploy_s": moved_at[0] - kill_time,
        "recovery_s": first_after - kill_time,
    }


def bench_failover_recovery_time(benchmark):
    outcomes = benchmark.pedantic(
        lambda: [run_failover(seed) for seed in (31, 32, 33)],
        rounds=1,
        iterations=1,
    )
    recovery = [o["recovery_s"] for o in outcomes]
    detect = [o["detect_redeploy_s"] for o in outcomes]
    print("\nfailover recovery (module death -> first judged record on new host):")
    for o in outcomes:
        print(
            f"  detect+redeploy {o['detect_redeploy_s']:6.2f} s, "
            f"full recovery {o['recovery_s']:6.2f} s"
        )
    record_rows(
        benchmark,
        {
            "mean_recovery_s": sum(recovery) / len(recovery),
            "mean_detect_s": sum(detect) / len(detect),
        },
    )
    # Detection is bounded by keep-alive expiry + broker sweep + directory
    # rescan; recovery adds one deploy round-trip and the first record.
    for value in recovery:
        assert value < KEEPALIVE_S * 1.5 + SWEEP_S + 10.0
        assert value > KEEPALIVE_S  # cannot beat the keep-alive silence
    # Redeployment overhead is small next to detection.
    for o in outcomes:
        assert o["recovery_s"] - o["detect_redeploy_s"] < 2.0


def run_self_healing(seed: int) -> dict:
    """Run the full crash -> failover -> rejoin -> fail-back cycle.

    The ``failover`` chaos scenario kills the module hosting the
    learner mid-stream, lets the control plane re-place it on surviving
    capacity, restarts the module, and migrates the sub-task back home
    via the pause -> drain -> transfer -> resume handoff. Every QoS 1
    message must be accounted for and no sample may be processed by two
    instances of the sub-task.
    """
    from repro.chaos import run_scenario
    from repro.core.healing import recovery_report

    result = run_scenario("failover", seed=seed)
    assert result.report.ok, [c.detail for c in result.report.failed()]
    assert result.tracer is not None
    healed = recovery_report(result.tracer)
    migrations = [m for m in healed.migrations if m.get("duration_s") is not None]
    assert healed.failovers and migrations
    metrics = result.report.metrics
    return {
        "detect_failover_s": metrics["recovery_s:node_crash"],
        "failback_s": metrics["recovery_s:node_restart"],
        "migration_s": max(m["duration_s"] for m in migrations),
        "qos1_unaccounted": metrics["qos1_unaccounted"],
        "cross_instance_duplicates": metrics["ml_cross_instance_duplicates"],
        "ml_records": metrics["ml_records"],
    }


def bench_self_healing_cycle(benchmark):
    outcomes = benchmark.pedantic(
        lambda: [run_self_healing(seed) for seed in (0, 1, 2)],
        rounds=1,
        iterations=1,
    )
    print("\nself-healing cycle (crash -> failover -> rejoin -> fail-back):")
    for o in outcomes:
        print(
            f"  detect+failover {o['detect_failover_s']:6.2f} s, "
            f"fail-back {o['failback_s']:6.2f} s, "
            f"migration {o['migration_s']:6.3f} s"
        )
    record_rows(
        benchmark,
        {
            "mean_detect_failover_s": round(
                sum(o["detect_failover_s"] for o in outcomes) / len(outcomes), 6
            ),
            "mean_failback_s": round(
                sum(o["failback_s"] for o in outcomes) / len(outcomes), 6
            ),
            "mean_migration_s": round(
                sum(o["migration_s"] for o in outcomes) / len(outcomes), 6
            ),
            "ml_records": sum(o["ml_records"] for o in outcomes),
        },
    )
    for o in outcomes:
        # Delivery accounting must be airtight across the whole cycle.
        assert o["qos1_unaccounted"] == 0
        assert o["cross_instance_duplicates"] == 0
        # The live migration itself is cheap next to crash detection.
        assert o["migration_s"] < 1.0
        assert o["detect_failover_s"] > o["migration_s"]
