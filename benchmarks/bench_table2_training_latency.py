"""EXP-T2 — regenerate Table II: sensing->training latency vs sampling rate.

Paper (Table II, ms):

    rate  avg       max
    5     58.969    357.619
    10    60.904    360.761
    20    232.944   419.513
    40    1123.317  1482.500
    80    1636.907  1913.752

Acceptance is on *shape* (see EXPERIMENTS.md): flat and low at 5-10 Hz,
knee between 20 and 40 Hz, saturated-but-monotone at 40/80 Hz, warm-up
spikes dominating the low-rate max column.
"""

from __future__ import annotations

from repro.bench import (
    PAPER_TABLE2_TRAINING,
    format_comparison_table,
    run_rate_sweep,
)
from repro.bench.calibration import PAPER_RATES_HZ

from conftest import record_rows


def bench_table2_training_latency(benchmark):
    results = benchmark.pedantic(
        lambda: run_rate_sweep(PAPER_RATES_HZ, seed=1), rounds=1, iterations=1
    )
    print()
    print(
        format_comparison_table(
            results,
            PAPER_TABLE2_TRAINING,
            "training",
            "Table II — sensing->training latency (ms)",
        )
    )
    rows = {f"{int(r.rate_hz)}Hz": r.row("training") for r in results}
    record_rows(benchmark, rows)

    by_rate = {int(r.rate_hz): r.training for r in results}
    # Real-time regime at 5-10 Hz: low and flat.
    assert by_rate[5].average < 150.0
    assert by_rate[10].average < 150.0
    assert abs(by_rate[10].average - by_rate[5].average) < 50.0
    # Knee between 20 and 40 Hz: 20 Hz is elevated but sub-second, 40 Hz is not.
    assert by_rate[20].average < 600.0
    assert by_rate[40].average > 4 * by_rate[20].average
    assert by_rate[40].average > 800.0
    # Saturated regime stays monotone in rate.
    assert by_rate[80].average > by_rate[40].average
    # Warm-up dominates the max column at low rates (paper: max ~6x avg).
    assert by_rate[5].maximum > 3 * by_rate[5].average
    # At saturation max/avg tightens (paper: ~1.2-1.3x).
    assert by_rate[80].maximum < 2.5 * by_rate[80].average
