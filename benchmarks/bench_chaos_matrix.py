"""EXP-S8 — chaos matrix: every fault scenario x several seeds (supplementary).

The paper's future work names "IoT devices that can dynamically join /
leave the network"; ``repro.chaos`` turns that into a checked contract.
This bench runs the full scenario registry (partition-and-heal, module
crash, amnesia restart, broker power-cycle, bursty WLAN, sensor flap)
across a seed sweep and asserts the end-to-end invariants on every cell:

* no silent QoS 1 loss (every forwarded message delivered, given up,
  dropped-with-reason, or still pending),
* effectively-once input into learning (dedup holds under redelivery),
* bounded recovery (module crash re-placed within
  ``2 x keep-alive + sweep``; each scenario carries its own bound),
* directory convergence after the dust settles.

Aggregate recovery times land in ``benchmark.extra_info``.
"""

from __future__ import annotations

from repro.chaos import SCENARIOS, run_scenario

from conftest import record_rows

SEEDS = (0, 1, 2)


def run_matrix() -> tuple[dict, list[str]]:
    rows: dict[str, float] = {}
    failures: list[str] = []
    for name in sorted(SCENARIOS):
        worst_recovery = 0.0
        for seed in SEEDS:
            result = run_scenario(name, seed=seed)
            if not result.report.ok:
                failures.extend(
                    f"{name}[seed={seed}] {check.name}: {check.detail}"
                    for check in result.report.failed()
                )
            for key, value in result.report.metrics.items():
                if key.startswith("recovery_s:"):
                    worst_recovery = max(worst_recovery, value)
        rows[f"{name}_worst_recovery_s"] = round(worst_recovery, 4)
    return rows, failures


def bench_chaos_matrix_invariants(benchmark):
    rows, failures = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    record_rows(benchmark, rows)
    assert not failures, "invariant failures:\n" + "\n".join(failures)
