"""EXP-S5 — MIX distributed learning: accuracy and cost.

The paper adopts Jubatus for its "powerful distributed on-line machine
learning capability". This bench validates our MIX substitute at the
library level: K learners each see a disjoint 1/K shard of a labelled
stream and synchronize by averaging diffs every round. Claims checked:

* mixed shard learners reach (near-)centralized accuracy — within 3
  points of one learner that saw the whole stream;
* without MIX the shard learners drift apart (their weight vectors
  diverge), demonstrating the protocol does real work;
* the wall-clock cost of a MIX round is tiny next to training itself
  (the measured benchmark time is dominated by the training loop).
"""

from __future__ import annotations

import random

from repro.ml.linear import make_learner
from repro.ml.mix import MixCoordinator, MixParticipantState, average_diffs

from conftest import record_rows

LEARNERS = 4
ROUNDS = 8
SAMPLES_PER_ROUND = 200


def make_stream(seed: int):
    rng = random.Random(seed)

    def draw():
        x, y, z = rng.gauss(0, 1), rng.gauss(0, 1), rng.gauss(0, 1)
        label = "a" if 0.7 * x - 0.4 * y + 0.2 * z > 0 else "b"
        return {"x": x, "y": y, "z": z, "bias": 1.0}, label

    return draw


def accuracy(learner, seed: int = 999, n: int = 500) -> float:
    draw = make_stream(seed)
    correct = 0
    for _ in range(n):
        features, label = draw()
        correct += learner.classify(features)[0] == label
    return correct / n


def run_mix_training(with_mix: bool):
    draw = make_stream(7)
    learners = [make_learner("pa1") for _ in range(LEARNERS)]
    participants = [
        MixParticipantState(f"p{i}", learner) for i, learner in enumerate(learners)
    ]
    coordinator = MixCoordinator()
    centralized = make_learner("pa1")
    for _round in range(ROUNDS):
        for i in range(SAMPLES_PER_ROUND):
            features, label = draw()
            learners[i % LEARNERS].train(features, label)
            centralized.train(features, label)
        if with_mix:
            round_ = coordinator.start_round([p.name for p in participants])
            for participant in participants:
                reply = participant.make_reply(round_.round_id)
                coordinator.receive_diff(
                    participant.name, reply["round"], reply["diff"], reply["weight"]
                )
            mixed = coordinator.finish_round()
            for participant in participants:
                participant.apply_broadcast(round_.round_id, mixed)
    return learners, centralized


def weight_divergence(learners) -> float:
    """Max pairwise L2 distance between learners' 'a' weight vectors."""
    worst = 0.0
    for i in range(len(learners)):
        for j in range(i + 1, len(learners)):
            delta = learners[i].weights["a"].copy()
            delta.add(learners[j].weights["a"].to_dict(), scale=-1.0)
            worst = max(worst, delta.norm())
    return worst


def bench_mix_distributed_learning(benchmark):
    (mixed_learners, centralized) = benchmark.pedantic(
        lambda: run_mix_training(with_mix=True), rounds=1, iterations=1
    )
    unmixed_learners, _ = run_mix_training(with_mix=False)

    mixed_acc = min(accuracy(learner) for learner in mixed_learners)
    central_acc = accuracy(centralized)
    unmixed_acc = min(accuracy(learner) for learner in unmixed_learners)
    mixed_div = weight_divergence(mixed_learners)
    unmixed_div = weight_divergence(unmixed_learners)

    print(f"\ncentralized accuracy:        {central_acc:.3f}")
    print(f"mixed shard accuracy (min):  {mixed_acc:.3f}")
    print(f"unmixed shard accuracy (min):{unmixed_acc:.3f}")
    print(f"weight divergence mixed / unmixed: {mixed_div:.4f} / {unmixed_div:.4f}")
    record_rows(
        benchmark,
        {
            "central_acc": central_acc,
            "mixed_min_acc": mixed_acc,
            "unmixed_min_acc": unmixed_acc,
            "mixed_divergence": mixed_div,
            "unmixed_divergence": unmixed_div,
        },
    )
    # Mixed shards are near-centralized.
    assert mixed_acc >= central_acc - 0.03
    # MIX keeps the replicas together; without it they drift further apart.
    assert mixed_div < unmixed_div
    # And every learner still performs well above chance.
    assert mixed_acc > 0.9
