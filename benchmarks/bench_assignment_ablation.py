"""EXP-S2 — task-assignment strategy ablation.

§V-C closes: "in order to realize the real-time processing in a larger-
scale environment, it is necessary to add further parallelization /
decentralization of processing tasks according to available resources."
This bench quantifies that: one recipe with seven independent analysis
pipelines is placed over five heterogeneous modules (two Pi-class, two
2x-faster) by each assignment strategy, and end-to-end judge latency is
compared. Load-aware placement, which weighs both projected load and
module capacity, must beat blind round-robin.
"""

from __future__ import annotations

from repro.bench.calibration import PI_QUEUE_LIMIT, pi_cost_model, pi_wlan_config
from repro.core import IFoTCluster, Recipe, TaskSpec
from repro.runtime import SimRuntime
from repro.sensors import FixedPayloadModel
from repro.util.stats import LatencyRecorder

from conftest import record_rows

PIPELINES = 7
RATE_HZ = 25.0


def build_recipe() -> Recipe:
    """One sensor fanning out into six independent judge pipelines."""
    tasks = [
        TaskSpec(
            "sense",
            "sensor",
            outputs=["raw"],
            params={"device": "sample", "rate_hz": RATE_HZ},
            capabilities=["sensor:sample"],
        )
    ]
    for i in range(PIPELINES):
        tasks.append(
            TaskSpec(
                f"judge-{i}",
                "predict",
                inputs=["raw"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "train_on_stream": True,
                },
            )
        )
    return Recipe("ablation", tasks)


def run_with_strategy(strategy: str, seed: int = 6) -> tuple[LatencyRecorder, dict]:
    runtime = SimRuntime(
        seed=seed, wlan_config=pi_wlan_config(), cost_model=pi_cost_model()
    )
    runtime.tracer.enabled = False
    cluster = IFoTCluster(runtime, broker_kwargs={"cpu_speed": 8.0})
    sensor_module = cluster.add_module("pi-sense", queue_limit=PI_QUEUE_LIMIT)
    sensor_module.attach_sensor("sample", FixedPayloadModel())
    # Heterogeneous worker pool: two slow Pi-class, two 2x-faster modules.
    for name, speed in (
        ("pi-slow-1", 1.0),
        ("pi-slow-2", 1.0),
        ("pi-fast-1", 2.0),
        ("pi-fast-2", 2.0),
    ):
        cluster.add_module(name, cpu_speed=speed, queue_limit=PI_QUEUE_LIMIT)
    latencies = LatencyRecorder(strategy)
    runtime.tracer.tap(
        "ml.judged", lambda r: latencies.add(r["latency_s"] * 1000.0)
    )
    cluster.settle(2.0)
    app = cluster.submit(build_recipe(), strategy=strategy)
    cluster.settle(2.0)
    runtime.run(until=runtime.now + 20.0)
    placements = dict(app.assignment.placements)
    app.stop()
    return latencies, placements


def bench_assignment_strategies(benchmark):
    def run():
        return {
            strategy: run_with_strategy(strategy)
            for strategy in ("round_robin", "load_aware", "capability_aware")
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for strategy, (latencies, placements) in outcomes.items():
        spread = len(set(placements.values()))
        print(
            f"{strategy:>17}: judge avg {latencies.average:8.2f} ms, "
            f"p95 {latencies.percentile(95):8.2f} ms, modules used {spread}"
        )
    record_rows(
        benchmark,
        {
            f"{strategy}_avg_ms": latencies.average
            for strategy, (latencies, _p) in outcomes.items()
        },
    )
    round_robin = outcomes["round_robin"][0]
    load_aware = outcomes["load_aware"][0]
    capability_aware = outcomes["capability_aware"][0]
    assert load_aware.count > 50 and round_robin.count > 50
    # Capacity-aware strategies must not lose to blind cycling.
    assert load_aware.average <= round_robin.average
    assert capability_aware.average <= round_robin.average * 1.05
