"""Microbenchmarks of the substrates.

Not paper artifacts — these guard the performance of the pieces everything
else stands on (event kernel, topic matching, serialization, online
learners, broker routing), so a regression in simulator throughput is
caught here rather than as a mysteriously slow table run.
"""

from __future__ import annotations

import random

from repro.ml.classifier import OnlineClassifier
from repro.ml.features import Datum
from repro.mqtt.broker import Broker
from repro.mqtt.client import MqttClient
from repro.mqtt.topics import TopicTree
from repro.runtime.sim import SimRuntime
from repro.sim.kernel import SimKernel
from repro.util.serialization import encode_payload


def bench_kernel_event_throughput(benchmark):
    """Schedule and drain 10k chained events."""

    def run():
        kernel = SimKernel()
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                kernel.schedule(0.001, tick)

        kernel.schedule(0.0, tick)
        kernel.run()
        return kernel.events_processed

    events = benchmark(run)
    assert events >= 10_000


def bench_topic_tree_match(benchmark):
    """Match against 1000 mixed filters."""
    tree = TopicTree()
    rng = random.Random(0)
    for i in range(1000):
        parts = [rng.choice("abcde") for _ in range(rng.randint(1, 4))]
        if rng.random() < 0.3:
            parts[rng.randrange(len(parts))] = "+"
        if rng.random() < 0.2:
            parts.append("#")
        tree.insert("/".join(parts), i)
    result = benchmark(lambda: tree.match("a/b/c/d"))
    assert isinstance(result, list)


def bench_payload_encode(benchmark):
    record = {
        "id": "sample-123",
        "src": "module-a",
        "ts": 12.3456,
        "datum": {"s": {"label": "hi"}, "n": {"v0": 0.1, "v1": -0.2, "v2": 0.9}},
        "path": ["sense"],
        "merged": [],
        "attrs": {},
    }
    data = benchmark(lambda: encode_payload(record))
    assert len(data) > 50


def bench_classifier_train(benchmark):
    clf = OnlineClassifier(algorithm="pa1")
    rng = random.Random(1)
    datums = [
        (Datum.from_mapping({"x": rng.gauss(0, 1), "y": rng.gauss(0, 1)}),
         "a" if rng.random() < 0.5 else "b")
        for _ in range(256)
    ]
    index = [0]

    def train_one():
        datum, label = datums[index[0] % len(datums)]
        index[0] += 1
        clf.train(datum, label)

    benchmark(train_one)


def bench_classifier_predict(benchmark):
    clf = OnlineClassifier(algorithm="pa1")
    rng = random.Random(2)
    for _ in range(200):
        x = rng.gauss(0, 1)
        clf.train(Datum.from_mapping({"x": x}), "p" if x > 0 else "n")
    probe = Datum.from_mapping({"x": 0.3})
    result = benchmark(lambda: clf.classify(probe))
    assert result.label in ("p", "n")


def bench_broker_fanout_routing(benchmark):
    """Simulated time to route 200 messages to 10 subscribers each."""

    def run():
        runtime = SimRuntime(seed=0)
        runtime.tracer.enabled = False
        broker = Broker(runtime.add_node("hub"))
        publisher = MqttClient(runtime.add_node("pub"), broker.address, client_id="pub")
        publisher.connect()
        received = [0]
        for i in range(10):
            sub = MqttClient(
                runtime.add_node(f"sub{i}"), broker.address, client_id=f"sub{i}"
            )
            sub.connect()
            sub.subscribe(
                "t/#", lambda _t, _p, _pkt: received.__setitem__(0, received[0] + 1)
            )
        runtime.run(until=1.0)
        for i in range(200):
            publisher.publish(f"t/{i % 5}", {"n": i})
        runtime.run(until=30.0)
        return received[0]

    delivered = benchmark(run)
    assert delivered == 2000
