"""EXP-T3 — regenerate Table III: sensing->predicting latency vs rate.

Paper (Table III, ms):

    rate  avg       max
    5     58.969    346.142
    10    59.020    334.501
    20    74.747    373.992
    40    744.535   819.748
    80    1144.580  1249.122

Shape: predicting is cheaper than training at every saturated rate, its
knee arrives later (20 Hz is still near-flat), and the saturated rows stay
monotone in rate.
"""

from __future__ import annotations

from repro.bench import (
    PAPER_TABLE3_PREDICTING,
    format_comparison_table,
    run_rate_sweep,
)
from repro.bench.calibration import PAPER_RATES_HZ

from conftest import record_rows


def bench_table3_predicting_latency(benchmark):
    results = benchmark.pedantic(
        lambda: run_rate_sweep(PAPER_RATES_HZ, seed=1), rounds=1, iterations=1
    )
    print()
    print(
        format_comparison_table(
            results,
            PAPER_TABLE3_PREDICTING,
            "predicting",
            "Table III — sensing->predicting latency (ms)",
        )
    )
    rows = {f"{int(r.rate_hz)}Hz": r.row("predicting") for r in results}
    record_rows(benchmark, rows)

    predict = {int(r.rate_hz): r.predicting for r in results}
    train = {int(r.rate_hz): r.training for r in results}
    # Real-time at 5-20 Hz: the predict path's knee comes after 20 Hz.
    assert predict[5].average < 150.0
    assert predict[20].average < 2 * predict[5].average
    # Saturation at 40 Hz and beyond, monotone.
    assert predict[40].average > 5 * predict[20].average
    assert predict[80].average > predict[40].average
    # Predicting is cheaper than training wherever the system saturates.
    for rate in (40, 80):
        assert predict[rate].average < train[rate].average
    # Warm-up shows in the low-rate max.
    assert predict[5].maximum > 3 * predict[5].average
