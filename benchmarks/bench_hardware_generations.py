"""EXP-S6 — hardware-generation sweep (supplementary).

The paper's premise (§I): "Assuming that computation power and memory
capacity of IoT devices increase year by year, we think IoT data streams
should be processed near their sources." This bench quantifies that
assumption on the reproduction: the same Fig. 7/9 experiment at 40 Hz —
firmly beyond the Pi 2 testbed's knee — re-run on faster device
generations (uniform CPU speed-ups over the calibrated Pi 2 profile).

Claim checked: each hardware generation pushes the saturation knee right,
and roughly Pi-3-class hardware (~2x) already makes the paper's worst
measured rate real-time again.
"""

from __future__ import annotations

from repro.bench.calibration import PI_QUEUE_LIMIT, pi_cost_model, pi_wlan_config
from repro.bench.scenarios import (
    BROKER_MODULE,
    PREDICT_MODULE,
    SENSOR_MODULES,
    TRAIN_MODULE,
    build_paper_recipe,
)
from repro.core.middleware import IFoTCluster
from repro.runtime.sim import SimRuntime
from repro.sensors.devices import FixedPayloadModel
from repro.util.stats import LatencyRecorder

from conftest import record_rows

#: Rough single-core speed-ups relative to the Pi 2 of the paper.
GENERATIONS = {"pi2-1x": 1.0, "pi3-2x": 2.0, "pi4-4x": 4.0, "pi5-8x": 8.0}
RATE_HZ = 40.0


def run_generation(speed: float, seed: int = 11) -> LatencyRecorder:
    runtime = SimRuntime(
        seed=seed, wlan_config=pi_wlan_config(), cost_model=pi_cost_model()
    )
    runtime.tracer.enabled = False
    cluster = IFoTCluster(
        runtime,
        broker_node_name=BROKER_MODULE,
        broker_kwargs={"queue_limit": PI_QUEUE_LIMIT, "cpu_speed": speed},
        node_kwargs={"cpu_speed": 8.0},
    )
    for name in SENSOR_MODULES:
        module = cluster.add_module(
            name, cpu_speed=speed, queue_limit=PI_QUEUE_LIMIT
        )
        module.attach_sensor("sample", FixedPayloadModel(values=3))
    cluster.add_module(TRAIN_MODULE, cpu_speed=speed, queue_limit=PI_QUEUE_LIMIT)
    cluster.add_module(PREDICT_MODULE, cpu_speed=speed, queue_limit=PI_QUEUE_LIMIT)
    latencies = LatencyRecorder(f"speed={speed}")
    runtime.tracer.tap("ml.trained", lambda r: latencies.add(r["latency_s"] * 1000.0))
    cluster.settle(2.0)
    cluster.submit(build_paper_recipe(RATE_HZ))
    cluster.settle(2.0)
    runtime.run(until=runtime.now + 2.5)
    return latencies


def bench_hardware_generations(benchmark):
    results = benchmark.pedantic(
        lambda: {name: run_generation(speed) for name, speed in GENERATIONS.items()},
        rounds=1,
        iterations=1,
    )
    print(f"\nsensing->training at {RATE_HZ:.0f} Hz by device generation:")
    for name, latencies in results.items():
        print(
            f"  {name:>8}: avg {latencies.average:8.1f} ms, "
            f"max {latencies.maximum:8.1f} ms, batches {latencies.count}"
        )
    record_rows(
        benchmark, {name: results[name].average for name in GENERATIONS}
    )
    averages = [results[name].average for name in GENERATIONS]
    # Strictly monotone improvement across generations.
    assert all(a > b for a, b in zip(averages, averages[1:]))
    # Pi-2-class saturates at 40 Hz (the paper's Table II row)...
    assert averages[0] > 800.0
    # ...while 2x-class hardware already restores real-time processing.
    assert results["pi3-2x"].average < 500.0
    assert results["pi4-4x"].average < 150.0
