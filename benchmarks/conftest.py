"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's result artifacts (or a
supplementary ablation from DESIGN.md §4) inside a ``pytest-benchmark``
measurement. Absolute numbers live in ``benchmark.extra_info`` so the JSON
output of ``pytest benchmarks/ --benchmark-json=...`` carries the full
paper-vs-measured record.

When ``REPRO_BENCH_OUT`` names a directory, :func:`record_rows`
additionally writes each benchmark's rows as a schema-versioned
``BENCH_<name>.json`` record (``repro.bench.continuous``), so a pytest
bench run produces the same artifact shape as ``repro bench`` — the
continuous-benchmark gate can diff either.
"""

from __future__ import annotations

import os
from pathlib import Path


def record_rows(benchmark, rows: dict) -> None:
    """Attach regenerated table rows to the benchmark record.

    Rows are sim-derived (virtual-time) metrics and therefore land in the
    byte-exact ``sim`` half of the exported bench record.
    """
    benchmark.extra_info.update(rows)
    out = os.environ.get("REPRO_BENCH_OUT", "")
    if not out:
        return
    from repro.bench.continuous import BenchRecord, write_bench

    name = benchmark.name.removeprefix("bench_")
    record = BenchRecord(name=name)
    record.sim = {key: rows[key] for key in sorted(rows)}
    stats = getattr(benchmark, "stats", None)
    if stats is not None and getattr(stats, "stats", None) is not None:
        record.wall = {"elapsed_s": round(stats.stats.mean, 4)}
    write_bench(record, Path(out))
