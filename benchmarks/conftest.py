"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's result artifacts (or a
supplementary ablation from DESIGN.md §4) inside a ``pytest-benchmark``
measurement. Absolute numbers live in ``benchmark.extra_info`` so the JSON
output of ``pytest benchmarks/ --benchmark-json=...`` carries the full
paper-vs-measured record.
"""

from __future__ import annotations


def record_rows(benchmark, rows: dict) -> None:
    """Attach regenerated table rows to the benchmark record."""
    benchmark.extra_info.update(rows)
