"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's result artifacts (or a
supplementary ablation from DESIGN.md §4) inside a ``pytest-benchmark``
measurement. Absolute numbers live in ``benchmark.extra_info`` so the JSON
output of ``pytest benchmarks/ --benchmark-json=...`` carries the full
paper-vs-measured record.

When ``REPRO_BENCH_OUT`` names a directory, :func:`record_rows`
additionally writes each benchmark's rows as a schema-versioned
``BENCH_<name>.json`` record (``repro.bench.continuous``), so a pytest
bench run produces the same artifact shape as ``repro bench`` — the
continuous-benchmark gate can diff either.
"""

from __future__ import annotations

from pathlib import Path


def require_fresh_baseline(name: str) -> None:
    """Fail loudly when the committed baseline is stale for this machine.

    A ``BENCH_<name>.json`` whose environment fingerprint matches the
    current host but whose schema version predates the current
    ``BENCH_SCHEMA_VERSION`` means the baseline was simply never
    regenerated after a schema bump — silently benchmarking alongside it
    would let the gate rot. (A differing fingerprint is fine: some other
    machine's baseline is not ours to regenerate.)
    """
    from repro.bench.continuous import (
        BENCH_SCHEMA_VERSION,
        environment_fingerprint,
        load_bench,
    )

    baseline_dir = Path(__file__).parent / "baselines"
    try:
        baseline = load_bench(baseline_dir, name)
    except FileNotFoundError:
        return
    if (
        baseline.env == environment_fingerprint()
        and baseline.schema_version < BENCH_SCHEMA_VERSION
    ):
        raise RuntimeError(
            f"stale baseline {baseline_dir / f'BENCH_{name}.json'}: schema "
            f"v{baseline.schema_version} predates current "
            f"v{BENCH_SCHEMA_VERSION} and its environment fingerprint "
            "matches this machine — regenerate it with: "
            "repro bench --out benchmarks/baselines"
        )


def record_rows(benchmark, rows: dict) -> None:
    """Attach regenerated table rows to the benchmark record.

    Rows are sim-derived (virtual-time) metrics and therefore land in the
    byte-exact ``sim`` half of the exported bench record.
    """
    benchmark.extra_info.update(rows)
    name = benchmark.name.removeprefix("bench_")
    require_fresh_baseline(name)
    from repro.util.flags import flag_value

    out = flag_value("REPRO_BENCH_OUT")
    if not out:
        return
    from repro.bench.continuous import BenchRecord, write_bench

    record = BenchRecord(name=name)
    record.sim = {key: rows[key] for key in sorted(rows)}
    stats = getattr(benchmark, "stats", None)
    if stats is not None and getattr(stats, "stats", None) is not None:
        record.wall = {"elapsed_s": round(stats.stats.mean, 4)}
    write_bench(record, Path(out))
