"""EXP-S9 — multiple applications sharing one cluster (paper §VI goals).

The paper's conclusion states the middleware aims to realize "(a) multiple
applications run on IoT devices while sharing their resources and (b)
contents composed by processing / analyzing / merging data streams in each
application can be distributed for secondary / tertiary use in real-time."

Two benches:

* **resource sharing** — a monitoring application's judge latency is
  measured alone, then with a second, unrelated application co-resident
  on the same modules. Load-aware placement must keep the interference
  bounded (< 2x) while both applications make full progress.
* **secondary use** — a consumer application subscribes to the first
  application's *curated* (judged) stream via an external reference and
  actuates on it; measured is the extra hop's latency from sensing to the
  secondary application's actuator.
"""

from __future__ import annotations

from repro.bench.calibration import PI_QUEUE_LIMIT, pi_cost_model, pi_wlan_config
from repro.core import IFoTCluster, Recipe, TaskSpec
from repro.runtime import SimRuntime
from repro.sensors import AlertActuator, FixedPayloadModel
from repro.util.stats import LatencyRecorder

from conftest import record_rows


def primary_recipe(rate_hz=10.0) -> Recipe:
    return Recipe(
        "monitor",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "sample", "rate_hz": rate_hz},
                capabilities=["sensor:sample"],
            ),
            TaskSpec(
                "judge",
                "predict",
                inputs=["raw"],
                outputs=["curated"],
                params={
                    "model": "classifier",
                    "label_key": "label",
                    "train_on_stream": True,
                },
            ),
        ],
    )


def background_recipe(rate_hz=10.0) -> Recipe:
    """An unrelated training application sharing the same modules."""
    return Recipe(
        "background",
        [
            TaskSpec(
                "sense2",
                "sensor",
                outputs=["raw2"],
                params={"device": "sample", "rate_hz": rate_hz},
                capabilities=["sensor:sample"],
            ),
            TaskSpec(
                "train2",
                "train",
                inputs=["raw2"],
                params={"model": "classifier", "label_key": "label"},
            ),
        ],
    )


def consumer_recipe() -> Recipe:
    return Recipe(
        "consumer",
        [
            TaskSpec(
                "alerting",
                "command",
                inputs=["monitor:curated"],
                outputs=["cmds"],
                params={
                    "rules": [
                        {
                            "when": {"key": "label", "eq": "hi"},
                            "command": {"message": "hi"},
                        }
                    ]
                },
            ),
            TaskSpec(
                "pager",
                "actuator",
                inputs=["cmds"],
                params={"device": "pager"},
                capabilities=["actuator:pager"],
            ),
        ],
    )


def build_cluster(seed: int):
    runtime = SimRuntime(
        seed=seed, wlan_config=pi_wlan_config(), cost_model=pi_cost_model()
    )
    runtime.tracer.enabled = False
    cluster = IFoTCluster(runtime)
    sensor_module = cluster.add_module("pi-sense", queue_limit=PI_QUEUE_LIMIT)
    sensor_module.attach_sensor("sample", FixedPayloadModel())
    cluster.add_module("pi-w1", queue_limit=PI_QUEUE_LIMIT)
    cluster.add_module("pi-w2", queue_limit=PI_QUEUE_LIMIT)
    pager_module = cluster.add_module("pi-act", queue_limit=PI_QUEUE_LIMIT)
    pager = AlertActuator()
    pager_module.attach_actuator("pager", pager)
    cluster.settle(2.0)
    return runtime, cluster, pager


def measure_judge_latency(with_background: bool, seed: int = 14) -> LatencyRecorder:
    runtime, cluster, _pager = build_cluster(seed)
    latencies = LatencyRecorder("judge")
    runtime.tracer.tap("ml.judged", lambda r: latencies.add(r["latency_s"] * 1000.0))
    cluster.submit(primary_recipe())
    if with_background:
        cluster.settle(1.0)
        cluster.submit(background_recipe())
    cluster.settle(2.0)
    runtime.run(until=runtime.now + 10.0)
    return latencies


def bench_resource_sharing(benchmark):
    def run():
        alone = measure_judge_latency(with_background=False)
        shared = measure_judge_latency(with_background=True)
        return alone, shared

    alone, shared = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nmonitor judge latency alone:  {alone.average:7.2f} ms "
        f"({alone.count} records)"
    )
    print(
        f"monitor judge latency shared: {shared.average:7.2f} ms "
        f"({shared.count} records)"
    )
    record_rows(
        benchmark,
        {"alone_avg_ms": alone.average, "shared_avg_ms": shared.average},
    )
    # Both deployments make full progress...
    assert shared.count >= alone.count * 0.9
    # ...and load-aware placement bounds cross-application interference.
    assert shared.average < 2.0 * alone.average


def bench_secondary_use(benchmark):
    def run():
        runtime, cluster, pager = build_cluster(seed=15)
        end_to_end = LatencyRecorder("secondary")
        runtime.tracer.tap(
            "actuator.applied", lambda r: end_to_end.add(r["latency_s"] * 1000.0)
        )
        judge_latency = LatencyRecorder("judge")
        runtime.tracer.tap(
            "ml.judged", lambda r: judge_latency.add(r["latency_s"] * 1000.0)
        )
        cluster.submit(primary_recipe())
        cluster.settle(1.0)
        cluster.submit(consumer_recipe())
        cluster.settle(2.0)
        runtime.run(until=runtime.now + 10.0)
        return end_to_end, judge_latency, pager

    end_to_end, judge_latency, pager = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    extra = end_to_end.average - judge_latency.average
    print(
        f"\nsensing -> primary judge:        {judge_latency.average:7.2f} ms"
    )
    print(
        f"sensing -> secondary actuator:   {end_to_end.average:7.2f} ms "
        f"(+{extra:.2f} ms for the tertiary hop)"
    )
    record_rows(
        benchmark,
        {
            "judge_avg_ms": judge_latency.average,
            "secondary_actuator_avg_ms": end_to_end.average,
        },
    )
    assert len(pager.alerts) > 20
    # The secondary hop adds network + rules + actuation: bounded tens of ms.
    assert 0.0 < extra < 60.0
